"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
the legacy ``pip install -e .`` code path (``setup.py develop``), which the
offline evaluation environment needs because PEP 660 editable installs
require ``wheel``.
"""

from setuptools import setup

setup()
