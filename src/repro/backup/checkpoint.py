"""Node checkpointing, deterministic replay, and point-in-time recovery.

The checkpoint ordering — the invariant the crash matrix proves::

    collect → archive segment → write snapshot → archive checkpoint → reset WAL

The live WAL is truncated **last**, and only after the snapshot
covering it is durably on disk (fsynced temp file + atomic rename) and
its records are archived.  A crash anywhere in the sequence therefore
leaves recovery with at least one complete basis: either the old
snapshot plus the untruncated WAL, or the new snapshot plus an empty
tail.  Replay is made exact (never applied-twice) by sequence skipping:
a checkpoint records the ``wal_seq`` it covers and recovery replays
only records with a strictly greater sequence.

:func:`restore_to_seq` is the PITR entry point: pick the newest
archived checkpoint at or below the target sequence, replay archived
segment records up to the target, and verify the sequence run is
gap-free — a missing stretch of history is an error, not a silent
partial restore.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

from repro.backup.archive import BackupArchive, BackupError
from repro.obs import runtime as obs
from repro.storage.snapshot import _decode_value, save_node_checkpoint
from repro.storage.wal import WALRecord, WriteAheadLog

#: the ordered steps of one checkpoint, in crash-matrix order (the
#: ``archive_*`` steps only run when an archive is configured)
CHECKPOINT_STEPS = (
    "collect", "archive_segment", "write_snapshot",
    "archive_checkpoint", "reset_wal", "done",
)


def checkpoint_node(
    table,
    wal: WriteAheadLog,
    snapshot_path: Union[str, Path],
    archive: Optional[BackupArchive] = None,
    crash_hook: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """Checkpoint one serving node: snapshot the table, then reset the WAL.

    Must run with the table quiesced (the server holds its write lock).
    *crash_hook* is called with each step name before the step executes
    — the crash matrix raises from it to kill the checkpoint at every
    point and then proves recovery is exact.
    """
    hook = crash_hook if crash_hook is not None else lambda _step: None
    checkpoint_seq = wal.last_seq
    hook("collect")
    records = wal.records()
    if archive is not None:
        hook("archive_segment")
        archive.archive_segment(wal.basis_seq, records)
    hook("write_snapshot")
    save_node_checkpoint(table, checkpoint_seq, snapshot_path)
    if archive is not None:
        hook("archive_checkpoint")
        archive.archive_checkpoint(snapshot_path, checkpoint_seq)
    hook("reset_wal")
    wal.reset(checkpoint_seq)
    hook("done")
    obs.event(
        "backup.checkpoint", path=str(snapshot_path),
        wal_seq=checkpoint_seq, records_truncated=len(records),
        archived=archive is not None,
    )
    return {
        "wal_seq": checkpoint_seq,
        "records_truncated": len(records),
        "snapshot_path": str(snapshot_path),
    }


def apply_record(table, record: WALRecord) -> bool:
    """Apply one journaled operation to *table*; returns True when it
    changed state.

    Mirrors the serving node's replay semantics exactly: unknown record
    kinds are skipped (forward compatibility), and a record already
    reflected in the catalog (duplicate insert, unknown eid) is not a
    recovery failure — sequence skipping makes genuine double-replay
    impossible, this tolerance only covers replay onto pre-seeded
    tables.
    """
    payload = record.payload
    try:
        if record.op == "insert":
            table.insert(payload["attributes"], entity_id=payload["eid"])
        elif record.op == "update":
            table.update(payload["eid"], payload["attributes"])
        elif record.op == "delete":
            table.delete(payload["eid"])
        elif record.op == "sync_put":
            # resync upsert: the peer's copy replaces whatever is local.
            # sync payloads carry snapshot-encoded values (they crossed
            # the wire from another node's table), unlike client writes
            # whose JSON attributes are stored verbatim
            attributes = {
                name: _decode_value(value)
                for name, value in payload["attributes"].items()
            }
            if payload["eid"] in table:
                table.update(payload["eid"], attributes)
            else:
                table.insert(attributes, entity_id=payload["eid"])
        elif record.op == "sync_reset":
            n_shards = payload["n_shards"]
            shards = set(payload["shards"])
            doomed = [
                eid for eid in table.entity_ids()
                if eid % n_shards in shards
            ]
            for eid in doomed:
                table.delete(eid)
        else:
            return False
        return True
    except (KeyError, ValueError):
        return False


def replay_into_table(
    table, records: Iterable[WALRecord], after_seq: int = 0
) -> int:
    """Replay *records* with ``seq > after_seq``; returns how many
    applied.  The sequence skip is what makes checkpoint recovery exact:
    records the snapshot already covers are never re-applied."""
    replayed = 0
    for record in records:
        if record.seq <= after_seq:
            continue
        if apply_record(table, record):
            replayed += 1
    return replayed


def restore_to_seq(
    archive: BackupArchive,
    to_seq: Optional[int] = None,
    table_factory: Optional[Callable[[], Any]] = None,
    result_cache=None,
) -> tuple[Any, int]:
    """Point-in-time recovery: rebuild the table state as of *to_seq*.

    Loads the newest archived checkpoint at or below the target, then
    replays archived segment records up to it.  ``to_seq=None`` restores
    to the newest archived sequence.  Returns ``(table, restored_seq)``.

    Raises :class:`BackupError` when the archive cannot reach the target
    — no basis and no *table_factory* to start empty from, or a gap in
    the archived sequence run (a missing backup), which would silently
    drop writes if replayed through.
    """
    from repro.storage.snapshot import load_node_checkpoint

    if to_seq is None:
        to_seq = archive.last_archived_seq()
    checkpoint = archive.checkpoint_for(to_seq)
    if checkpoint is not None:
        table, base_seq = load_node_checkpoint(
            checkpoint.path, result_cache=result_cache
        )
    else:
        if table_factory is not None:
            table = table_factory()
        else:
            from repro.table.partitioned import CinderellaTable

            table = CinderellaTable(result_cache=result_cache)
        base_seq = 0
    records = archive.records_through(to_seq=to_seq, after_seq=base_seq)
    expected = base_seq
    for record in records:
        expected += 1
        if record.seq != expected:
            raise BackupError(
                f"archive {archive.root} is missing sequences "
                f"[{expected}, {record.seq}) — cannot restore to "
                f"{to_seq} without losing writes"
            )
    if expected < to_seq:
        raise BackupError(
            f"archive {archive.root} ends at sequence {expected}; "
            f"cannot restore to {to_seq}"
        )
    replay_into_table(table, records, after_seq=base_seq)
    obs.event(
        "backup.restored", root=str(archive.root), to_seq=to_seq,
        basis_seq=base_seq, records_replayed=len(records),
    )
    return table, to_seq
