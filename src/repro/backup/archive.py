"""WAL segment archiving: the retained history behind PITR and resync.

A :class:`BackupArchive` is a directory of immutable files next to a
serving node's live state::

    <root>/segments/segment-000000000001-000000000042.wal
    <root>/checkpoints/checkpoint-000000000042.json

*Segments* are byte-exact copies of a WAL's records (same checksummed
line format, re-readable with :func:`repro.storage.wal.read_wal`),
archived **before** every checkpoint truncation — so resetting the live
journal never discards history.  *Checkpoints* are copies of node
checkpoint snapshots (:func:`repro.storage.snapshot.save_node_checkpoint`),
keyed by the WAL sequence they cover.

Both writes are idempotent (an existing file with the target name is
kept, never rewritten) and atomic (temp file, fsync, rename), so a
crash between "archive" and "truncate" merely re-archives the same
bytes on the next attempt.  Overlapping segments are legal for the same
reason; :meth:`BackupArchive.records_through` deduplicates by sequence
number when reading history back.

:meth:`BackupArchive.scrub` is the at-rest verifier: every checkpoint
must pass its payload checksum, every segment must decode cleanly with
no torn tail and match the range its filename claims.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.obs import runtime as obs
from repro.storage.snapshot import SnapshotFormatError, load_node_checkpoint
from repro.storage.wal import (
    WAL_FORMAT,
    WAL_VERSION,
    WALFormatError,
    WALRecord,
    _encode_line,
    read_wal,
)

_SEGMENT_RE = re.compile(r"^segment-(\d{12})-(\d{12})\.wal$")
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.json$")


class BackupError(RuntimeError):
    """An archive cannot satisfy a restore request (missing history)."""


@dataclass(frozen=True)
class ArchivedSegment:
    """One archived WAL segment: the closed range of sequences it holds."""

    first_seq: int
    last_seq: int
    path: Path


@dataclass(frozen=True)
class ArchivedCheckpoint:
    """One archived node checkpoint and the WAL sequence it covers."""

    wal_seq: int
    path: Path


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    temporary = path.with_suffix(path.suffix + ".tmp")
    with temporary.open("wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    temporary.replace(path)


class BackupArchive:
    """A directory of archived WAL segments and checkpoints (module docs)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.checkpoints_dir = self.root / "checkpoints"

    # ------------------------------------------------------------------
    # archiving (idempotent, atomic)
    # ------------------------------------------------------------------
    def archive_segment(
        self, basis_seq: int, records: Iterable[WALRecord]
    ) -> Optional[Path]:
        """Archive *records* (a WAL's current tail above *basis_seq*).

        Returns the segment path, or ``None`` when there was nothing to
        archive.  An existing segment with the same sequence range is
        trusted and kept — re-archiving after a crash mid-checkpoint
        writes the same bytes, so the first copy stands.
        """
        kept = list(records)
        if not kept:
            return None
        first, last = kept[0].seq, kept[-1].seq
        path = self.segments_dir / f"segment-{first:012d}-{last:012d}.wal"
        if path.exists():
            return path
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        gap_free = all(
            later.seq == earlier.seq + 1
            for earlier, later in zip(kept, kept[1:])
        ) and first == basis_seq + 1
        lines = [_encode_line(0, "header", {
            "format": WAL_FORMAT,
            "version": WAL_VERSION,
            "basis_seq": first - 1,
            # a compacted source leaves legal gaps; flag them so the
            # reader applies the gap-tolerant sequence check
            "compactions": 0 if gap_free else 1,
            "last_seq": last,
        })]
        lines.extend(
            _encode_line(record.seq, record.op, record.payload)
            for record in kept
        )
        _atomic_write_bytes(path, "".join(lines).encode("utf-8"))
        obs.event(
            "backup.segment_archived", path=str(path),
            first_seq=first, last_seq=last, records=len(kept),
        )
        return path

    def archive_checkpoint(
        self, snapshot_path: Union[str, Path], wal_seq: int
    ) -> Path:
        """Copy a node checkpoint file into the archive, keyed by the
        WAL sequence it covers.  Idempotent like segments."""
        path = self.checkpoints_dir / f"checkpoint-{wal_seq:012d}.json"
        if path.exists():
            return path
        self.checkpoints_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(path, Path(snapshot_path).read_bytes())
        obs.event(
            "backup.checkpoint_archived", path=str(path), wal_seq=wal_seq,
        )
        return path

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def segments(self) -> list[ArchivedSegment]:
        """Archived segments, ordered by first sequence."""
        found = []
        if self.segments_dir.is_dir():
            for entry in self.segments_dir.iterdir():
                match = _SEGMENT_RE.match(entry.name)
                if match:
                    found.append(ArchivedSegment(
                        int(match.group(1)), int(match.group(2)), entry
                    ))
        return sorted(found, key=lambda s: (s.first_seq, s.last_seq))

    def checkpoints(self) -> list[ArchivedCheckpoint]:
        """Archived checkpoints, ordered by covered sequence."""
        found = []
        if self.checkpoints_dir.is_dir():
            for entry in self.checkpoints_dir.iterdir():
                match = _CHECKPOINT_RE.match(entry.name)
                if match:
                    found.append(ArchivedCheckpoint(int(match.group(1)), entry))
        return sorted(found, key=lambda c: c.wal_seq)

    def checkpoint_for(
        self, to_seq: Optional[int] = None
    ) -> Optional[ArchivedCheckpoint]:
        """The newest checkpoint at or before *to_seq* (latest if None)."""
        best = None
        for checkpoint in self.checkpoints():
            if to_seq is not None and checkpoint.wal_seq > to_seq:
                break
            best = checkpoint
        return best

    def last_archived_seq(self) -> int:
        """The highest sequence the archive holds (0 when empty)."""
        high = 0
        segments = self.segments()
        if segments:
            high = max(segment.last_seq for segment in segments)
        checkpoints = self.checkpoints()
        if checkpoints:
            high = max(high, checkpoints[-1].wal_seq)
        return high

    def records_through(
        self, to_seq: Optional[int] = None, after_seq: int = 0
    ) -> list[WALRecord]:
        """Every archived record with ``after_seq < seq <= to_seq``,
        deduplicated across overlapping segments, in sequence order."""
        by_seq: dict[int, WALRecord] = {}
        for segment in self.segments():
            if segment.last_seq <= after_seq:
                continue
            if to_seq is not None and segment.first_seq > to_seq:
                continue
            _basis, records, torn = read_wal(segment.path)
            if torn:
                raise WALFormatError(
                    f"archived segment {segment.path} has a torn tail"
                )
            for record in records:
                if record.seq <= after_seq:
                    continue
                if to_seq is not None and record.seq > to_seq:
                    continue
                by_seq.setdefault(record.seq, record)
        return [by_seq[seq] for seq in sorted(by_seq)]

    # ------------------------------------------------------------------
    # at-rest verification
    # ------------------------------------------------------------------
    def scrub(self) -> dict[str, Any]:
        """Verify every archived file; returns a report with ``problems``
        (empty list = clean archive)."""
        problems: list[str] = []
        records_verified = 0
        checkpoints = self.checkpoints()
        for checkpoint in checkpoints:
            try:
                _table, wal_seq = load_node_checkpoint(checkpoint.path)
            except SnapshotFormatError as error:
                problems.append(f"{checkpoint.path.name}: {error}")
                continue
            if wal_seq != checkpoint.wal_seq:
                problems.append(
                    f"{checkpoint.path.name}: filename claims seq "
                    f"{checkpoint.wal_seq} but the snapshot covers {wal_seq}"
                )
        segments = self.segments()
        for segment in segments:
            try:
                _basis, records, torn = read_wal(segment.path)
            except WALFormatError as error:
                problems.append(f"{segment.path.name}: {error}")
                continue
            if torn:
                problems.append(f"{segment.path.name}: torn tail")
                continue
            if not records:
                problems.append(f"{segment.path.name}: no records")
                continue
            records_verified += len(records)
            first, last = records[0].seq, records[-1].seq
            if (first, last) != (segment.first_seq, segment.last_seq):
                problems.append(
                    f"{segment.path.name}: filename claims "
                    f"[{segment.first_seq}, {segment.last_seq}] but the "
                    f"records span [{first}, {last}]"
                )
        report = {
            "root": str(self.root),
            "checkpoints_verified": len(checkpoints),
            "segments_verified": len(segments),
            "records_verified": records_verified,
            "problems": problems,
        }
        obs.event(
            "backup.scrub", root=str(self.root),
            checkpoints=len(checkpoints), segments=len(segments),
            problems=len(problems),
        )
        return report
