"""Backup, checkpointing, and point-in-time recovery for serving nodes.

See :mod:`repro.backup.checkpoint` for the checkpoint ordering contract
and :mod:`repro.backup.archive` for the on-disk archive layout.
"""

from repro.backup.archive import (
    ArchivedCheckpoint,
    ArchivedSegment,
    BackupArchive,
    BackupError,
)
from repro.backup.checkpoint import (
    CHECKPOINT_STEPS,
    apply_record,
    checkpoint_node,
    replay_into_table,
    restore_to_seq,
)

__all__ = [
    "ArchivedCheckpoint",
    "ArchivedSegment",
    "BackupArchive",
    "BackupError",
    "CHECKPOINT_STEPS",
    "apply_record",
    "checkpoint_node",
    "replay_into_table",
    "restore_to_seq",
]
