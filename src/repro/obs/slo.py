"""Service-level objectives over federated metrics: burn-rate alerts.

An :class:`SloObjective` states what "good" means for one verb —
either **latency** ("99% of ``query`` requests complete within 25ms")
or **availability** ("99.9% of ``insert`` requests succeed") — and the
:class:`SloMonitor` evaluates a set of them against successive
:class:`~repro.obs.federation.FederatedView` scrapes.

The alerting model is the multi-window, multi-burn-rate scheme from the
Google SRE workbook.  With error budget ``1 − objective``, the **burn
rate** over a window is ``error_rate / budget`` — burn 1 spends the
budget exactly over the SLO period, burn 14.4 exhausts a 30-day budget
in 2 days.  Each alert pairs a long window (is the burn sustained?)
with a short one (is it *still* happening?), both of which must exceed
the threshold:

* **page** — burn ≥ 14.4 over 1h *and* over the last 5m;
* **ticket** — burn ≥ 6 over 6h *and* over the last 1h.

Counters are cumulative, so windowed rates come from differencing the
ring of retained samples; the clock is injectable, which is how the
test battery replays hours of traffic in milliseconds.  Until a window
has history spanning it, the rate uses what history there is (an alert
can fire early under a hard regression — preferable to staying silent
during the first hour of a launch).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.obs.federation import FederatedView

LATENCY = "latency"
AVAILABILITY = "availability"

#: statuses that count as "good" for availability objectives — the
#: protocol's success vocabulary plus ``degraded`` (a partial result is
#: an answered request; shards missing rows show up on the latency and
#: reachability signals instead)
GOOD_STATUSES = frozenset({"ok", "applied", "degraded"})


@dataclass(frozen=True)
class SloObjective:
    """One objective: what fraction of a verb's requests must be good."""

    name: str
    #: the wire verb this objective watches (the ``op`` metric label)
    verb: str
    #: target good fraction, e.g. 0.999
    objective: float
    #: ``latency`` or ``availability``
    kind: str = LATENCY
    #: latency objectives: a request is good when it completed within
    #: this bound (evaluated against the federated latency histogram)
    threshold_s: float = 0.025
    #: the histogram (latency) or counter (availability) family read
    metric: str = "repro_server_request_seconds"

    def __post_init__(self) -> None:
        if self.kind not in (LATENCY, AVAILABILITY):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.objective

    def counts(self, view: FederatedView) -> tuple[float, float]:
        """``(good, total)`` cumulative counts from one federated view."""
        if self.kind == LATENCY:
            return view.histogram_counts(
                self.metric, self.threshold_s, op=self.verb
            )
        total = view.counter_total(self.metric, op=self.verb)
        good = sum(
            view.counter_total(self.metric, op=self.verb, status=status)
            for status in GOOD_STATUSES
        )
        return good, total


#: the default objectives the CLI (``repro obs --cluster``, ``repro
#: top``) evaluates: latency on the read verbs, availability on writes
DEFAULT_OBJECTIVES: tuple[SloObjective, ...] = (
    SloObjective(
        name="query-latency", verb="query", objective=0.99,
        kind=LATENCY, threshold_s=0.025,
    ),
    SloObjective(
        name="sql-latency", verb="sql", objective=0.99,
        kind=LATENCY, threshold_s=0.05,
    ),
    SloObjective(
        name="insert-availability", verb="insert", objective=0.999,
        kind=AVAILABILITY, metric="repro_server_requests_total",
    ),
    SloObjective(
        name="query-availability", verb="query", objective=0.999,
        kind=AVAILABILITY, metric="repro_server_requests_total",
    ),
)


@dataclass(frozen=True)
class BurnAlert:
    """One multi-window burn-rate alert rule."""

    severity: str
    #: both windows must burn at least this fast
    threshold: float
    long_window_s: float
    short_window_s: float


#: the SRE-workbook pairs (30-day SLO period): page on 14.4× over
#: 1h+5m, ticket on 6× over 6h+1h
DEFAULT_ALERTS: tuple[BurnAlert, ...] = (
    BurnAlert(
        severity="page", threshold=14.4,
        long_window_s=3600.0, short_window_s=300.0,
    ),
    BurnAlert(
        severity="ticket", threshold=6.0,
        long_window_s=21600.0, short_window_s=3600.0,
    ),
)


@dataclass
class SloStatus:
    """One objective's evaluated state at a point in time."""

    objective: SloObjective
    #: cumulative counts at the latest sample
    good: float = 0.0
    total: float = 0.0
    #: burn rate per alert window, keyed by window seconds
    burn_rates: dict[float, Optional[float]] = field(default_factory=dict)
    #: alerts whose window pair both crossed threshold
    alerts: list[dict[str, Any]] = field(default_factory=list)

    @property
    def compliance(self) -> Optional[float]:
        """Lifetime good fraction (None before any traffic)."""
        if self.total <= 0:
            return None
        return self.good / self.total

    @property
    def firing(self) -> bool:
        return bool(self.alerts)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.objective.name,
            "verb": self.objective.verb,
            "kind": self.objective.kind,
            "objective": self.objective.objective,
            "threshold_s": (
                self.objective.threshold_s
                if self.objective.kind == LATENCY else None
            ),
            "good": self.good,
            "total": self.total,
            "compliance": self.compliance,
            "burn_rates": {
                str(int(window)): rate
                for window, rate in self.burn_rates.items()
            },
            "alerts": list(self.alerts),
        }


class _SampleRing:
    """Timestamped cumulative ``(good, total)`` samples, bounded."""

    def __init__(self, max_samples: int) -> None:
        self.times: deque[float] = deque(maxlen=max_samples)
        self.good: deque[float] = deque(maxlen=max_samples)
        self.total: deque[float] = deque(maxlen=max_samples)

    def append(self, when: float, good: float, total: float) -> None:
        self.times.append(when)
        self.good.append(good)
        self.total.append(total)

    def window_error_rate(
        self, now: float, window_s: float
    ) -> Optional[float]:
        """Bad fraction of the traffic inside ``[now − window_s, now]``.

        The baseline is the newest sample at or before the window start
        (counts are cumulative, so the difference is exactly the
        window's traffic); with no sample that old yet, the oldest
        available stands in.  None until two samples exist or when the
        window saw no traffic.
        """
        if len(self.times) < 2:
            return None
        times = list(self.times)
        index = bisect_right(times, now - window_s) - 1
        if index < 0:
            index = 0
        good = list(self.good)
        total = list(self.total)
        delta_total = total[-1] - total[index]
        if delta_total <= 0:
            return None
        delta_bad = delta_total - (good[-1] - good[index])
        return max(0.0, delta_bad) / delta_total


class SloMonitor:
    """Evaluates objectives against successive federated scrapes.

    >>> monitor = SloMonitor(clock=fake.now)          # doctest: +SKIP
    >>> monitor.observe(view)     # after every scrape
    >>> for status in monitor.evaluate():
    ...     if status.firing:
    ...         print(status.alerts)
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective] = DEFAULT_OBJECTIVES,
        alerts: Sequence[BurnAlert] = DEFAULT_ALERTS,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 4096,
    ) -> None:
        self.objectives = tuple(objectives)
        self.alerts = tuple(alerts)
        self.clock = clock
        self._rings = {
            objective.name: _SampleRing(max_samples)
            for objective in self.objectives
        }
        self._latest: dict[str, tuple[float, float]] = {}

    def observe(self, view: FederatedView) -> None:
        """Ingest one federated scrape (reads each objective's counts)."""
        now = self.clock()
        for objective in self.objectives:
            good, total = objective.counts(view)
            self.observe_counts(objective.name, good, total, now=now)

    def observe_counts(
        self,
        name: str,
        good: float,
        total: float,
        now: Optional[float] = None,
    ) -> None:
        """Ingest one cumulative sample directly (tests, custom feeds)."""
        ring = self._rings.get(name)
        if ring is None:
            raise KeyError(f"unknown objective {name!r}")
        ring.append(now if now is not None else self.clock(), good, total)
        self._latest[name] = (good, total)

    def evaluate(self) -> list[SloStatus]:
        """Every objective's current burn rates and firing alerts."""
        now = self.clock()
        statuses: list[SloStatus] = []
        for objective in self.objectives:
            ring = self._rings[objective.name]
            good, total = self._latest.get(objective.name, (0.0, 0.0))
            status = SloStatus(objective=objective, good=good, total=total)
            budget = objective.budget
            windows = sorted({
                window
                for alert in self.alerts
                for window in (alert.long_window_s, alert.short_window_s)
            })
            for window in windows:
                rate = ring.window_error_rate(now, window)
                status.burn_rates[window] = (
                    rate / budget if rate is not None else None
                )
            for alert in self.alerts:
                long_burn = status.burn_rates.get(alert.long_window_s)
                short_burn = status.burn_rates.get(alert.short_window_s)
                if (
                    long_burn is not None and short_burn is not None
                    and long_burn >= alert.threshold
                    and short_burn >= alert.threshold
                ):
                    status.alerts.append({
                        "severity": alert.severity,
                        "threshold": alert.threshold,
                        "long_window_s": alert.long_window_s,
                        "short_window_s": alert.short_window_s,
                        "long_burn": round(long_burn, 3),
                        "short_burn": round(short_burn, 3),
                    })
            statuses.append(status)
        return statuses
