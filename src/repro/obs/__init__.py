"""repro.obs — the unified observability layer.

One subsystem gives the whole stack its operational eyes (the paper's
evaluation is *about* measuring partitioning efficiency, rating cost,
and maintenance overhead; this module makes those signals first-class at
runtime instead of ad-hoc dataclasses):

* :mod:`repro.obs.registry` — labeled ``Counter`` / ``Gauge`` /
  ``Histogram`` families with Prometheus-text and JSON exposition;
* :mod:`repro.obs.tracing` — nested ``Span`` trees with
  monotonic-clock timing, per-name aggregates, and a slow-op log;
* :mod:`repro.obs.events` — a bounded ring-buffer event log with
  dropped-event accounting;
* :mod:`repro.obs.export` — JSONL trace export;
* :mod:`repro.obs.runtime` — the global on/off switch and the
  zero-cost-when-disabled helpers instrumented code calls;
* :mod:`repro.obs.shims` — compatibility mirrors that keep the legacy
  ``*Counters`` dataclasses working while feeding the registry.

Typical use::

    from repro import obs

    state = obs.enable(slow_op_threshold_s=0.01)
    ...  # run a workload: inserts, queries, maintenance
    print(state.registry.to_prometheus())
    for name, count, total_s in state.tracer.top_spans(5):
        print(f"{name}: {count} calls, {total_s * 1e3:.1f} ms")
    obs.disable()

See ``docs/OBSERVABILITY.md`` for the architecture and the metric
catalog, and ``python -m repro obs`` for the CLI surface.
"""

from repro.obs.events import Event, EventLog
from repro.obs.export import JsonlSpanExporter, read_jsonl_traces
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.runtime import (
    ObservabilityState,
    bind_span_histogram,
    disable,
    enable,
    event,
    gauge_set,
    inc,
    is_enabled,
    observe,
    registry,
    span,
    state,
)
from repro.obs.shims import flush_mirrors
from repro.obs.tracing import NOOP_SPAN, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "NOOP_SPAN",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonlSpanExporter",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "ObservabilityState",
    "Span",
    "Tracer",
    "bind_span_histogram",
    "disable",
    "enable",
    "event",
    "flush_mirrors",
    "gauge_set",
    "inc",
    "is_enabled",
    "observe",
    "read_jsonl_traces",
    "registry",
    "span",
    "state",
]
