"""repro.obs — the unified observability layer.

One subsystem gives the whole stack its operational eyes (the paper's
evaluation is *about* measuring partitioning efficiency, rating cost,
and maintenance overhead; this module makes those signals first-class at
runtime instead of ad-hoc dataclasses):

* :mod:`repro.obs.registry` — labeled ``Counter`` / ``Gauge`` /
  ``Histogram`` families with Prometheus-text and JSON exposition;
* :mod:`repro.obs.tracing` — nested ``Span`` trees with
  monotonic-clock timing, per-name aggregates, and a slow-op log;
* :mod:`repro.obs.events` — a bounded ring-buffer event log with
  dropped-event accounting;
* :mod:`repro.obs.export` — JSONL trace export;
* :mod:`repro.obs.runtime` — the global on/off switch and the
  zero-cost-when-disabled helpers instrumented code calls;
* :mod:`repro.obs.shims` — compatibility mirrors that keep the legacy
  ``*Counters`` dataclasses working while feeding the registry;
* :mod:`repro.obs.federation` — per-process observability documents
  (the ``obs`` wire verb's payload) merged into a cluster-level
  :class:`~repro.obs.federation.FederatedView`;
* :mod:`repro.obs.slo` — per-verb latency/availability objectives with
  multi-window burn-rate alerting over federated scrapes.

Typical use::

    from repro import obs

    state = obs.enable(slow_op_threshold_s=0.01)
    ...  # run a workload: inserts, queries, maintenance
    print(state.registry.to_prometheus())
    for name, count, total_s in state.tracer.top_spans(5):
        print(f"{name}: {count} calls, {total_s * 1e3:.1f} ms")
    obs.disable()

See ``docs/OBSERVABILITY.md`` for the architecture and the metric
catalog, and ``python -m repro obs`` for the CLI surface.
"""

from repro.obs.events import Event, EventLog
from repro.obs.export import JsonlSpanExporter, read_jsonl_traces
from repro.obs.federation import (
    FederatedView,
    local_obs_document,
    merge_documents,
    quantile_from_buckets,
    scrape_cluster,
    unreachable_document,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    SERVER_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.runtime import (
    ObservabilityState,
    adopt_wire_trace,
    bind_span_histogram,
    disable,
    enable,
    event,
    gauge_set,
    inc,
    is_enabled,
    observe,
    record_remote_span,
    registry,
    span,
    state,
    trace_scope,
    wire_trace,
)
from repro.obs.shims import flush_mirrors
from repro.obs.slo import (
    DEFAULT_ALERTS,
    DEFAULT_OBJECTIVES,
    BurnAlert,
    SloMonitor,
    SloObjective,
    SloStatus,
)
from repro.obs.tracing import NOOP_SPAN, Span, TraceContext, Tracer

__all__ = [
    "DEFAULT_ALERTS",
    "DEFAULT_BUCKETS",
    "DEFAULT_OBJECTIVES",
    "NOOP_SPAN",
    "SERVER_LATENCY_BUCKETS",
    "BurnAlert",
    "Counter",
    "Event",
    "EventLog",
    "FederatedView",
    "Gauge",
    "Histogram",
    "JsonlSpanExporter",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "ObservabilityState",
    "SloMonitor",
    "SloObjective",
    "SloStatus",
    "Span",
    "TraceContext",
    "Tracer",
    "adopt_wire_trace",
    "bind_span_histogram",
    "disable",
    "enable",
    "event",
    "flush_mirrors",
    "gauge_set",
    "inc",
    "is_enabled",
    "local_obs_document",
    "merge_documents",
    "observe",
    "quantile_from_buckets",
    "read_jsonl_traces",
    "record_remote_span",
    "registry",
    "scrape_cluster",
    "span",
    "state",
    "trace_scope",
    "unreachable_document",
    "wire_trace",
]
