"""The metrics registry: labeled counter/gauge/histogram families.

One process-wide registry replaces the three ad-hoc ``*Counters``
dataclasses of :mod:`repro.metrics.telemetry` as the system of record
for operational metrics (the dataclasses survive as compatibility shims
that mirror every write into the registry — see :mod:`repro.obs.shims`).
The design follows the Prometheus client-library data model:

* a **family** is one named metric with a fixed label schema
  (``repro_query_cache_hits_total`` with no labels,
  ``repro_txn_ops_total`` with ``kind``/``outcome``);
* each distinct label-value combination materializes one **child**
  holding the actual value; the family bounds child cardinality
  (``max_label_sets``) so a label mistake cannot grow memory without
  bound;
* **histograms** hold cumulative bucket counts over configurable upper
  bounds (``le`` is inclusive, Prometheus semantics) plus sum and count.

All mutation goes through one lock per registry — increments are a few
hundred nanoseconds, which only matters when observability is enabled at
all (disabled instrumentation never reaches the registry; see
:mod:`repro.obs.runtime`).

Exposition is machine-readable in two formats:
:meth:`MetricsRegistry.to_prometheus` (text format 0.0.4) and
:meth:`MetricsRegistry.to_json` — both served by ``python -m repro obs``.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Optional, Sequence

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: default histogram upper bounds (seconds) — spans sub-100µs catalog
#: operations through multi-second reorganizations
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: server-path latency bounds (seconds): log-spaced ×2 from 50µs to
#: ~6.5s.  Wire requests cluster in the 100µs–10ms band where the
#: default bounds leave whole decades covered by one bucket; a federated
#: p99 interpolated inside a ×2 bucket is wrong by at most ×2, which is
#: what the SLO layer's burn rates can tolerate
SERVER_LATENCY_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064,
    0.0128, 0.0256, 0.0512, 0.1024, 0.2048, 0.4096, 0.8192, 1.6384,
    3.2768, 6.5536,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Raised on metric misuse: bad names, label mismatches, cardinality."""


def _validate_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")


class Counter:
    """A monotonically increasing value (one child of a counter family)."""

    __slots__ = ("labels", "value", "_lock")

    def __init__(self, labels: tuple[str, ...], lock: threading.Lock) -> None:
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only increase, got inc({amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (one child of a gauge family)."""

    __slots__ = ("labels", "value", "_lock")

    def __init__(self, labels: tuple[str, ...], lock: threading.Lock) -> None:
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Bucketed histogram (one child of a histogram family).

    Internally ``bucket_counts[i]`` holds only the observations that
    landed in bucket *i* (``bounds[i-1] < value <= bounds[i]``) — one
    :func:`bisect.bisect_left` per observation instead of a scan over
    every bound.  :meth:`cumulative_buckets` folds them into the
    cumulative inclusive-``le`` view that Prometheus exposes, with an
    implicit ``+Inf`` bucket equal to ``count``.
    """

    __slots__ = ("labels", "bounds", "bucket_counts", "sum", "count", "_lock")

    def __init__(
        self,
        labels: tuple[str, ...],
        bounds: tuple[float, ...],
        lock: threading.Lock,
    ) -> None:
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        # bisect_left keeps ``le`` inclusive: value == bound lands in
        # that bound's bucket; value above every bound counts only
        # toward the implicit +Inf bucket
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.sum += value
            self.count += 1
            if index < len(self.bucket_counts):
                self.bucket_counts[index] += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ``+Inf`` last."""
        pairs = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.count))
        return pairs


class MetricFamily:
    """One named metric and all its label children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
        lock: threading.Lock,
        max_label_sets: int,
    ) -> None:
        _validate_name(name)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        if kind == HISTOGRAM:
            if not buckets or list(buckets) != sorted(set(buckets)):
                raise MetricError(
                    f"histogram buckets must be sorted and distinct: {buckets}"
                )
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self.max_label_sets = max_label_sets
        self._lock = lock
        self._children: dict[tuple[str, ...], Any] = {}
        #: fast path for the common no-label family
        self._default: Optional[Any] = None

    def _make_child(self, labelvalues: tuple[str, ...]):
        # every child gets its own lock: update paths run on the event
        # loop, the batcher, and executor workers at once, and funneling
        # them all through one registry-wide lock serializes unrelated
        # metrics against each other (exposition never needs more than
        # per-child consistency — each child's fields are read whole)
        child_lock = threading.Lock()
        if self.kind == COUNTER:
            return Counter(labelvalues, child_lock)
        if self.kind == GAUGE:
            return Gauge(labelvalues, child_lock)
        return Histogram(labelvalues, self.buckets, child_lock)

    def labels(self, **labels: Any):
        """The child for one label-value combination (created on demand)."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        values = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    if len(self._children) >= self.max_label_sets:
                        raise MetricError(
                            f"{self.name} exceeded max_label_sets="
                            f"{self.max_label_sets}; label values look "
                            f"unbounded"
                        )
                    child = self._make_child(values)
                    self._children[values] = child
        return child

    def _unlabeled(self):
        if self.labelnames:
            raise MetricError(
                f"{self.name} requires labels {self.labelnames}; use .labels()"
            )
        child = self._default
        if child is None:
            child = self._default = self._children.setdefault(
                (), self._make_child(())
            )
        return child

    # unlabeled shortcuts -------------------------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)

    def children(self) -> list[Any]:
        """All children, ordered by label values (stable exposition)."""
        return [self._children[key] for key in sorted(self._children)]


class MetricsRegistry:
    """A process-local collection of metric families.

    >>> registry = MetricsRegistry()
    >>> registry.counter("demo_total", "demo").inc()
    >>> registry.counter("demo_total").inc(2)
    >>> registry.get_value("demo_total")
    3.0
    """

    def __init__(self, max_label_sets: int = 256) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self.max_label_sets = max_label_sets
        # hot-path caches: metric name -> unlabeled child, one dict per
        # kind so a kind mismatch still surfaces as a MetricError via
        # the family lookup instead of an AttributeError on the child.
        # repro.obs.runtime's inc/observe/gauge_set fill these so the
        # per-call cost is one dict get + one child method call.
        self._fast_counters: dict[str, Counter] = {}
        self._fast_gauges: dict[str, Gauge] = {}
        self._fast_histograms: dict[str, Histogram] = {}
        #: labeled children memoized by (name, *sorted label items) —
        #: the runtime facade's hot path skips family + child resolution
        self._fast_labeled: dict[tuple, Any] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]],
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise MetricError(
                    f"{name} already registered as a {family.kind}, not {kind}"
                )
            if family.labelnames != tuple(labelnames):
                raise MetricError(
                    f"{name} already registered with labels "
                    f"{family.labelnames}, not {tuple(labelnames)}"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name,
                    kind,
                    help_text,
                    tuple(labelnames),
                    tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
                    self._lock,
                    self.max_label_sets,
                )
                self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, COUNTER, help_text, labelnames, None)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, GAUGE, help_text, labelnames, None)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._family(name, HISTOGRAM, help_text, labelnames, buckets)

    # introspection -------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def get_value(self, name: str, **labels: Any) -> Optional[float]:
        """A counter/gauge child's current value (None when absent)."""
        family = self._families.get(name)
        if family is None:
            return None
        values = tuple(str(labels[n]) for n in family.labelnames)
        child = family._children.get(values)
        return child.value if child is not None else None

    def reset(self) -> None:
        """Drop every family (tests and fresh CLI runs)."""
        with self._lock:
            self._families.clear()
            self._fast_counters.clear()
            self._fast_gauges.clear()
            self._fast_histograms.clear()
            self._fast_labeled.clear()

    # exposition ----------------------------------------------------------
    @staticmethod
    def _label_str(labelnames: Iterable[str], labelvalues: Iterable[str],
                   extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(labelnames, labelvalues)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                labels = self._label_str(family.labelnames, child.labels)
                if family.kind == HISTOGRAM:
                    for bound, count in child.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        bucket_labels = self._label_str(
                            family.labelnames, child.labels, f'le="{le}"'
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {count}"
                        )
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def to_json_obj(self) -> dict[str, Any]:
        """The registry as one JSON-ready document."""
        metrics = []
        for family in self.families():
            samples: list[dict[str, Any]] = []
            for child in family.children():
                labels = dict(zip(family.labelnames, child.labels))
                if family.kind == HISTOGRAM:
                    samples.append({
                        "labels": labels,
                        "buckets": [
                            ["+Inf" if le == float("inf") else le, count]
                            for le, count in child.cumulative_buckets()
                        ],
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics.append({
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            })
        return {"metrics": metrics}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_obj(), indent=indent)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Integral floats print as integers, the Prometheus convention."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
