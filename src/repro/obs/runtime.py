"""The process-wide observability switch and its zero-cost-off helpers.

Instrumented code throughout the repo calls four module-level functions
— :func:`span`, :func:`event`, :func:`inc`, :func:`observe` (plus
:func:`gauge_set`) — instead of holding tracer/registry references.
While observability is *disabled* (the default) each call is one global
read and an early return: no span objects, no dict churn, no locks.
``benchmarks/bench_observability.py`` holds that claim to a measured
noise-level bound.

:func:`enable` installs an :class:`ObservabilityState` — a registry, a
tracer (optional), a ring-buffer event log, and optionally a JSONL trace
exporter — and returns it; :func:`disable` uninstalls it (the state
object stays readable, so a CLI can render its digests after the run).
Enable/disable nest poorly on purpose: there is exactly one active state
per process, like a logging root handler.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.events import EventLog
from repro.obs.export import JsonlSpanExporter
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import NOOP_SPAN, Span, Tracer


@dataclass
class ObservabilityState:
    """Everything one enabled observability session collects."""

    registry: MetricsRegistry
    tracer: Optional[Tracer]
    events: EventLog
    exporter: Optional[JsonlSpanExporter] = None

    def close(self) -> None:
        if self.exporter is not None:
            self.exporter.close()
            self.exporter = None


_STATE: Optional[ObservabilityState] = None
#: hot-path mirrors of ``_STATE``'s members — span()/inc()/observe() read
#: one module global instead of chasing attributes on every call
_TRACER: Optional[Tracer] = None
_REGISTRY: Optional[MetricsRegistry] = None

#: span name -> (histogram name, help text): declared once at import
#: time, wired into every tracer that ``enable`` installs
_SPAN_HISTOGRAMS: dict[str, tuple[str, str]] = {}


def bind_span_histogram(
    span_name: str, metric_name: str, help_text: str = ""
) -> None:
    """Feed every ``span_name`` span's duration into a histogram.

    The span already times the region; binding it to a histogram makes
    that one measurement serve both the trace and the latency metric,
    so a hot call site pays for a single span and nothing else.  Call
    at module import time, next to the instrumented code; the binding
    applies to the current observability session (if tracing) and to
    every later :func:`enable`.
    """
    _SPAN_HISTOGRAMS[span_name] = (metric_name, help_text)
    if _STATE is not None and _STATE.tracer is not None:
        _STATE.tracer.span_histograms[span_name] = _STATE.registry.histogram(
            metric_name, help_text
        )._unlabeled()


def enable(
    trace: bool = True,
    slow_op_threshold_s: Optional[float] = 0.05,
    trace_jsonl_path: Optional[Union[str, Path]] = None,
    event_capacity: int = 1024,
    max_finished_traces: int = 256,
    registry: Optional[MetricsRegistry] = None,
) -> ObservabilityState:
    """Turn observability on; returns the installed state.

    Args:
        trace: also install a tracer (metrics/events alone are cheaper).
        slow_op_threshold_s: spans at least this long land in the
            tracer's slow-op log (None disables the log).
        trace_jsonl_path: when set, finished traces are appended there
            as JSON lines.
        event_capacity: ring-buffer size of the event log.
        max_finished_traces: ring size of kept root-span trees.
        registry: reuse an existing registry (tests; default: fresh).
    """
    global _STATE, _TRACER, _REGISTRY
    if _STATE is not None:
        disable()
    exporter = (
        JsonlSpanExporter(trace_jsonl_path)
        if trace_jsonl_path is not None
        else None
    )
    tracer = (
        Tracer(
            max_finished=max_finished_traces,
            slow_threshold_s=slow_op_threshold_s,
            exporter=exporter,
        )
        if trace
        else None
    )
    _STATE = ObservabilityState(
        registry=registry if registry is not None else MetricsRegistry(),
        tracer=tracer,
        events=EventLog(capacity=event_capacity),
        exporter=exporter,
    )
    if tracer is not None:
        for span_name, (metric, help_text) in _SPAN_HISTOGRAMS.items():
            tracer.span_histograms[span_name] = _STATE.registry.histogram(
                metric, help_text
            )._unlabeled()
    _TRACER = _STATE.tracer
    _REGISTRY = _STATE.registry
    return _STATE


def disable() -> Optional[ObservabilityState]:
    """Turn observability off; returns the state that was active."""
    global _STATE, _TRACER, _REGISTRY
    if _STATE is not None:
        # deferred-mirror shims flush on disable so the returned state's
        # registry is complete (import here: shims imports runtime)
        from repro.obs.shims import flush_mirrors

        flush_mirrors()
    state = _STATE
    _STATE = None
    _TRACER = None
    _REGISTRY = None
    if state is not None:
        state.close()
    return state


def is_enabled() -> bool:
    return _STATE is not None


def state() -> Optional[ObservabilityState]:
    """The active state, or None while disabled."""
    return _STATE


def registry() -> Optional[MetricsRegistry]:
    """The active metrics registry, or None while disabled."""
    return _STATE.registry if _STATE is not None else None


# ---------------------------------------------------------------------------
# hot-path helpers: one global read + early return when disabled.  While
# enabled they stay lean too — spans are built directly (no tracer
# dispatch) and unlabeled metric children come from the registry's
# per-kind caches, so an enabled call site is a dict get plus one child
# method call.  benchmarks/bench_observability.py gates both modes.
# ---------------------------------------------------------------------------
def span(name: str, **attributes: Any) -> Span:
    """A tracer span, or the shared no-op span while disabled/untraced."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN  # type: ignore[return-value]
    return Span(tracer, name, attributes)


def event(kind: str, /, **fields: Any) -> None:
    """Emit one event into the ring buffer (dropped silently when off)."""
    s = _STATE
    if s is not None:
        s.events.emit(kind, **fields)


def inc(name: str, amount: float = 1.0, help_text: str = "",
        **labels: Any) -> None:
    """Increment a counter family (created on first use)."""
    registry = _REGISTRY
    if registry is None:
        return
    if labels:
        family = registry.counter(name, help_text, tuple(sorted(labels)))
        family.labels(**labels).inc(amount)
        return
    child = registry._fast_counters.get(name)
    if child is None:
        child = registry.counter(name, help_text)._unlabeled()
        registry._fast_counters[name] = child
    child.inc(amount)


def observe(name: str, value: float, help_text: str = "",
            **labels: Any) -> None:
    """Observe a value into a histogram family (created on first use)."""
    registry = _REGISTRY
    if registry is None:
        return
    if labels:
        family = registry.histogram(name, help_text, tuple(sorted(labels)))
        family.labels(**labels).observe(value)
        return
    child = registry._fast_histograms.get(name)
    if child is None:
        child = registry.histogram(name, help_text)._unlabeled()
        registry._fast_histograms[name] = child
    child.observe(value)


def gauge_set(name: str, value: float, help_text: str = "",
              **labels: Any) -> None:
    """Set a gauge family's value (created on first use)."""
    registry = _REGISTRY
    if registry is None:
        return
    if labels:
        family = registry.gauge(name, help_text, tuple(sorted(labels)))
        family.labels(**labels).set(value)
        return
    child = registry._fast_gauges.get(name)
    if child is None:
        child = registry.gauge(name, help_text)._unlabeled()
        registry._fast_gauges[name] = child
    child.set(value)
