"""The process-wide observability switch and its zero-cost-off helpers.

Instrumented code throughout the repo calls four module-level functions
— :func:`span`, :func:`event`, :func:`inc`, :func:`observe` (plus
:func:`gauge_set`) — instead of holding tracer/registry references.
While observability is *disabled* (the default) each call is one global
read and an early return: no span objects, no dict churn, no locks.
``benchmarks/bench_observability.py`` holds that claim to a measured
noise-level bound.

:func:`enable` installs an :class:`ObservabilityState` — a registry, a
tracer (optional), a ring-buffer event log, and optionally a JSONL trace
exporter — and returns it; :func:`disable` uninstalls it (the state
object stays readable, so a CLI can render its digests after the run).
Enable/disable nest poorly on purpose: there is exactly one active state
per process, like a logging root handler.
"""

from __future__ import annotations

import random as _random
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ContextManager, Optional, Sequence, Union

from repro.obs.events import EventLog
from repro.obs.export import JsonlSpanExporter
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    TraceContext,
    Tracer,
    new_span_id,
    new_trace_id,
)


@dataclass
class ObservabilityState:
    """Everything one enabled observability session collects."""

    registry: MetricsRegistry
    tracer: Optional[Tracer]
    events: EventLog
    exporter: Optional[JsonlSpanExporter] = None
    #: trace-context propagation: when True, clients stamp a ``trace``
    #: field on every outgoing wire request and servers adopt incoming
    #: ones (see wire_trace / adopt_wire_trace)
    propagate: bool = False
    #: fraction of client-originated traces marked sampled (the flag
    #: still crosses the wire when 0; receivers just don't record)
    sample_rate: float = 1.0

    def close(self) -> None:
        if self.exporter is not None:
            self.exporter.close()
            self.exporter = None


_STATE: Optional[ObservabilityState] = None
#: hot-path mirrors of ``_STATE``'s members — span()/inc()/observe() read
#: one module global instead of chasing attributes on every call
_TRACER: Optional[Tracer] = None
_REGISTRY: Optional[MetricsRegistry] = None
#: mirror of ``_STATE.propagate`` — wire_trace() is called per client
#: request and must stay one global read when propagation is off
_PROPAGATE: bool = False

#: span name -> (histogram name, help text, buckets): declared once at
#: import time, wired into every tracer that ``enable`` installs
_SPAN_HISTOGRAMS: dict[
    str, tuple[str, str, Optional[tuple[float, ...]]]
] = {}

#: shared reusable no-op scope for trace_scope() while disabled
_NULL_SCOPE: ContextManager[None] = nullcontext()


def bind_span_histogram(
    span_name: str,
    metric_name: str,
    help_text: str = "",
    buckets: Optional[Sequence[float]] = None,
) -> None:
    """Feed every ``span_name`` span's duration into a histogram.

    The span already times the region; binding it to a histogram makes
    that one measurement serve both the trace and the latency metric,
    so a hot call site pays for a single span and nothing else.  Call
    at module import time, next to the instrumented code; the binding
    applies to the current observability session (if tracing) and to
    every later :func:`enable`.  ``buckets`` overrides the histogram's
    bounds (only honored when this binding creates the family).
    """
    bounds = tuple(buckets) if buckets is not None else None
    _SPAN_HISTOGRAMS[span_name] = (metric_name, help_text, bounds)
    if _STATE is not None and _STATE.tracer is not None:
        _STATE.tracer.span_histograms[span_name] = _STATE.registry.histogram(
            metric_name, help_text, buckets=bounds
        )._unlabeled()


def enable(
    trace: bool = True,
    slow_op_threshold_s: Optional[float] = 0.05,
    trace_jsonl_path: Optional[Union[str, Path]] = None,
    event_capacity: int = 1024,
    max_finished_traces: int = 32,
    registry: Optional[MetricsRegistry] = None,
    propagate: bool = False,
    sample_rate: float = 1.0,
) -> ObservabilityState:
    """Turn observability on; returns the installed state.

    Args:
        trace: also install a tracer (metrics/events alone are cheaper).
        slow_op_threshold_s: spans at least this long land in the
            tracer's slow-op log (None disables the log).
        trace_jsonl_path: when set, finished traces are appended there
            as JSON lines.
        event_capacity: ring-buffer size of the event log.
        max_finished_traces: ring size of kept root-span trees.  The
            ring is also a GC dial: every retained tree is an object
            graph the young-generation collector must traverse while it
            lives, so a busy server pays for capacity it never reads.
            32 keeps several full request fan-outs inspectable; raise
            it for interactive debugging, not in steady state.
        registry: reuse an existing registry (tests; default: fresh).
        propagate: stamp/adopt wire trace contexts (distributed traces;
            requires ``trace``).  Off by default — a client of an
            uninstrumented server gains nothing from the extra field.
        sample_rate: fraction of client-originated traces marked
            sampled; unsampled contexts still cross the wire but no
            hop records spans for them.
    """
    global _STATE, _TRACER, _REGISTRY, _PROPAGATE
    if _STATE is not None:
        disable()
    exporter = (
        JsonlSpanExporter(trace_jsonl_path)
        if trace_jsonl_path is not None
        else None
    )
    tracer = (
        Tracer(
            max_finished=max_finished_traces,
            slow_threshold_s=slow_op_threshold_s,
            exporter=exporter,
        )
        if trace
        else None
    )
    _STATE = ObservabilityState(
        registry=registry if registry is not None else MetricsRegistry(),
        tracer=tracer,
        events=EventLog(capacity=event_capacity),
        exporter=exporter,
        propagate=propagate and tracer is not None,
        sample_rate=max(0.0, min(1.0, sample_rate)),
    )
    if tracer is not None:
        for span_name, (metric, help_text, bounds) in _SPAN_HISTOGRAMS.items():
            tracer.span_histograms[span_name] = _STATE.registry.histogram(
                metric, help_text, buckets=bounds
            )._unlabeled()
    _TRACER = _STATE.tracer
    _REGISTRY = _STATE.registry
    _PROPAGATE = _STATE.propagate
    return _STATE


def disable() -> Optional[ObservabilityState]:
    """Turn observability off; returns the state that was active."""
    global _STATE, _TRACER, _REGISTRY, _PROPAGATE
    if _STATE is not None:
        # deferred-mirror shims flush on disable so the returned state's
        # registry is complete (import here: shims imports runtime)
        from repro.obs.shims import flush_mirrors

        flush_mirrors()
    state = _STATE
    _STATE = None
    _TRACER = None
    _REGISTRY = None
    _PROPAGATE = False
    if state is not None:
        state.close()
    return state


def is_enabled() -> bool:
    return _STATE is not None


def state() -> Optional[ObservabilityState]:
    """The active state, or None while disabled."""
    return _STATE


def registry() -> Optional[MetricsRegistry]:
    """The active metrics registry, or None while disabled."""
    return _STATE.registry if _STATE is not None else None


# ---------------------------------------------------------------------------
# hot-path helpers: one global read + early return when disabled.  While
# enabled they stay lean too — spans are built directly (no tracer
# dispatch) and unlabeled metric children come from the registry's
# per-kind caches, so an enabled call site is a dict get plus one child
# method call.  benchmarks/bench_observability.py gates both modes.
# ---------------------------------------------------------------------------
def span(name: str, **attributes: Any) -> Span:
    """A tracer span, or the shared no-op span while disabled/untraced."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN  # type: ignore[return-value]
    return Span(tracer, name, attributes)


def event(kind: str, /, **fields: Any) -> None:
    """Emit one event into the ring buffer (dropped silently when off)."""
    s = _STATE
    if s is not None:
        s.events.emit(kind, **fields)


def inc(name: str, amount: float = 1.0, help_text: str = "",
        **labels: Any) -> None:
    """Increment a counter family (created on first use)."""
    registry = _REGISTRY
    if registry is None:
        return
    if labels:
        key = (name,) + tuple(sorted(labels.items()))
        child = registry._fast_labeled.get(key)
        if child is None:
            family = registry.counter(name, help_text, tuple(sorted(labels)))
            child = registry._fast_labeled[key] = family.labels(**labels)
        child.inc(amount)
        return
    child = registry._fast_counters.get(name)
    if child is None:
        child = registry.counter(name, help_text)._unlabeled()
        registry._fast_counters[name] = child
    child.inc(amount)


def observe(name: str, value: float, help_text: str = "",
            buckets: Optional[Sequence[float]] = None,
            **labels: Any) -> None:
    """Observe a value into a histogram family (created on first use).

    ``buckets`` sets the family's bounds when this call creates it
    (registry semantics: bounds are fixed at family creation).
    """
    registry = _REGISTRY
    if registry is None:
        return
    if labels:
        key = (name,) + tuple(sorted(labels.items()))
        child = registry._fast_labeled.get(key)
        if child is None:
            family = registry.histogram(
                name, help_text, tuple(sorted(labels)), buckets=buckets
            )
            child = registry._fast_labeled[key] = family.labels(**labels)
        child.observe(value)
        return
    child = registry._fast_histograms.get(name)
    if child is None:
        child = registry.histogram(
            name, help_text, buckets=buckets
        )._unlabeled()
        registry._fast_histograms[name] = child
    child.observe(value)


def gauge_set(name: str, value: float, help_text: str = "",
              **labels: Any) -> None:
    """Set a gauge family's value (created on first use)."""
    registry = _REGISTRY
    if registry is None:
        return
    if labels:
        key = (name,) + tuple(sorted(labels.items()))
        child = registry._fast_labeled.get(key)
        if child is None:
            family = registry.gauge(name, help_text, tuple(sorted(labels)))
            child = registry._fast_labeled[key] = family.labels(**labels)
        child.set(value)
        return
    child = registry._fast_gauges.get(name)
    if child is None:
        child = registry.gauge(name, help_text)._unlabeled()
        registry._fast_gauges[name] = child
    child.set(value)


# ---------------------------------------------------------------------------
# distributed-trace helpers: how a trace context crosses the wire.  All
# four are one-or-two global reads and an early return unless tracing
# *and* propagation are enabled — a client or server running with
# observability off pays nothing for them.
# ---------------------------------------------------------------------------
def wire_trace() -> Optional[str]:
    """The ``trace`` field for an outgoing request, or None.

    Inside an open span (or an adopted remote context) the current
    position in the trace is stamped, so the receiver's spans become
    children of the caller's.  Outside any span a fresh root context is
    minted — the originating client starts the trace — honoring the
    session's ``sample_rate``.  Either way the value is the flat
    traceparent string of :meth:`TraceContext.to_wire`.
    """
    tracer = _TRACER
    if tracer is None or not _PROPAGATE:
        return None
    context = tracer.current_context()
    if context is not None:
        return context.to_wire()
    state = _STATE
    sampled = True
    if state is not None and state.sample_rate < 1.0:
        sampled = _random.random() < state.sample_rate
    # fresh root minted straight into wire form: this runs per client
    # request, and the intermediate TraceContext would be garbage
    return (
        "00-" + new_trace_id() + "-" + new_span_id()
        + ("-01" if sampled else "-00")
    )


def adopt_wire_trace(wire: Any) -> Optional[TraceContext]:
    """Parse an incoming ``trace`` field into this hop's own context.

    Returns a *child* context (fresh span id, parented on the sender's
    span) ready to stamp on the span this hop records for the request —
    or None when propagation is off or the field is absent/malformed.
    """
    tracer = _TRACER
    if tracer is None or not _PROPAGATE or wire is None:
        return None
    # parse + child fused into one construction: this runs per served
    # request, so the intermediate parent context is skipped.  Shape
    # checks mirror TraceContext.from_wire (see its docstring for why
    # validation stops there)
    if (
        not isinstance(wire, str)
        or len(wire) != 55
        or not wire.startswith("00-")
        or wire[35] != "-"
        or wire[52] != "-"
    ):
        return None
    return TraceContext(
        wire[3:35], new_span_id(), wire[36:52], wire[53:55] != "00",
    )


def trace_scope(context: Optional[TraceContext]) -> ContextManager[Any]:
    """Activate *context* as the ambient parent for local root spans.

    Wrap only synchronous regions (no ``await`` inside): the ambient
    slot is thread-local and would bleed into interleaved event-loop
    tasks.  A None or unsampled context yields a shared no-op scope.
    """
    tracer = _TRACER
    if tracer is None or context is None or not context.sampled:
        return _NULL_SCOPE
    return tracer.activate_context(context)


def record_remote_span(
    name: str,
    started_s: float,
    ended_s: float,
    context: Optional[TraceContext],
    error: Optional[str] = None,
    **attributes: Any,
) -> None:
    """Record one externally timed span under *context* (see
    :meth:`Tracer.record_span`); dropped when tracing is off or the
    context is absent/unsampled."""
    tracer = _TRACER
    if tracer is None or context is None or not context.sampled:
        return
    tracer.record_span(
        name, started_s, ended_s, context=context, error=error, **attributes
    )
