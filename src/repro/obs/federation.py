"""Metrics federation: one cluster-level view over per-process registries.

The registry (:mod:`repro.obs.registry`) is strictly per-process; the
cluster is not.  This module defines the **observability document** a
process exposes over the wire (the ``obs`` verb — its flushed registry
in JSON exposition plus bounded trace digests) and the merge that folds
many such documents into one federated view:

* every sample gains a ``node`` label naming its source, so per-node
  detail survives aggregation;
* counters and gauges are additionally **summed** across sources, and
  histograms with identical bucket bounds are merged bucket-wise — the
  cluster-level distributions the SLO layer evaluates;
* sources that could not be scraped appear as explicitly
  **unreachable** (with the transport error), and documents older than
  ``stale_after_s`` are marked **stale** — a federated view never
  silently pretends a missing node contributed zeros.

The router's ``obs`` fan-out builds the document list (its own document
plus one per serving node); ``python -m repro obs --cluster`` and the
fleet Prometheus endpoint render the merged view; ``repro.obs.slo``
consumes it for burn-rate evaluation.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.obs import runtime
from repro.obs.shims import flush_mirrors

_INF = float("inf")


# ---------------------------------------------------------------------------
# per-process documents
# ---------------------------------------------------------------------------
def local_obs_document(name: str, tier: str = "node") -> dict[str, Any]:
    """This process's observability document (the ``obs`` verb body).

    Mirrored legacy counters are flushed first so the registry snapshot
    is current, not stale by one flush interval.  With observability
    disabled the document still identifies the source — federation
    renders it as enabled=false rather than inventing zeros.
    """
    flush_mirrors()
    document: dict[str, Any] = {
        "name": name,
        "tier": tier,
        "collected_at": time.time(),
        "enabled": False,
    }
    state = runtime.state()
    if state is None:
        return document
    document["enabled"] = True
    document["registry"] = state.registry.to_json_obj()
    document["events_dropped"] = state.events.dropped
    tracer = state.tracer
    if tracer is not None:
        document["traces"] = {
            "top_spans": [
                [span_name, count, total_s]
                for span_name, count, total_s in tracer.top_spans(10)
            ],
            "slow_ops": list(tracer.slow_ops),
            "roots_finished": tracer.roots_finished,
            "traces_dropped": tracer.traces_dropped,
        }
    return document


def unreachable_document(
    name: str, error: str, tier: str = "node"
) -> dict[str, Any]:
    """The placeholder document for a source that could not be scraped."""
    return {
        "name": name,
        "tier": tier,
        "collected_at": time.time(),
        "enabled": False,
        "unreachable": True,
        "error": error,
    }


# ---------------------------------------------------------------------------
# bucket arithmetic
# ---------------------------------------------------------------------------
def _le_value(le: Any) -> float:
    return _INF if le in ("+Inf", None) else float(le)


def quantile_from_buckets(
    pairs: Sequence[tuple[float, float]], q: float
) -> Optional[float]:
    """Estimate the q-quantile from cumulative ``(le, count)`` pairs.

    Prometheus ``histogram_quantile`` semantics: linear interpolation
    inside the bucket the target rank falls in; a rank landing in the
    ``+Inf`` bucket answers the highest finite bound (the estimate is
    a floor, not a guess).  None when the histogram is empty.
    """
    if not pairs:
        return None
    total = pairs[-1][1]
    if total <= 0:
        return None
    target = q * total
    previous_bound = 0.0
    previous_cumulative = 0.0
    for bound, cumulative in pairs:
        if cumulative >= target:
            if bound == _INF or cumulative == previous_cumulative:
                return previous_bound
            fraction = (target - previous_cumulative) / (
                cumulative - previous_cumulative
            )
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound = bound
        previous_cumulative = cumulative
    return previous_bound


def _sum_cumulative(
    bucket_lists: list[list[tuple[float, float]]],
) -> Optional[list[tuple[float, float]]]:
    """Element-wise sum of cumulative bucket lists; None on a bounds
    mismatch (histograms with different bucket presets cannot be merged
    without lying about where observations fell)."""
    if not bucket_lists:
        return None
    bounds = [le for le, _count in bucket_lists[0]]
    merged = [0.0] * len(bounds)
    for pairs in bucket_lists:
        if [le for le, _count in pairs] != bounds:
            return None
        for index, (_le, count) in enumerate(pairs):
            merged[index] += count
    return list(zip(bounds, merged))


# ---------------------------------------------------------------------------
# the federated view
# ---------------------------------------------------------------------------
class FederatedView:
    """Many observability documents folded into one cluster view.

    Build with :func:`merge_documents`.  ``sources`` keeps one status
    row per document (reachability, staleness, age); ``families`` holds
    every metric family with per-source ``node`` labels on each sample;
    the ``merged_*`` accessors answer cluster-level questions (summed
    counters, bucket-wise merged histograms, estimated quantiles).
    """

    def __init__(self, stale_after_s: float, now: Optional[float] = None):
        self.stale_after_s = stale_after_s
        self.collected_at = now if now is not None else time.time()
        #: per-document status: name, tier, enabled, unreachable, stale,
        #: age_s, error
        self.sources: list[dict[str, Any]] = []
        #: family name -> {"type", "help", "samples": [sample]} where
        #: every sample's labels include the source's ``node``
        self.families: dict[str, dict[str, Any]] = {}
        #: per-source trace digests (bounded, straight from the docs)
        self.traces: dict[str, dict[str, Any]] = {}
        #: family names whose histograms could not be bucket-merged
        #: because sources disagreed on bounds
        self.mixed_bucket_families: set[str] = set()

    # -- construction ------------------------------------------------------
    def _add_document(self, document: dict[str, Any]) -> None:
        name = str(document.get("name", f"source-{len(self.sources)}"))
        unreachable = bool(document.get("unreachable"))
        collected = document.get("collected_at")
        age_s = (
            max(0.0, self.collected_at - collected)
            if isinstance(collected, (int, float)) and not unreachable
            else None
        )
        status: dict[str, Any] = {
            "name": name,
            "tier": document.get("tier", "node"),
            "enabled": bool(document.get("enabled")),
            "unreachable": unreachable,
            "stale": age_s is not None and age_s > self.stale_after_s,
            "age_s": round(age_s, 3) if age_s is not None else None,
        }
        if document.get("error"):
            status["error"] = str(document["error"])
        self.sources.append(status)
        if unreachable:
            return
        traces = document.get("traces")
        if isinstance(traces, dict):
            self.traces[name] = traces
        registry = document.get("registry")
        if not isinstance(registry, dict):
            return
        for family in registry.get("metrics", ()):
            if not isinstance(family, dict) or "name" not in family:
                continue
            merged = self.families.setdefault(family["name"], {
                "type": family.get("type", "untyped"),
                "help": family.get("help", ""),
                "samples": [],
            })
            for sample in family.get("samples", ()):
                if not isinstance(sample, dict):
                    continue
                labeled = dict(sample)
                labeled["labels"] = {
                    **sample.get("labels", {}), "node": name,
                }
                merged["samples"].append(labeled)

    @classmethod
    def from_json_obj(
        cls, document: dict[str, Any], stale_after_s: float = 60.0
    ) -> "FederatedView":
        """Rebuild a view from :meth:`to_json_obj` output.

        This is how ``repro obs --cluster`` turns the router's wire
        answer (the already-merged document) back into a queryable
        view; samples keep the ``node`` labels stamped at merge time.
        """
        collected = document.get("collected_at")
        view = cls(
            stale_after_s=stale_after_s,
            now=collected if isinstance(collected, (int, float)) else None,
        )
        for source in document.get("sources", ()):
            if isinstance(source, dict):
                view.sources.append(dict(source))
        for family in document.get("metrics", ()):
            if not isinstance(family, dict) or "name" not in family:
                continue
            view.families[family["name"]] = {
                "type": family.get("type", "untyped"),
                "help": family.get("help", ""),
                "samples": [
                    dict(sample) for sample in family.get("samples", ())
                    if isinstance(sample, dict)
                ],
            }
        traces = document.get("traces")
        if isinstance(traces, dict):
            view.traces = dict(traces)
        return view

    # -- cluster-level accessors ------------------------------------------
    @property
    def unreachable(self) -> list[str]:
        return [s["name"] for s in self.sources if s["unreachable"]]

    @property
    def stale(self) -> list[str]:
        return [s["name"] for s in self.sources if s["stale"]]

    def _samples(
        self, name: str, labels: dict[str, Any]
    ) -> list[dict[str, Any]]:
        family = self.families.get(name)
        if family is None:
            return []
        wanted = {key: str(value) for key, value in labels.items()}
        return [
            sample for sample in family["samples"]
            if all(
                str(sample["labels"].get(key)) == value
                for key, value in wanted.items()
            )
        ]

    def counter_total(self, name: str, **labels: Any) -> float:
        """Sum of matching counter/gauge samples across the cluster."""
        return float(sum(
            sample.get("value", 0.0) for sample in self._samples(name, labels)
        ))

    def merged_histogram(
        self, name: str, **labels: Any
    ) -> Optional[dict[str, Any]]:
        """Bucket-wise sum of matching histogram samples.

        Returns ``{"buckets": [(le, cumulative)], "sum": float,
        "count": float}`` — or None when nothing matched or the sources
        disagree on bucket bounds (then recorded in
        ``mixed_bucket_families``; per-node samples remain available).
        """
        samples = [
            sample for sample in self._samples(name, labels)
            if "buckets" in sample
        ]
        if not samples:
            return None
        merged = _sum_cumulative([
            [(_le_value(le), count) for le, count in sample["buckets"]]
            for sample in samples
        ])
        if merged is None:
            self.mixed_bucket_families.add(name)
            return None
        return {
            "buckets": merged,
            "sum": float(sum(sample.get("sum", 0.0) for sample in samples)),
            "count": float(sum(sample.get("count", 0) for sample in samples)),
        }

    def histogram_counts(
        self, name: str, le: float, **labels: Any
    ) -> tuple[float, float]:
        """``(observations ≤ le, total observations)`` cluster-wide.

        The good count is read at the largest bucket bound that does not
        exceed *le* — a conservative floor when *le* falls between
        bounds (an SLO must not count an observation as fast on the
        strength of interpolation).
        """
        merged = self.merged_histogram(name, **labels)
        if merged is None:
            # bounds mismatch or no samples: fall back to summing the
            # per-sample reading so mixed clusters still get a floor
            good = 0.0
            total = 0.0
            for sample in self._samples(name, labels):
                if "buckets" not in sample:
                    continue
                pairs = [
                    (_le_value(bound), count)
                    for bound, count in sample["buckets"]
                ]
                good += _count_at(pairs, le)
                total += sample.get("count", 0)
            return good, total
        return _count_at(merged["buckets"], le), merged["count"]

    def quantile(
        self, name: str, q: float, **labels: Any
    ) -> Optional[float]:
        """Estimated q-quantile of a cluster-merged histogram."""
        merged = self.merged_histogram(name, **labels)
        if merged is None:
            return None
        return quantile_from_buckets(merged["buckets"], q)

    # -- exposition --------------------------------------------------------
    def to_json_obj(self) -> dict[str, Any]:
        return {
            "collected_at": self.collected_at,
            "sources": list(self.sources),
            "unreachable": self.unreachable,
            "stale": self.stale,
            "metrics": [
                {
                    "name": name,
                    "type": family["type"],
                    "help": family["help"],
                    "samples": family["samples"],
                }
                for name, family in sorted(self.families.items())
            ],
            "traces": self.traces,
        }

    def to_prometheus(self) -> str:
        """The fleet in Prometheus text format, one ``node`` label per
        sample plus an ``repro_cluster_node_up`` row per source."""
        lines: list[str] = []
        lines.append(
            "# HELP repro_cluster_node_up 1 when the node's observability"
            " document was scraped, 0 when unreachable"
        )
        lines.append("# TYPE repro_cluster_node_up gauge")
        for source in self.sources:
            up = 0 if source["unreachable"] else 1
            lines.append(
                f'repro_cluster_node_up{{node="{source["name"]}",'
                f'tier="{source["tier"]}"}} {up}'
            )
        for name, family in sorted(self.families.items()):
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for sample in family["samples"]:
                label_str = ",".join(
                    f'{key}="{_escape(str(value))}"'
                    for key, value in sorted(sample["labels"].items())
                )
                if "buckets" in sample:
                    for le, count in sample["buckets"]:
                        bound = "+Inf" if _le_value(le) == _INF else le
                        lines.append(
                            f'{name}_bucket{{{label_str},le="{bound}"}} '
                            f"{_fmt(count)}"
                        )
                    lines.append(
                        f"{name}_sum{{{label_str}}} "
                        f"{_fmt(sample.get('sum', 0.0))}"
                    )
                    lines.append(
                        f"{name}_count{{{label_str}}} "
                        f"{_fmt(sample.get('count', 0))}"
                    )
                else:
                    lines.append(
                        f"{name}{{{label_str}}} "
                        f"{_fmt(sample.get('value', 0.0))}"
                    )
        return "\n".join(lines) + "\n"


def _count_at(pairs: Sequence[tuple[float, float]], le: float) -> float:
    """Cumulative count at the largest bound ≤ *le* (0 below the first)."""
    count = 0.0
    for bound, cumulative in pairs:
        if bound <= le:
            count = cumulative
        else:
            break
    return count


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def merge_documents(
    documents: Iterable[dict[str, Any]],
    stale_after_s: float = 60.0,
    now: Optional[float] = None,
) -> FederatedView:
    """Fold observability documents into one :class:`FederatedView`."""
    view = FederatedView(stale_after_s=stale_after_s, now=now)
    for document in documents:
        if isinstance(document, dict):
            view._add_document(document)
    return view


def scrape_cluster(
    request: Callable[[str], dict[str, Any]],
    names: Sequence[str],
    stale_after_s: float = 60.0,
) -> FederatedView:
    """Scrape *names* through a caller-supplied request function.

    ``request(name)`` must return the source's observability document
    or raise; a raise becomes an explicit unreachable marker.  The
    router uses its own async fan-out instead; this helper serves
    tests and synchronous collectors.
    """
    documents: list[dict[str, Any]] = []
    for name in names:
        try:
            documents.append(request(name))
        except Exception as err:  # noqa: BLE001 - any failure = unreachable
            documents.append(unreachable_document(name, str(err)))
    return merge_documents(documents, stale_after_s=stale_after_s)
