"""Structured tracing: spans, nesting, timing, and slow-op capture.

A :class:`Span` is one timed region of a request — an insert, the rating
scan inside it, the split cascade it triggered.  Spans nest: the tracer
keeps a per-thread stack, so a span opened while another is active
becomes its child, and a finished *root* span is a complete tree of what
one operation did and where its time went.  Timing uses
``time.perf_counter()`` exclusively (monotonic; wall-clock time has no
business inside a duration — see ``docs/OBSERVABILITY.md``).

The tracer keeps three digests, all bounded:

* ``finished`` — the most recent root span trees (ring, for
  ``python -m repro obs --traces``);
* ``aggregates`` — per-name call count and cumulative time ("top spans");
* ``slow_ops`` — spans whose duration crossed ``slow_threshold_s``.

An optional ``exporter`` callable receives every finished root span —
:class:`repro.obs.export.JsonlSpanExporter` writes them as JSON lines.

Spans are exception-safe: ``with tracer.span("x"):`` always closes the
span and pops the stack; an escaping exception is recorded on the span
(``error``) and re-raised.  When observability is disabled, call sites
get the shared :data:`NOOP_SPAN` instead — one allocation-free object
whose methods do nothing (see :mod:`repro.obs.runtime`).
"""

from __future__ import annotations

import random as _random
import threading
from collections import deque
from time import perf_counter
from typing import Any, Callable, Optional, Sequence

#: process-local id source for trace/span ids.  Mersenne state is only
#: touched under the GIL (getrandbits is one C call), and collisions
#: across processes are astronomically unlikely at these widths
#: (128-bit trace ids, 64-bit span ids — the W3C traceparent widths).
_IDS = _random.Random()


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id."""
    return f"{_IDS.getrandbits(128):032x}"


def new_span_id() -> str:
    """A fresh 16-hex-digit span id."""
    return f"{_IDS.getrandbits(64):016x}"


class TraceContext:
    """One hop's position in a distributed trace.

    ``trace_id`` names the whole cross-process tree; ``span_id`` is the
    id of *this* hop's span; ``parent_span_id`` links it to the hop one
    wire crossing upstream (None at the originating client).  The wire
    form (:meth:`to_wire`) carries only ``trace_id``, the sender's
    ``span_id``, and the ``sampled`` flag — the receiver derives its own
    context with :meth:`child`, so parent/child edges are implied by the
    request flow rather than shipped explicitly.
    """

    __slots__ = ("trace_id", "span_id", "parent_span_id", "sampled")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_span_id: Optional[str] = None,
        sampled: bool = True,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id
        self.sampled = sampled

    @classmethod
    def new(cls, sampled: bool = True) -> "TraceContext":
        """A fresh root context (the originating client's hop)."""
        return cls(new_trace_id(), new_span_id(), None, sampled)

    def child(self) -> "TraceContext":
        """A context one hop below this one (fresh span id)."""
        return TraceContext(
            self.trace_id, new_span_id(), self.span_id, self.sampled
        )

    def to_wire(self) -> str:
        """The ``trace`` request field: what crosses the wire.

        The W3C ``traceparent`` form —
        ``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>`` — a flat
        55-character string.  A string encodes and decodes in a fraction
        of a nested object's time, and every request pays that cost on
        both sides of the wire.
        """
        return (
            "00-" + self.trace_id + "-" + self.span_id
            + ("-01" if self.sampled else "-00")
        )

    @classmethod
    def from_wire(cls, document: Any) -> Optional["TraceContext"]:
        """Parse a ``trace`` request field; None when malformed.

        Robustness over strictness: a garbled trace field must never
        fail the request it rode in on, so anything that does not look
        like a traceparent string is simply ignored.  Validation is
        shape-only (version prefix, length, dash positions) — per-digit
        hex checks would tax every request to reject inputs that only a
        broken client can produce, and a wrong-but-well-shaped id still
        correlates consistently.
        """
        if (
            not isinstance(document, str)
            or len(document) != 55
            or not document.startswith("00-")
            or document[35] != "-"
            or document[52] != "-"
        ):
            return None
        return cls(
            document[3:35], document[36:52], None, document[53:55] != "00"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext({self.trace_id[:8]}…, span={self.span_id}, "
            f"parent={self.parent_span_id}, sampled={self.sampled})"
        )


class Span:
    """One timed, attributed region, possibly nested under a parent."""

    __slots__ = ("name", "attributes", "_children", "started_s", "ended_s",
                 "error", "_tracer", "trace_id", "span_id", "parent_span_id")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        # child list is allocated lazily on first child — most spans are
        # leaves, and the hot path pays for every per-span allocation
        self._children: Optional[list[Span]] = None
        self.started_s = 0.0
        self.ended_s = 0.0
        self.error: Optional[str] = None
        # distributed-trace ids stay None (and cost three stores) unless
        # this span is part of a propagated trace — see __enter__
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None

    is_recording = True

    @property
    def children(self) -> Sequence["Span"]:
        return self._children if self._children is not None else ()

    @property
    def duration_s(self) -> float:
        return self.ended_s - self.started_s

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        # stack handling is inlined (not delegated to the tracer): spans
        # are the single hottest instrumentation object and every
        # indirection here is paid thousands of times per workload
        try:
            stack = self._tracer._local.stack
        except AttributeError:
            stack = self._tracer._local.stack = []
        if stack:
            parent = stack[-1]
            if parent._children is None:
                parent._children = [self]
            else:
                parent._children.append(self)
            if parent.trace_id is not None:
                # inside a propagated trace: adopt the lineage.  The
                # parent's id is minted here on first child; this span's
                # own id stays None until something needs it (a wire
                # crossing or export) — most spans are leaves that are
                # never referenced, and id formatting is pure overhead
                self.trace_id = parent.trace_id
                parent_id = parent.span_id
                if parent_id is None:
                    parent_id = parent.span_id = new_span_id()
                self.parent_span_id = parent_id
        else:
            context = getattr(self._tracer._local, "context", None)
            if context is not None:
                # a remote parent is active on this thread (the server
                # adopted an incoming wire context): this root adopts
                # it; its own id is minted lazily (see above)
                self.trace_id = context.trace_id
                self.parent_span_id = context.span_id
        stack.append(self)
        self.started_s = perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        # the entire close path is inlined for the same reason as
        # __enter__: this runs for every span the system ever opens
        self.ended_s = ended = perf_counter()
        if exc is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        tracer = self._tracer
        stack = tracer._local.stack
        if stack and stack[-1] is self:
            stack.pop()
        else:
            # exception safety: unwind past spans a crashed frame left open
            while stack:
                if stack.pop() is self:
                    break
        duration = ended - self.started_s
        histogram = tracer.span_histograms.get(self.name)
        if histogram is not None:
            # span-timed histogram: the duration this span already
            # measured feeds the bound latency metric directly, so hot
            # call sites don't time the same region twice (see
            # runtime.bind_span_histogram)
            histogram.observe(duration)
        aggregate = tracer.aggregates.get(self.name)
        if aggregate is None:
            tracer.aggregates[self.name] = [1, duration]
        else:
            aggregate[0] += 1
            aggregate[1] += duration
        if duration >= tracer._slow_cutoff:
            tracer._record_slow(self, duration)
        if not stack:
            tracer.roots_finished += 1
            tracer.finished.append(self)
            if tracer.exporter is not None:
                tracer.exporter(self)
        return False  # never suppress

    def to_dict(self) -> dict[str, Any]:
        """The span tree as a JSON-ready document."""
        document: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1e3, 4),
            "attributes": dict(self.attributes),
        }
        if self.trace_id is not None:
            if self.span_id is None:
                # leaf span exported before anything forced an id
                self.span_id = new_span_id()
            document["trace_id"] = self.trace_id
            document["span_id"] = self.span_id
            if self.parent_span_id is not None:
                document["parent_span_id"] = self.parent_span_id
        if self.error is not None:
            document["error"] = self.error
        if self._children:
            document["children"] = [
                child.to_dict() for child in self._children
            ]
        return document

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        if self._children:
            for child in self._children:
                yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms)"


class _NoopSpan:
    """The do-nothing span handed out while observability is disabled.

    One shared instance; entering, exiting, and attributing it are all
    no-ops, so disabled instrumentation costs one function call and one
    identity check per site.
    """

    __slots__ = ()

    is_recording = False
    name = ""
    error = None
    duration_s = 0.0
    attributes: dict[str, Any] = {}
    children: list["Span"] = []
    trace_id = None
    span_id = None
    parent_span_id = None

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _ContextScope:
    """``with tracer.activate_context(ctx):`` — ambient remote parent.

    While active on a thread, any *root* span opened there adopts the
    context's trace id and treats the context's span as its parent —
    how an adopted wire context reaches the synchronous spans a request
    handler opens.  Scopes restore the previous context on exit, so they
    nest; they must wrap only synchronous regions (the ambient slot is
    thread-local, and an ``await`` would leak it to interleaved tasks).
    """

    __slots__ = ("_tracer", "_context", "_previous")

    def __init__(self, tracer: "Tracer", context: TraceContext) -> None:
        self._tracer = tracer
        self._context = context
        self._previous: Optional[TraceContext] = None

    def __enter__(self) -> TraceContext:
        local = self._tracer._local
        self._previous = getattr(local, "context", None)
        local.context = self._context
        return self._context

    def __exit__(self, *_exc: object) -> bool:
        self._tracer._local.context = self._previous
        return False


class Tracer:
    """Creates spans, tracks nesting, and keeps the bounded digests."""

    def __init__(
        self,
        max_finished: int = 32,
        slow_threshold_s: Optional[float] = None,
        max_slow_ops: int = 128,
        exporter: Optional[Callable[[Span], None]] = None,
    ) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.max_finished = max_finished
        self.slow_threshold_s = slow_threshold_s
        #: hot-path form of the threshold: one compare, no None check
        self._slow_cutoff = (
            slow_threshold_s if slow_threshold_s is not None else float("inf")
        )
        self.exporter = exporter
        #: span name -> histogram child observing every such span's
        #: duration (wired by ``runtime.enable`` from the bindings that
        #: ``runtime.bind_span_histogram`` collected)
        self.span_histograms: dict[str, Any] = {}
        self._local = threading.local()
        #: most recent finished root spans (oldest evicted first)
        self.finished: deque[Span] = deque(maxlen=max_finished)
        #: root spans finished over the tracer's lifetime
        self.roots_finished = 0
        #: span name -> [count, cumulative seconds]
        self.aggregates: dict[str, list[float]] = {}
        #: recent spans that crossed the slow threshold
        self.slow_ops: deque[dict[str, Any]] = deque(maxlen=max_slow_ops)
        #: spans that crossed the threshold over the tracer's lifetime
        self.slow_ops_seen = 0

    # stack ---------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; nest it with ``with tracer.span("name"): ...``."""
        return Span(self, name, attributes)

    # distributed-trace context -------------------------------------------
    def activate_context(self, context: TraceContext) -> _ContextScope:
        """Adopt *context* as this thread's ambient remote parent."""
        return _ContextScope(self, context)

    def current_context(self) -> Optional[TraceContext]:
        """This thread's position in a trace, if it has one.

        The innermost open span wins (allocating ids for it on demand so
        the caller can cross a wire from inside any span); with no span
        open, the ambient context installed by :meth:`activate_context`
        answers; otherwise None.
        """
        stack = getattr(self._local, "stack", None)
        if stack:
            span = stack[-1]
            if span.trace_id is None:
                # a local-only trace crossing the wire for the first
                # time: mint ids lazily so purely local spans never pay
                span.trace_id = new_trace_id()
                span.span_id = new_span_id()
            elif span.span_id is None:
                # propagated trace, id deferred at __enter__: the wire
                # crossing is the moment it becomes observable
                span.span_id = new_span_id()
            return TraceContext(
                span.trace_id, span.span_id, span.parent_span_id
            )
        return getattr(self._local, "context", None)

    def record_span(
        self,
        name: str,
        started_s: float,
        ended_s: float,
        context: Optional[TraceContext] = None,
        error: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """Record an externally timed span without touching the stack.

        The escape hatch for event-loop code: a request handler that
        awaits cannot hold a stack-based span open (the per-thread stack
        would interleave across tasks), so it measures start/end itself
        and records the finished span here.  The span lands in every
        digest exactly as a stack root would — aggregates, the slow-op
        log, the finished ring, bound histograms, and the exporter —
        and carries *context*'s ids so it threads into the distributed
        trace.
        """
        span = Span(self, name, attributes)
        span.started_s = started_s
        span.ended_s = ended_s
        span.error = error
        if context is not None:
            span.trace_id = context.trace_id
            span.span_id = context.span_id
            span.parent_span_id = context.parent_span_id
        duration = ended_s - started_s
        histogram = self.span_histograms.get(name)
        if histogram is not None:
            histogram.observe(duration)
        aggregate = self.aggregates.get(name)
        if aggregate is None:
            self.aggregates[name] = [1, duration]
        else:
            aggregate[0] += 1
            aggregate[1] += duration
        if duration >= self._slow_cutoff:
            self._record_slow(span, duration)
        self.roots_finished += 1
        self.finished.append(span)
        if self.exporter is not None:
            self.exporter(span)
        return span

    def _record_slow(self, span: Span, duration: float) -> None:
        """Log one span that crossed the slow threshold."""
        self.slow_ops_seen += 1
        self.slow_ops.append({
            "name": span.name,
            "duration_ms": round(duration * 1e3, 4),
            "attributes": dict(span.attributes),
            "error": span.error,
        })

    # digests -------------------------------------------------------------
    @property
    def traces_dropped(self) -> int:
        """Finished root spans evicted from the ring buffer."""
        return max(0, self.roots_finished - self.max_finished)

    def top_spans(self, n: int = 10) -> list[tuple[str, int, float]]:
        """``(name, count, cumulative seconds)`` — heaviest first."""
        ranked = sorted(
            self.aggregates.items(), key=lambda item: item[1][1], reverse=True
        )
        return [
            (name, int(count), total) for name, (count, total) in ranked[:n]
        ]

    def recent_traces(self, n: int = 10) -> list[Span]:
        """The *n* most recent finished root spans, newest last."""
        if n <= 0:
            return []
        return list(self.finished)[-n:]

    def find_trace(self, name: str) -> Optional[Span]:
        """The most recent finished root span with *name* (None if gone)."""
        for span in reversed(self.finished):
            if span.name == name:
                return span
        return None
