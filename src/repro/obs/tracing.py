"""Structured tracing: spans, nesting, timing, and slow-op capture.

A :class:`Span` is one timed region of a request — an insert, the rating
scan inside it, the split cascade it triggered.  Spans nest: the tracer
keeps a per-thread stack, so a span opened while another is active
becomes its child, and a finished *root* span is a complete tree of what
one operation did and where its time went.  Timing uses
``time.perf_counter()`` exclusively (monotonic; wall-clock time has no
business inside a duration — see ``docs/OBSERVABILITY.md``).

The tracer keeps three digests, all bounded:

* ``finished`` — the most recent root span trees (ring, for
  ``python -m repro obs --traces``);
* ``aggregates`` — per-name call count and cumulative time ("top spans");
* ``slow_ops`` — spans whose duration crossed ``slow_threshold_s``.

An optional ``exporter`` callable receives every finished root span —
:class:`repro.obs.export.JsonlSpanExporter` writes them as JSON lines.

Spans are exception-safe: ``with tracer.span("x"):`` always closes the
span and pops the stack; an escaping exception is recorded on the span
(``error``) and re-raised.  When observability is disabled, call sites
get the shared :data:`NOOP_SPAN` instead — one allocation-free object
whose methods do nothing (see :mod:`repro.obs.runtime`).
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import Any, Callable, Optional, Sequence


class Span:
    """One timed, attributed region, possibly nested under a parent."""

    __slots__ = ("name", "attributes", "_children", "started_s", "ended_s",
                 "error", "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        # child list is allocated lazily on first child — most spans are
        # leaves, and the hot path pays for every per-span allocation
        self._children: Optional[list[Span]] = None
        self.started_s = 0.0
        self.ended_s = 0.0
        self.error: Optional[str] = None

    is_recording = True

    @property
    def children(self) -> Sequence["Span"]:
        return self._children if self._children is not None else ()

    @property
    def duration_s(self) -> float:
        return self.ended_s - self.started_s

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        # stack handling is inlined (not delegated to the tracer): spans
        # are the single hottest instrumentation object and every
        # indirection here is paid thousands of times per workload
        try:
            stack = self._tracer._local.stack
        except AttributeError:
            stack = self._tracer._local.stack = []
        if stack:
            parent = stack[-1]
            if parent._children is None:
                parent._children = [self]
            else:
                parent._children.append(self)
        stack.append(self)
        self.started_s = perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        # the entire close path is inlined for the same reason as
        # __enter__: this runs for every span the system ever opens
        self.ended_s = ended = perf_counter()
        if exc is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        tracer = self._tracer
        stack = tracer._local.stack
        if stack and stack[-1] is self:
            stack.pop()
        else:
            # exception safety: unwind past spans a crashed frame left open
            while stack:
                if stack.pop() is self:
                    break
        duration = ended - self.started_s
        histogram = tracer.span_histograms.get(self.name)
        if histogram is not None:
            # span-timed histogram: the duration this span already
            # measured feeds the bound latency metric directly, so hot
            # call sites don't time the same region twice (see
            # runtime.bind_span_histogram)
            histogram.observe(duration)
        aggregate = tracer.aggregates.get(self.name)
        if aggregate is None:
            tracer.aggregates[self.name] = [1, duration]
        else:
            aggregate[0] += 1
            aggregate[1] += duration
        if duration >= tracer._slow_cutoff:
            tracer._record_slow(self, duration)
        if not stack:
            tracer.roots_finished += 1
            tracer.finished.append(self)
            if tracer.exporter is not None:
                tracer.exporter(self)
        return False  # never suppress

    def to_dict(self) -> dict[str, Any]:
        """The span tree as a JSON-ready document."""
        document: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1e3, 4),
            "attributes": dict(self.attributes),
        }
        if self.error is not None:
            document["error"] = self.error
        if self._children:
            document["children"] = [
                child.to_dict() for child in self._children
            ]
        return document

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        if self._children:
            for child in self._children:
                yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms)"


class _NoopSpan:
    """The do-nothing span handed out while observability is disabled.

    One shared instance; entering, exiting, and attributing it are all
    no-ops, so disabled instrumentation costs one function call and one
    identity check per site.
    """

    __slots__ = ()

    is_recording = False
    name = ""
    error = None
    duration_s = 0.0
    attributes: dict[str, Any] = {}
    children: list["Span"] = []

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans, tracks nesting, and keeps the bounded digests."""

    def __init__(
        self,
        max_finished: int = 256,
        slow_threshold_s: Optional[float] = None,
        max_slow_ops: int = 128,
        exporter: Optional[Callable[[Span], None]] = None,
    ) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.max_finished = max_finished
        self.slow_threshold_s = slow_threshold_s
        #: hot-path form of the threshold: one compare, no None check
        self._slow_cutoff = (
            slow_threshold_s if slow_threshold_s is not None else float("inf")
        )
        self.exporter = exporter
        #: span name -> histogram child observing every such span's
        #: duration (wired by ``runtime.enable`` from the bindings that
        #: ``runtime.bind_span_histogram`` collected)
        self.span_histograms: dict[str, Any] = {}
        self._local = threading.local()
        #: most recent finished root spans (oldest evicted first)
        self.finished: deque[Span] = deque(maxlen=max_finished)
        #: root spans finished over the tracer's lifetime
        self.roots_finished = 0
        #: span name -> [count, cumulative seconds]
        self.aggregates: dict[str, list[float]] = {}
        #: recent spans that crossed the slow threshold
        self.slow_ops: deque[dict[str, Any]] = deque(maxlen=max_slow_ops)
        #: spans that crossed the threshold over the tracer's lifetime
        self.slow_ops_seen = 0

    # stack ---------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; nest it with ``with tracer.span("name"): ...``."""
        return Span(self, name, attributes)

    def _record_slow(self, span: Span, duration: float) -> None:
        """Log one span that crossed the slow threshold."""
        self.slow_ops_seen += 1
        self.slow_ops.append({
            "name": span.name,
            "duration_ms": round(duration * 1e3, 4),
            "attributes": dict(span.attributes),
            "error": span.error,
        })

    # digests -------------------------------------------------------------
    @property
    def traces_dropped(self) -> int:
        """Finished root spans evicted from the ring buffer."""
        return max(0, self.roots_finished - self.max_finished)

    def top_spans(self, n: int = 10) -> list[tuple[str, int, float]]:
        """``(name, count, cumulative seconds)`` — heaviest first."""
        ranked = sorted(
            self.aggregates.items(), key=lambda item: item[1][1], reverse=True
        )
        return [
            (name, int(count), total) for name, (count, total) in ranked[:n]
        ]

    def recent_traces(self, n: int = 10) -> list[Span]:
        """The *n* most recent finished root spans, newest last."""
        if n <= 0:
            return []
        return list(self.finished)[-n:]

    def find_trace(self, name: str) -> Optional[Span]:
        """The most recent finished root span with *name* (None if gone)."""
        for span in reversed(self.finished):
            if span.name == name:
                return span
        return None
