"""Compatibility shims: the legacy ``*Counters`` feed the registry.

The three telemetry dataclasses
(:class:`~repro.metrics.telemetry.FaultToleranceCounters`,
:class:`~repro.metrics.telemetry.RobustnessCounters`,
:class:`~repro.metrics.telemetry.QueryPathCounters`) predate the
registry and are written to all over the codebase (and asserted on all
over the test suite), so they keep working unchanged.  Each of them now
inherits :class:`RegistryMirrorMixin`, which feeds their fields into
the global registry — ``counters.cache_hits`` becomes
``repro_query_cache_hits_total`` — whenever observability is enabled.
Multiple counters objects (one per table, one per store) aggregate into
one process-wide family, which is exactly what an exposition endpoint
wants.

The mirror is *deferred*: a write to a mapped field only marks the
object dirty (one membership test plus a ``set.add`` — the cache
counters are bumped inside per-partition scan loops, so a per-write
registry update would dominate the whole layer's overhead budget).
:func:`flush_mirrors` pushes the accumulated values of every dirty
object into the registry; ``runtime.disable`` and the exposition
surfaces (``python -m repro obs``, the run-summary renderer) call it
before reading, so reported numbers are always current.

The mirror maps monotonic fields to counters and watermark/level fields
to gauges.  Decreases of a counter-mapped field (a fresh dataclass, a
test resetting a field) are ignored rather than crashing: registry
counters are monotonic by contract.

``python -m repro query-path`` (reads the dataclass) and ``python -m
repro obs`` (reads the registry) must report identical numbers;
``tests/test_obs_integration.py`` pins that agreement field by field.
"""

from __future__ import annotations

from typing import ClassVar

from repro.obs import runtime

COUNTER = "counter"
GAUGE = "gauge"

#: QueryPathCounters field -> (metric name, kind)
QUERY_PATH_METRICS: dict[str, tuple[str, str]] = {
    "queries_total": ("repro_query_queries_total", COUNTER),
    "partitions_considered": ("repro_query_partitions_considered_total", COUNTER),
    "partitions_scanned": ("repro_query_partitions_scanned_total", COUNTER),
    "partitions_pruned": ("repro_query_partitions_pruned_total", COUNTER),
    "index_resolutions": ("repro_query_index_resolutions_total", COUNTER),
    "catalog_scan_resolutions": (
        "repro_query_catalog_scan_resolutions_total", COUNTER),
    "cache_hits": ("repro_query_cache_hits_total", COUNTER),
    "cache_misses": ("repro_query_cache_misses_total", COUNTER),
    "cache_stale_drops": ("repro_query_cache_stale_drops_total", COUNTER),
    "cache_evictions": ("repro_query_cache_evictions_total", COUNTER),
    "rows_served_from_cache": (
        "repro_query_rows_served_from_cache_total", COUNTER),
}

#: FaultToleranceCounters field -> (metric name, kind)
FAULT_TOLERANCE_METRICS: dict[str, tuple[str, str]] = {
    "node_crashes": ("repro_dist_node_crashes_total", COUNTER),
    "node_recoveries": ("repro_dist_node_recoveries_total", COUNTER),
    "node_degradations": ("repro_dist_node_degradations_total", COUNTER),
    "queries_total": ("repro_dist_queries_total", COUNTER),
    "queries_degraded": ("repro_dist_queries_degraded_total", COUNTER),
    "retries": ("repro_dist_retries_total", COUNTER),
    "failovers": ("repro_dist_failovers_total", COUNTER),
    "unreachable_partition_hits": (
        "repro_dist_unreachable_partition_hits_total", COUNTER),
    "re_replication_passes": (
        "repro_dist_re_replication_passes_total", COUNTER),
    "replicas_created": ("repro_dist_replicas_created_total", COUNTER),
    "wal_records_appended": ("repro_dist_wal_records_appended_total", COUNTER),
    "wal_records_replayed": ("repro_dist_wal_records_replayed_total", COUNTER),
}

#: ServerCounters field -> (metric name, kind)
SERVER_METRICS: dict[str, tuple[str, str]] = {
    "connections_opened": ("repro_server_connections_opened_total", COUNTER),
    "connections_closed": ("repro_server_connections_closed_total", COUNTER),
    "requests_total": ("repro_server_requests_handled_total", COUNTER),
    "requests_failed": ("repro_server_requests_failed_total", COUNTER),
    "bad_requests": ("repro_server_bad_requests_total", COUNTER),
    "writes_applied": ("repro_server_writes_applied_total", COUNTER),
    "writes_rejected": ("repro_server_writes_rejected_total", COUNTER),
    "writes_shed_overloaded": ("repro_server_writes_shed_overloaded_total", COUNTER),
    "writes_shed_shutdown": ("repro_server_writes_shed_shutdown_total", COUNTER),
    "batches_flushed": ("repro_server_batches_flushed_total", COUNTER),
    "queries_served": ("repro_server_queries_served_total", COUNTER),
    "sql_served": ("repro_server_sql_served_total", COUNTER),
    "maintenance_passes": ("repro_server_maintenance_passes_total", COUNTER),
    "partitions_merged": ("repro_server_partitions_merged_total", COUNTER),
    "reorganizations": ("repro_server_reorganizations_total", COUNTER),
    "queue_high_watermark": ("repro_server_queue_high_watermark", GAUGE),
    "wal_writes_logged": ("repro_server_wal_writes_logged_total", COUNTER),
    "wal_records_replayed": (
        "repro_server_wal_records_replayed_total", COUNTER),
    "connections_force_closed": (
        "repro_server_connections_force_closed_total", COUNTER),
    "checkpoints_taken": ("repro_server_checkpoints_taken_total", COUNTER),
    "checkpoint_records_truncated": (
        "repro_server_checkpoint_records_truncated_total", COUNTER),
    "sync_pages_served": ("repro_server_sync_pages_served_total", COUNTER),
    "sync_deltas_applied": ("repro_server_sync_deltas_applied_total", COUNTER),
    "sync_entities_received": (
        "repro_server_sync_entities_received_total", COUNTER),
    "snapshots_published": ("repro_server_snapshots_published_total", COUNTER),
    "snapshots_retired": ("repro_server_snapshots_retired_total", COUNTER),
    "snapshot_reads": ("repro_server_snapshot_reads_total", COUNTER),
    "snapshot_response_cache_hits": (
        "repro_server_snapshot_response_cache_hits_total", COUNTER),
    "admission_window": ("repro_server_admission_window", GAUGE),
    "adapt_decisions": ("repro_server_adapt_decisions_total", COUNTER),
    "adapt_actions": ("repro_server_adapt_actions_total", COUNTER),
}

#: AdaptationCounters field -> (metric name, kind)
ADAPT_METRICS: dict[str, tuple[str, str]] = {
    "decisions_total": ("repro_adapt_decisions_total", COUNTER),
    "acted_reorganize": ("repro_adapt_acted_reorganize_total", COUNTER),
    "acted_merge": ("repro_adapt_acted_merge_total", COUNTER),
    "declined_insufficient_traffic": (
        "repro_adapt_declined_insufficient_traffic_total", COUNTER),
    "declined_budget_exhausted": (
        "repro_adapt_declined_budget_exhausted_total", COUNTER),
    "declined_cooldown": ("repro_adapt_declined_cooldown_total", COUNTER),
    "declined_baseline_established": (
        "repro_adapt_declined_baseline_established_total", COUNTER),
    "declined_no_shift": ("repro_adapt_declined_no_shift_total", COUNTER),
    "declined_below_threshold": (
        "repro_adapt_declined_below_threshold_total", COUNTER),
    "calibration_refits": ("repro_adapt_calibration_refits_total", COUNTER),
}

#: RouterCounters field -> (metric name, kind)
ROUTER_METRICS: dict[str, tuple[str, str]] = {
    "connections_opened": ("repro_router_connections_opened_total", COUNTER),
    "connections_closed": ("repro_router_connections_closed_total", COUNTER),
    "requests_total": ("repro_router_requests_total", COUNTER),
    "bad_requests": ("repro_router_bad_requests_total", COUNTER),
    "writes_routed": ("repro_router_writes_routed_total", COUNTER),
    "queries_scattered": ("repro_router_queries_scattered_total", COUNTER),
    "replies_complete": ("repro_router_replies_complete_total", COUNTER),
    "replies_degraded": ("repro_router_replies_degraded_total", COUNTER),
    "replies_unavailable": ("repro_router_replies_unavailable_total", COUNTER),
    "upstream_retries": ("repro_router_upstream_retries_total", COUNTER),
    "failovers": ("repro_router_failovers_total", COUNTER),
    "node_ejections": ("repro_router_node_ejections_total", COUNTER),
    "node_restores": ("repro_router_node_restores_total", COUNTER),
    "probes_sent": ("repro_router_probes_sent_total", COUNTER),
    "catchup_replayed": ("repro_router_catchup_replayed_total", COUNTER),
    "catchup_dropped": ("repro_router_catchup_dropped_total", COUNTER),
    "nodes_diverged": ("repro_router_nodes_diverged_total", COUNTER),
    "resyncs_started": ("repro_router_resyncs_started_total", COUNTER),
    "resyncs_completed": ("repro_router_resyncs_completed_total", COUNTER),
    "resyncs_failed": ("repro_router_resyncs_failed_total", COUNTER),
    "sync_entities_streamed": (
        "repro_router_sync_entities_streamed_total", COUNTER),
    "obs_scrapes": ("repro_router_obs_scrapes_total", COUNTER),
}

#: RobustnessCounters field -> (metric name, kind)
ROBUSTNESS_METRICS: dict[str, tuple[str, str]] = {
    "ops_started": ("repro_txn_ops_started_total", COUNTER),
    "ops_committed": ("repro_txn_ops_committed_total", COUNTER),
    "ops_rolled_back": ("repro_txn_ops_rolled_back_total", COUNTER),
    "op_steps": ("repro_txn_op_steps_total", COUNTER),
    "ingest_accepted": ("repro_ingest_accepted_total", COUNTER),
    "ingest_rejected": ("repro_ingest_rejected_total", COUNTER),
    "ingest_quarantined": ("repro_ingest_quarantined_total", COUNTER),
    "ingest_requeued": ("repro_ingest_requeued_total", COUNTER),
    "ingest_replayed": ("repro_ingest_replayed_total", COUNTER),
    "ingest_overloaded": ("repro_ingest_overloaded_total", COUNTER),
    "queue_high_watermark": ("repro_ingest_queue_high_watermark", GAUGE),
}

#: Help text for mirrored families, keyed by metric name (the catalog in
#: ``docs/OBSERVABILITY.md`` is generated from the same wording).
METRIC_HELP: dict[str, str] = {
    "repro_query_queries_total": "Queries executed through the fast path",
    "repro_query_partitions_considered_total":
        "Partitions considered across query plans",
    "repro_query_partitions_scanned_total":
        "Partition scans performed by queries",
    "repro_query_partitions_pruned_total":
        "Partitions eliminated by synopsis pruning",
    "repro_query_index_resolutions_total":
        "Plans resolved via the inverted synopsis index",
    "repro_query_catalog_scan_resolutions_total":
        "Plans resolved by scanning the full catalog",
    "repro_query_cache_hits_total": "Result-cache hits",
    "repro_query_cache_misses_total": "Result-cache misses",
    "repro_query_cache_stale_drops_total":
        "Cache entries dropped on content-version mismatch",
    "repro_query_cache_evictions_total":
        "Cache entries evicted by LRU capacity",
    "repro_query_rows_served_from_cache_total":
        "Rows served from the result cache",
    "repro_dist_node_crashes_total": "Node crashes applied to the cluster",
    "repro_dist_node_recoveries_total":
        "Node recoveries applied to the cluster",
    "repro_dist_node_degradations_total":
        "Node degradations applied to the cluster",
    "repro_dist_queries_total": "Queries routed by the distributed store",
    "repro_dist_queries_degraded_total":
        "Queries answered with degraded=True",
    "repro_dist_retries_total": "Per-host retries during query routing",
    "repro_dist_failovers_total": "Queries served by a non-primary replica",
    "repro_dist_unreachable_partition_hits_total":
        "Needed partitions that had no reachable copy",
    "repro_dist_re_replication_passes_total": "Repair passes run",
    "repro_dist_replicas_created_total":
        "Replica copies created by repair passes",
    "repro_dist_wal_records_appended_total":
        "Coordinator WAL records appended",
    "repro_dist_wal_records_replayed_total":
        "Coordinator WAL records replayed on recovery",
    "repro_txn_ops_started_total":
        "Transactional catalog operations started",
    "repro_txn_ops_committed_total":
        "Transactional catalog operations committed",
    "repro_txn_ops_rolled_back_total":
        "Transactional catalog operations rolled back",
    "repro_txn_op_steps_total":
        "Step boundaries crossed inside transactional operations",
    "repro_ingest_accepted_total": "Ingest requests applied to the sink",
    "repro_ingest_rejected_total": "Ingest requests refused by validation",
    "repro_ingest_quarantined_total":
        "Ingest requests dead-lettered to quarantine",
    "repro_ingest_requeued_total": "Quarantined requests resubmitted",
    "repro_ingest_replayed_total":
        "Idempotent replays acknowledged without applying",
    "repro_ingest_overloaded_total":
        "Requests bounced by admission backpressure",
    "repro_ingest_queue_high_watermark":
        "Deepest ingest admission queue observed",
    "repro_server_connections_opened_total": "Client connections accepted",
    "repro_server_connections_closed_total": "Client connections closed",
    "repro_server_requests_handled_total": "Requests read off client sockets",
    "repro_server_requests_failed_total":
        "Requests answered with a non-ok status",
    "repro_server_bad_requests_total":
        "Frames refused as malformed (protocol errors)",
    "repro_server_writes_applied_total":
        "Modifications applied through the batcher",
    "repro_server_writes_rejected_total":
        "Modifications rolled back by validation or sink refusal",
    "repro_server_writes_shed_overloaded_total":
        "Modifications shed by admission backpressure",
    "repro_server_writes_shed_shutdown_total":
        "Modifications refused during drain",
    "repro_server_batches_flushed_total":
        "Write batches applied under the exclusive lock",
    "repro_server_queries_served_total": "Attribute queries answered",
    "repro_server_sql_served_total": "SQL statements answered",
    "repro_server_maintenance_passes_total":
        "Cooperative maintenance passes run between batches",
    "repro_server_partitions_merged_total":
        "Partition merges performed by maintenance",
    "repro_server_reorganizations_total":
        "Catalog reorganizations performed by maintenance",
    "repro_server_queue_high_watermark":
        "Deepest server write queue observed",
    "repro_server_wal_writes_logged_total":
        "Acknowledged writes journaled to the node WAL",
    "repro_server_wal_records_replayed_total":
        "Node WAL records replayed on restart",
    "repro_server_connections_force_closed_total":
        "Connections aborted at the drain deadline",
    "repro_router_connections_opened_total":
        "Client connections accepted by the router",
    "repro_router_connections_closed_total":
        "Router client connections closed",
    "repro_router_requests_total": "Requests handled by the router",
    "repro_router_bad_requests_total":
        "Frames the router refused as malformed",
    "repro_router_writes_routed_total":
        "Writes routed to their owning shard",
    "repro_router_queries_scattered_total":
        "Queries fanned out across shards",
    "repro_router_replies_complete_total":
        "Router replies with every shard answering",
    "repro_router_replies_degraded_total":
        "Router replies missing at least one shard",
    "repro_router_replies_unavailable_total":
        "Router replies refused: no reachable replica",
    "repro_router_upstream_retries_total":
        "Retried upstream attempts (same node)",
    "repro_router_failovers_total":
        "Requests served by a non-primary replica",
    "repro_router_node_ejections_total":
        "Circuit-breaker ejections of upstream nodes",
    "repro_router_node_restores_total":
        "Upstream nodes restored after a successful probe",
    "repro_router_probes_sent_total":
        "Probe requests sent to ejected nodes",
    "repro_router_catchup_replayed_total":
        "Buffered writes replayed to a restored node",
    "repro_router_catchup_dropped_total":
        "Buffered catch-up writes dropped (bounded buffer overflow)",
    "repro_server_checkpoints_taken_total":
        "Node checkpoints taken (snapshot written, WAL reset)",
    "repro_server_checkpoint_records_truncated_total":
        "WAL records truncated by node checkpoints",
    "repro_server_sync_pages_served_total":
        "sync_snapshot pages served to resyncing peers",
    "repro_server_sync_deltas_applied_total":
        "sync_delta chunks applied from the router",
    "repro_server_sync_entities_received_total":
        "Entities received through sync_delta chunks",
    "repro_server_snapshots_published_total":
        "MVCC snapshots published by writers",
    "repro_server_snapshots_retired_total":
        "MVCC snapshots garbage-collected past retention",
    "repro_server_snapshot_reads_total":
        "Reads served lock-free from MVCC snapshots",
    "repro_server_snapshot_response_cache_hits_total":
        "Queries answered from a snapshot's pre-serialized response cache",
    "repro_server_admission_window":
        "Adaptive write-admission window (queued writes admitted)",
    "repro_server_snapshot_age_seconds":
        "Seconds since the latest snapshot was published",
    "repro_server_snapshots_retained":
        "MVCC snapshots currently retained",
    "repro_router_nodes_diverged_total":
        "Replicas marked diverged after catch-up overflow",
    "repro_router_resyncs_started_total":
        "Replica resyncs started by the router",
    "repro_router_resyncs_completed_total":
        "Replica resyncs completed and re-admitted",
    "repro_router_resyncs_failed_total":
        "Replica resync attempts that failed (will retry)",
    "repro_router_sync_entities_streamed_total":
        "Entities streamed from healthy peers during resync",
    "repro_router_obs_scrapes_total":
        "Cluster observability scrapes federated by the router",
    "repro_server_adapt_decisions_total":
        "Adaptation decisions evaluated by the serving node",
    "repro_server_adapt_actions_total":
        "Adaptation actions (reorganize/merge) applied by the serving node",
    "repro_adapt_decisions_total":
        "Adaptation decisions made by the controller",
    "repro_adapt_acted_reorganize_total":
        "Adaptation decisions that reorganized the catalog",
    "repro_adapt_acted_merge_total":
        "Adaptation decisions that merged small partitions",
    "repro_adapt_declined_insufficient_traffic_total":
        "Decisions declined: too few observed queries",
    "repro_adapt_declined_budget_exhausted_total":
        "Decisions declined: bounded action budget spent",
    "repro_adapt_declined_cooldown_total":
        "Decisions declined: within the cooldown window",
    "repro_adapt_declined_baseline_established_total":
        "Decisions declined while blessing the reference profile",
    "repro_adapt_declined_no_shift_total":
        "Decisions declined: workload shift below threshold",
    "repro_adapt_declined_below_threshold_total":
        "Decisions declined: predicted win below hysteresis",
    "repro_adapt_calibration_refits_total":
        "Cost-model refits adopted by the controller",
    "repro_adapt_shift_score":
        "Workload shift vs the blessed reference profile (TV distance)",
}


#: counters objects with writes not yet flushed into the registry,
#: keyed by id (the dataclasses compare by value, so they are not
#: hashable; the dict also keeps each dirty object alive until flushed)
_PENDING: "dict[int, RegistryMirrorMixin]" = {}


def flush_mirrors() -> None:
    """Push every dirty ``*Counters`` object into the registry now.

    Called automatically by ``runtime.disable`` and by the exposition
    surfaces; call it directly before reading the registry while a
    session is still enabled.  A no-op (beyond clearing the dirty set)
    while observability is disabled.
    """
    if runtime._REGISTRY is None:
        _PENDING.clear()
        return
    while _PENDING:
        _key, counters = _PENDING.popitem()
        counters._mirror_into_registry()


class RegistryMirrorMixin:
    """Feeds dataclass-field writes into the global metrics registry.

    Subclasses set ``_OBS_METRICS`` to a field -> (name, kind) mapping.
    While observability is enabled, writing a mapped field marks the
    object dirty; :func:`flush_mirrors` later translates its
    accumulated values into registry writes — counter fields as deltas
    against the last flush, gauge fields as the current value.
    Unmapped fields — and every write while disabled — pay one
    membership test and nothing else.
    """

    _OBS_METRICS: ClassVar[dict[str, tuple[str, str]]] = {}

    def __setattr__(self, name: str, value) -> None:
        if name in self._OBS_METRICS and runtime._REGISTRY is not None:
            _PENDING[id(self)] = self
        object.__setattr__(self, name, value)

    def _mirror_into_registry(self) -> None:
        """Translate this object's values into registry writes."""
        registry = runtime._REGISTRY
        baseline = getattr(self, "_obs_baseline", None)
        if baseline is None or baseline[0] is not registry:
            # first flush into this registry: mirror full totals, so a
            # session enabled mid-run still reports the object's truth
            baseline = (registry, {})
            object.__setattr__(self, "_obs_baseline", baseline)
        synced = baseline[1]
        for field_name, (metric, kind) in self._OBS_METRICS.items():
            value = getattr(self, field_name)
            if kind == GAUGE:
                runtime.gauge_set(metric, value, METRIC_HELP.get(metric, ""))
            else:
                delta = value - synced.get(field_name, 0)
                if delta > 0:
                    runtime.inc(metric, delta, METRIC_HELP.get(metric, ""))
                synced[field_name] = value
