"""A bounded ring-buffer event log with dropped-event accounting.

Spans answer "where did the time go"; events answer "what happened" —
discrete occurrences worth keeping even when nobody was tracing a
request: a node crash injected by the chaos harness, a repair pass, a
quarantined ingest row, a transaction rollback.  The log is a fixed-size
ring: emission is O(1), memory is bounded, and when the buffer wraps the
oldest events are overwritten while ``dropped`` counts exactly how many
were lost — a reader can always tell whether it saw everything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class Event:
    """One discrete occurrence."""

    #: position in the emission order (0-based, never reused)
    seq: int
    #: ``time.perf_counter()`` at emission — correlates with span times
    monotonic_s: float
    #: dotted event kind, e.g. ``fault.crash`` or ``txn.rollback``
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind, "fields": dict(self.fields)}


class EventLog:
    """Fixed-capacity ring of :class:`Event` records.

    >>> log = EventLog(capacity=2)
    >>> for i in range(3):
    ...     _ = log.emit("tick", i=i)
    >>> [event.fields["i"] for event in log.events()], log.dropped
    ([1, 2], 1)
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: list[Optional[Event]] = [None] * capacity
        self._emitted = 0

    def emit(self, kind: str, /, **fields: Any) -> Event:
        """Append one event, overwriting the oldest when full.

        ``kind`` is positional-only so instrumented code can carry a
        ``kind=...`` payload field (e.g. the txn operation kind).
        """
        event = Event(self._emitted, time.perf_counter(), kind, fields)
        self._ring[self._emitted % self.capacity] = event
        self._emitted += 1
        return event

    @property
    def emitted(self) -> int:
        """Events emitted over the log's lifetime."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events overwritten before anyone could read them."""
        return max(0, self._emitted - self.capacity)

    def __len__(self) -> int:
        return min(self._emitted, self.capacity)

    def events(self) -> list[Event]:
        """Surviving events, oldest first."""
        if self._emitted <= self.capacity:
            return [e for e in self._ring[: self._emitted] if e is not None]
        head = self._emitted % self.capacity
        ring = self._ring[head:] + self._ring[:head]
        return [e for e in ring if e is not None]

    def of_kind(self, kind: str) -> list[Event]:
        """Surviving events of one kind (or a ``prefix.`` family)."""
        if kind.endswith("."):
            return [e for e in self.events() if e.kind.startswith(kind)]
        return [e for e in self.events() if e.kind == kind]
