"""Trace export: finished span trees as JSON lines.

The tracer's in-memory ring keeps only the most recent traces; for
offline analysis (or shipping to a collector) attach a
:class:`JsonlSpanExporter` — every finished *root* span is appended to
the file as one self-contained JSON document per line, children nested
under ``children``.  Lines are flushed per trace, so a crash loses at
most the trace in flight.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracing import Span


class JsonlSpanExporter:
    """Appends finished root-span trees to a JSONL file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = self.path.open("a", encoding="utf-8")
        self.spans_written = 0

    def __call__(self, span: "Span") -> None:
        self._handle.write(
            json.dumps(span.to_dict(), separators=(",", ":"), default=str)
            + "\n"
        )
        self._handle.flush()
        self.spans_written += 1

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlSpanExporter":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def read_jsonl_traces(path: Union[str, Path]) -> list[dict]:
    """Parse an exported trace file back into span-tree documents."""
    documents = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                documents.append(json.loads(line))
    return documents
