"""Metrics: partitioning statistics, histograms, and timing helpers."""

from repro.metrics.histogram import HistogramBucket, LogHistogram, render_histogram
from repro.metrics.partition_stats import (
    DistributionSummary,
    PartitioningSummary,
    percentile,
    summarize_catalog,
)
from repro.metrics.telemetry import (
    FaultToleranceCounters,
    QueryPathCounters,
    RobustnessCounters,
    TelemetryCollector,
    TelemetrySample,
)
from repro.metrics.timing import Timer, time_call

__all__ = [
    "DistributionSummary",
    "FaultToleranceCounters",
    "HistogramBucket",
    "LogHistogram",
    "PartitioningSummary",
    "QueryPathCounters",
    "RobustnessCounters",
    "TelemetryCollector",
    "TelemetrySample",
    "Timer",
    "percentile",
    "render_histogram",
    "summarize_catalog",
    "time_call",
]
