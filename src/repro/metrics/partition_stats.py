"""Partitioning statistics — the quantities of Figure 7.

For each weight setting the paper records (1) the number of partitions,
(2) the number of entities per partition, (3) the number of attributes per
partition, and (4) the sparseness per partition.  This module computes all
four from a live :class:`~repro.catalog.catalog.PartitionCatalog`, plus
the distribution summaries (min/quartiles/max) that the paper's box plots
display.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.catalog import PartitionCatalog


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary (plus mean) of a sample, for box-plot output."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "DistributionSummary":
        if not values:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(values)
        return cls(
            minimum=ordered[0],
            p25=percentile(ordered, 25.0),
            median=percentile(ordered, 50.0),
            p75=percentile(ordered, 75.0),
            maximum=ordered[-1],
            mean=sum(ordered) / len(ordered),
        )

    def row(self) -> tuple[float, float, float, float, float, float]:
        return (self.minimum, self.p25, self.median, self.p75, self.maximum, self.mean)


def percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already *sorted* sample."""
    if not ordered:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    fraction = position - lower
    return float(ordered[lower]) * (1.0 - fraction) + float(ordered[upper]) * fraction


@dataclass(frozen=True)
class PartitioningSummary:
    """The Figure-7 metrics of one partitioning."""

    partition_count: int
    entity_count: int
    entities_per_partition: tuple[int, ...]
    attributes_per_partition: tuple[int, ...]
    sparseness_per_partition: tuple[float, ...]

    @property
    def entities_summary(self) -> DistributionSummary:
        return DistributionSummary.of(self.entities_per_partition)

    @property
    def attributes_summary(self) -> DistributionSummary:
        return DistributionSummary.of(self.attributes_per_partition)

    @property
    def sparseness_summary(self) -> DistributionSummary:
        return DistributionSummary.of(self.sparseness_per_partition)

    @property
    def max_sparseness(self) -> float:
        return max(self.sparseness_per_partition)


def summarize_catalog(catalog: "PartitionCatalog") -> PartitioningSummary:
    """Collect the Figure-7 metrics from a partition catalog."""
    entities: list[int] = []
    attributes: list[int] = []
    sparseness: list[float] = []
    for partition in catalog:
        entities.append(len(partition))
        attributes.append(partition.attr_count)
        sparseness.append(partition.sparseness())
    if not entities:
        raise ValueError("catalog holds no partitions")
    return PartitioningSummary(
        partition_count=len(catalog),
        entity_count=catalog.entity_count,
        entities_per_partition=tuple(entities),
        attributes_per_partition=tuple(attributes),
        sparseness_per_partition=tuple(sparseness),
    )
