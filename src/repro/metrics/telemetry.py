"""Telemetry: time series of partitioning health during a workload.

The online partitioning problem is about behaviour *over time* — the
partitioning must stay good while modifications stream in.  This module
samples a partitioner at a fixed operation cadence and records the series
(partition count, efficiency, mean fill, split count), so benchmarks and
examples can show convergence and stability instead of just end states.

For distributed deployments it additionally defines
:class:`FaultToleranceCounters` — the failure/retry/recovery event
counts a :class:`~repro.distributed.store.DistributedUniversalStore`
accumulates while nodes crash and recover around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.core.efficiency import catalog_efficiency
from repro.obs.shims import (
    ADAPT_METRICS,
    FAULT_TOLERANCE_METRICS,
    QUERY_PATH_METRICS,
    ROBUSTNESS_METRICS,
    ROUTER_METRICS,
    SERVER_METRICS,
    RegistryMirrorMixin,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partitioner import CinderellaPartitioner


@dataclass(frozen=True)
class TelemetrySample:
    """One sampled point of the partitioning's state."""

    operations: int
    entity_count: int
    partition_count: int
    mean_fill: float
    split_count: int
    efficiency: Optional[float]


@dataclass
class FaultToleranceCounters(RegistryMirrorMixin):
    """Failure, retry, and recovery event counts of a distributed store.

    ``queries_degraded`` counts queries that returned with
    ``degraded=True`` (at least one needed partition had no reachable
    copy); :meth:`availability` is the complement, the headline metric
    of the fault-tolerance benchmark.

    While observability is enabled these counters additionally feed the
    :mod:`repro.obs` registry as ``repro_dist_*`` metrics (deferred;
    see :class:`repro.obs.shims.RegistryMirrorMixin`).
    """

    _OBS_METRICS = FAULT_TOLERANCE_METRICS

    node_crashes: int = 0
    node_recoveries: int = 0
    node_degradations: int = 0
    queries_total: int = 0
    queries_degraded: int = 0
    retries: int = 0
    failovers: int = 0
    unreachable_partition_hits: int = 0
    re_replication_passes: int = 0
    replicas_created: int = 0
    wal_records_appended: int = 0
    wal_records_replayed: int = 0

    def availability(self) -> float:
        """Fraction of queries answered completely (1.0 when none ran)."""
        if self.queries_total == 0:
            return 1.0
        return 1.0 - self.queries_degraded / self.queries_total

    def as_dict(self) -> dict[str, float]:
        """All counters plus availability, for reports and CLIs."""
        result = {
            name: getattr(self, name)
            for name in (
                "node_crashes", "node_recoveries", "node_degradations",
                "queries_total", "queries_degraded", "retries", "failovers",
                "unreachable_partition_hits", "re_replication_passes",
                "replicas_created", "wal_records_appended",
                "wal_records_replayed",
            )
        }
        result["availability"] = self.availability()
        return result


@dataclass
class RobustnessCounters(RegistryMirrorMixin):
    """Counters of the transactional-maintenance and hardened-ingest layer.

    The maintenance half counts journaled catalog operations (inserts
    that split, merge passes, reorganizations) and how they ended;
    every crash or validation failure that rolled back cleanly shows up
    in ``ops_rolled_back`` — an operation that neither committed nor
    rolled back is a bug.  The ingest half makes admission outcomes
    observable: how many entities were accepted, rejected into
    quarantine, bounced by backpressure (``ingest_overloaded``), or
    recognized as idempotent replays (``ingest_replayed``).

    While observability is enabled these counters additionally feed the
    :mod:`repro.obs` registry as ``repro_txn_*`` / ``repro_ingest_*``
    metrics (deferred; see
    :class:`repro.obs.shims.RegistryMirrorMixin`).
    """

    _OBS_METRICS = ROBUSTNESS_METRICS

    # transactional maintenance operations
    ops_started: int = 0
    ops_committed: int = 0
    ops_rolled_back: int = 0
    op_steps: int = 0
    # ingest admission
    ingest_accepted: int = 0
    ingest_rejected: int = 0
    ingest_quarantined: int = 0
    ingest_requeued: int = 0
    ingest_replayed: int = 0
    ingest_overloaded: int = 0
    queue_high_watermark: int = 0

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_watermark:
            self.queue_high_watermark = depth

    def as_dict(self) -> dict[str, int]:
        """All counters, for reports and CLIs."""
        return {
            name: getattr(self, name)
            for name in (
                "ops_started", "ops_committed", "ops_rolled_back", "op_steps",
                "ingest_accepted", "ingest_rejected", "ingest_quarantined",
                "ingest_requeued", "ingest_replayed", "ingest_overloaded",
                "queue_high_watermark",
            )
        }


@dataclass
class QueryPathCounters(RegistryMirrorMixin):
    """Counters of the read-side fast path: pruning index + result cache.

    ``queries_total`` counts executed queries; the partition counters
    accumulate over their plans.  ``index_resolutions`` counts plans
    whose surviving set came from the inverted synopsis index,
    ``catalog_scan_resolutions`` those that tested every catalog entry
    (no index attached).  The ``cache_*`` counters are maintained by the
    :class:`~repro.query.cache.QueryResultCache` the counters object is
    attached to; a *stale drop* is an entry discarded because its
    partition's content version moved on — exact invalidation at work.

    While observability is enabled these counters additionally feed the
    :mod:`repro.obs` registry as ``repro_query_*`` metrics (deferred;
    see :class:`repro.obs.shims.RegistryMirrorMixin`), so ``python -m
    repro query-path`` and ``python -m repro obs`` report the same
    numbers.
    """

    _OBS_METRICS = QUERY_PATH_METRICS

    queries_total: int = 0
    partitions_considered: int = 0
    partitions_scanned: int = 0
    partitions_pruned: int = 0
    index_resolutions: int = 0
    catalog_scan_resolutions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stale_drops: int = 0
    cache_evictions: int = 0
    rows_served_from_cache: int = 0

    def cache_hit_rate(self) -> float:
        """Hits over lookups (1.0 when the cache saw no traffic)."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 1.0
        return self.cache_hits / lookups

    def pruning_ratio(self) -> float:
        """Fraction of considered partitions eliminated before scanning."""
        if self.partitions_considered == 0:
            return 0.0
        return self.partitions_pruned / self.partitions_considered

    def as_dict(self) -> dict[str, float]:
        """All counters plus the derived rates, for reports and CLIs."""
        result = {
            name: getattr(self, name)
            for name in (
                "queries_total", "partitions_considered", "partitions_scanned",
                "partitions_pruned", "index_resolutions",
                "catalog_scan_resolutions", "cache_hits", "cache_misses",
                "cache_stale_drops", "cache_evictions", "rows_served_from_cache",
            )
        }
        result["cache_hit_rate"] = self.cache_hit_rate()
        result["pruning_ratio"] = self.pruning_ratio()
        return result


@dataclass
class ServerCounters(RegistryMirrorMixin):
    """Counters of the online serving layer (:mod:`repro.server`).

    The admission half mirrors the ingest pipeline's vocabulary —
    ``writes_shed_overloaded`` counts modifications bounced with the
    explicit ``overloaded`` status, ``queue_high_watermark`` is the
    deepest write queue observed.  The concurrency half counts what the
    batcher and the cooperative maintenance task did between requests:
    batches flushed under the exclusive lock, merge passes,
    reorganizations.

    While observability is enabled these counters additionally feed the
    :mod:`repro.obs` registry as ``repro_server_*`` metrics (deferred;
    see :class:`repro.obs.shims.RegistryMirrorMixin`).
    """

    _OBS_METRICS = SERVER_METRICS

    connections_opened: int = 0
    connections_closed: int = 0
    requests_total: int = 0
    requests_failed: int = 0
    bad_requests: int = 0
    writes_applied: int = 0
    writes_rejected: int = 0
    writes_shed_overloaded: int = 0
    writes_shed_shutdown: int = 0
    batches_flushed: int = 0
    queries_served: int = 0
    sql_served: int = 0
    maintenance_passes: int = 0
    partitions_merged: int = 0
    reorganizations: int = 0
    queue_high_watermark: int = 0
    wal_writes_logged: int = 0
    wal_records_replayed: int = 0
    connections_force_closed: int = 0
    checkpoints_taken: int = 0
    checkpoint_records_truncated: int = 0
    sync_pages_served: int = 0
    sync_deltas_applied: int = 0
    sync_entities_received: int = 0
    snapshots_published: int = 0
    snapshots_retired: int = 0
    snapshot_reads: int = 0
    snapshot_response_cache_hits: int = 0
    admission_window: int = 0
    adapt_decisions: int = 0
    adapt_actions: int = 0

    def shed_rate(self) -> float:
        """Shed modifications over all modification submissions."""
        shed = self.writes_shed_overloaded + self.writes_shed_shutdown
        attempted = self.writes_applied + self.writes_rejected + shed
        if attempted == 0:
            return 0.0
        return shed / attempted

    def as_dict(self) -> dict[str, float]:
        """All counters plus the derived shed rate, for reports and CLIs."""
        result = {
            name: getattr(self, name)
            for name in (
                "connections_opened", "connections_closed", "requests_total",
                "requests_failed", "bad_requests", "writes_applied",
                "writes_rejected", "writes_shed_overloaded",
                "writes_shed_shutdown", "batches_flushed", "queries_served",
                "sql_served", "maintenance_passes", "partitions_merged",
                "reorganizations", "queue_high_watermark",
                "wal_writes_logged", "wal_records_replayed",
                "connections_force_closed", "checkpoints_taken",
                "checkpoint_records_truncated", "sync_pages_served",
                "sync_deltas_applied", "sync_entities_received",
                "snapshots_published", "snapshots_retired", "snapshot_reads",
                "snapshot_response_cache_hits", "admission_window",
                "adapt_decisions", "adapt_actions",
            )
        }
        result["shed_rate"] = self.shed_rate()
        return result


@dataclass
class AdaptationCounters(RegistryMirrorMixin):
    """Decision counts of the adaptation controller (:mod:`repro.adapt`).

    Every decision the controller makes increments ``decisions_total``
    plus exactly one outcome counter: an ``acted_*`` counter when a plan
    was applied, or a ``declined_*`` counter naming the gate that
    stopped the pipeline.  The split makes the headline properties
    checkable from metrics alone — a stationary workload shows only
    ``declined_*`` growth, and the number of physical reorganizations
    during a shift is ``acted_reorganize``.

    While observability is enabled these counters additionally feed the
    :mod:`repro.obs` registry as ``repro_adapt_*`` metrics (deferred;
    see :class:`repro.obs.shims.RegistryMirrorMixin`).
    """

    _OBS_METRICS = ADAPT_METRICS

    decisions_total: int = 0
    acted_reorganize: int = 0
    acted_merge: int = 0
    declined_insufficient_traffic: int = 0
    declined_budget_exhausted: int = 0
    declined_cooldown: int = 0
    declined_baseline_established: int = 0
    declined_no_shift: int = 0
    declined_below_threshold: int = 0
    calibration_refits: int = 0

    def as_dict(self) -> dict[str, int]:
        """All counters, for reports and CLIs."""
        return {
            name: getattr(self, name)
            for name in (
                "decisions_total", "acted_reorganize", "acted_merge",
                "declined_insufficient_traffic", "declined_budget_exhausted",
                "declined_cooldown", "declined_baseline_established",
                "declined_no_shift", "declined_below_threshold",
                "calibration_refits",
            )
        }


@dataclass
class RouterCounters(RegistryMirrorMixin):
    """Counters of the routing tier (:mod:`repro.router`).

    The reply triple is the partial-result contract made countable:
    ``replies_complete`` (every needed shard answered),
    ``replies_degraded`` (some shards missing — the response says which)
    and ``replies_unavailable`` (no reachable replica for a needed
    shard; retryable).  The health half counts the circuit breaker's
    life: per-node ejections, probes, restores, and the catch-up writes
    replayed to a node that came back.

    While observability is enabled these counters additionally feed the
    :mod:`repro.obs` registry as ``repro_router_*`` metrics (deferred;
    see :class:`repro.obs.shims.RegistryMirrorMixin`).
    """

    _OBS_METRICS = ROUTER_METRICS

    connections_opened: int = 0
    connections_closed: int = 0
    requests_total: int = 0
    bad_requests: int = 0
    writes_routed: int = 0
    queries_scattered: int = 0
    replies_complete: int = 0
    replies_degraded: int = 0
    replies_unavailable: int = 0
    upstream_retries: int = 0
    failovers: int = 0
    node_ejections: int = 0
    node_restores: int = 0
    probes_sent: int = 0
    catchup_replayed: int = 0
    catchup_dropped: int = 0
    nodes_diverged: int = 0
    resyncs_started: int = 0
    resyncs_completed: int = 0
    resyncs_failed: int = 0
    sync_entities_streamed: int = 0
    obs_scrapes: int = 0

    def availability(self) -> float:
        """Fraction of routed requests answered completely (1.0 when idle)."""
        answered = (
            self.replies_complete + self.replies_degraded
            + self.replies_unavailable
        )
        if answered == 0:
            return 1.0
        return self.replies_complete / answered

    def as_dict(self) -> dict[str, float]:
        """All counters plus availability, for reports and CLIs."""
        result = {
            name: getattr(self, name)
            for name in (
                "connections_opened", "connections_closed", "requests_total",
                "bad_requests", "writes_routed", "queries_scattered",
                "replies_complete", "replies_degraded", "replies_unavailable",
                "upstream_retries", "failovers", "node_ejections",
                "node_restores", "probes_sent", "catchup_replayed",
                "catchup_dropped", "nodes_diverged", "resyncs_started",
                "resyncs_completed", "resyncs_failed",
                "sync_entities_streamed",
            )
        }
        result["availability"] = self.availability()
        return result


@dataclass
class TelemetryCollector:
    """Samples a partitioner every ``interval`` observed operations.

    >>> from repro.core.partitioner import CinderellaPartitioner
    >>> collector = TelemetryCollector(interval=2)
    >>> p = CinderellaPartitioner()
    >>> for eid in range(4):
    ...     _ = p.insert(eid, 0b11)
    ...     collector.observe(p)
    >>> [s.entity_count for s in collector.samples]
    [2, 4]
    """

    interval: int = 100
    query_masks: Optional[Sequence[int]] = None
    samples: list[TelemetrySample] = field(default_factory=list)
    _operations: int = 0

    def observe(self, partitioner: "CinderellaPartitioner") -> None:
        """Count one operation; sample when the interval elapses."""
        self._operations += 1
        if self._operations % self.interval == 0:
            self.sample_now(partitioner)

    def sample_now(self, partitioner: "CinderellaPartitioner") -> TelemetrySample:
        """Take a sample immediately (also called by :meth:`observe`)."""
        catalog = partitioner.catalog
        partition_count = len(catalog)
        entity_count = catalog.entity_count
        efficiency = None
        if self.query_masks is not None and partition_count:
            efficiency = catalog_efficiency(catalog, self.query_masks)
        sample = TelemetrySample(
            operations=self._operations,
            entity_count=entity_count,
            partition_count=partition_count,
            mean_fill=entity_count / partition_count if partition_count else 0.0,
            split_count=partitioner.split_count,
            efficiency=efficiency,
        )
        self.samples.append(sample)
        return sample

    def series(self, metric: str) -> list[tuple[float, float]]:
        """One metric as an (operations, value) series for the renderers."""
        points = []
        for sample in self.samples:
            value = getattr(sample, metric)
            if value is None:
                continue
            points.append((float(sample.operations), float(value)))
        return points
