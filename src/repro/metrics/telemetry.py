"""Telemetry: time series of partitioning health during a workload.

The online partitioning problem is about behaviour *over time* — the
partitioning must stay good while modifications stream in.  This module
samples a partitioner at a fixed operation cadence and records the series
(partition count, efficiency, mean fill, split count), so benchmarks and
examples can show convergence and stability instead of just end states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.core.efficiency import catalog_efficiency

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partitioner import CinderellaPartitioner


@dataclass(frozen=True)
class TelemetrySample:
    """One sampled point of the partitioning's state."""

    operations: int
    entity_count: int
    partition_count: int
    mean_fill: float
    split_count: int
    efficiency: Optional[float]


@dataclass
class TelemetryCollector:
    """Samples a partitioner every ``interval`` observed operations.

    >>> from repro.core.partitioner import CinderellaPartitioner
    >>> collector = TelemetryCollector(interval=2)
    >>> p = CinderellaPartitioner()
    >>> for eid in range(4):
    ...     _ = p.insert(eid, 0b11)
    ...     collector.observe(p)
    >>> [s.entity_count for s in collector.samples]
    [2, 4]
    """

    interval: int = 100
    query_masks: Optional[Sequence[int]] = None
    samples: list[TelemetrySample] = field(default_factory=list)
    _operations: int = 0

    def observe(self, partitioner: "CinderellaPartitioner") -> None:
        """Count one operation; sample when the interval elapses."""
        self._operations += 1
        if self._operations % self.interval == 0:
            self.sample_now(partitioner)

    def sample_now(self, partitioner: "CinderellaPartitioner") -> TelemetrySample:
        """Take a sample immediately (also called by :meth:`observe`)."""
        catalog = partitioner.catalog
        partition_count = len(catalog)
        entity_count = catalog.entity_count
        efficiency = None
        if self.query_masks is not None and partition_count:
            efficiency = catalog_efficiency(catalog, self.query_masks)
        sample = TelemetrySample(
            operations=self._operations,
            entity_count=entity_count,
            partition_count=partition_count,
            mean_fill=entity_count / partition_count if partition_count else 0.0,
            split_count=partitioner.split_count,
            efficiency=efficiency,
        )
        self.samples.append(sample)
        return sample

    def series(self, metric: str) -> list[tuple[float, float]]:
        """One metric as an (operations, value) series for the renderers."""
        points = []
        for sample in self.samples:
            value = getattr(sample, metric)
            if value is None:
                continue
            points.append((float(sample.operations), float(value)))
        return points
