"""Logarithmic histograms — the shape of Figure 8.

Figure 8 plots the insert execution-time distribution on a log-scale time
axis ("the majority of insert operations finishes in between 1 ms and
10 ms", with a small splitting fraction orders of magnitude slower).
:class:`LogHistogram` buckets positive samples into per-decade bins
(optionally subdivided) so the benches can print the same picture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class HistogramBucket:
    """One histogram bin ``[low, high)`` with its sample count."""

    low: float
    high: float
    count: int

    def label(self) -> str:
        return f"[{self.low:g}, {self.high:g})"


class LogHistogram:
    """Histogram with logarithmically spaced bucket edges."""

    def __init__(
        self,
        low: float = 0.01,
        high: float = 10_000.0,
        buckets_per_decade: int = 2,
    ) -> None:
        if low <= 0 or high <= low:
            raise ValueError(f"need 0 < low < high, got {low}, {high}")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be at least 1")
        self.low = low
        self.high = high
        decades = math.log10(high / low)
        self._bucket_count = max(1, math.ceil(decades * buckets_per_decade))
        self._step = math.log10(high / low) / self._bucket_count
        self._counts = [0] * self._bucket_count
        self.underflow = 0
        self.overflow = 0
        self.samples = 0

    def add(self, value: float) -> None:
        """Record one positive sample."""
        self.samples += 1
        if value < self.low:
            self.underflow += 1
            return
        if value >= self.high:
            self.overflow += 1
            return
        index = int(math.log10(value / self.low) / self._step)
        index = min(index, self._bucket_count - 1)
        self._counts[index] += 1

    def add_all(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def buckets(self, skip_empty_tails: bool = True) -> list[HistogramBucket]:
        """The bins, optionally trimming empty leading/trailing bins."""
        buckets = [
            HistogramBucket(
                low=self.low * 10 ** (i * self._step),
                high=self.low * 10 ** ((i + 1) * self._step),
                count=count,
            )
            for i, count in enumerate(self._counts)
        ]
        if skip_empty_tails:
            while buckets and buckets[0].count == 0:
                buckets.pop(0)
            while buckets and buckets[-1].count == 0:
                buckets.pop()
        return buckets

    def fraction_between(self, low: float, high: float) -> float:
        """Fraction of samples with ``low <= value < high`` (bucket-exact
        only when the bounds align with bucket edges; used for coarse
        assertions like "most inserts take 1-10 ms")."""
        if self.samples == 0:
            return 0.0
        matched = sum(
            bucket.count
            for bucket in self.buckets(skip_empty_tails=False)
            if bucket.low >= low and bucket.high <= high
        )
        return matched / self.samples


def render_histogram(
    buckets: Sequence[HistogramBucket], width: int = 40, unit: str = ""
) -> str:
    """ASCII rendering of a histogram (one line per bucket)."""
    if not buckets:
        return "(no samples)"
    peak = max(bucket.count for bucket in buckets) or 1
    lines = []
    for bucket in buckets:
        bar = "#" * max(1 if bucket.count else 0, round(bucket.count / peak * width))
        lines.append(f"{bucket.label():>22}{unit}  {bucket.count:>8}  {bar}")
    return "\n".join(lines)
