"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")


class Timer:
    """Context manager measuring elapsed wall time.

    >>> with Timer() as t:
    ...     _ = sum(range(100))
    >>> t.elapsed_s >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_s = time.perf_counter() - self._started

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1000.0


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Call *fn*, returning ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
