"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from typing import Callable, Optional, TypeVar

from repro.obs import runtime as obs

T = TypeVar("T")


class Timer:
    """Context manager measuring elapsed wall time.

    When ``metric`` is given, the elapsed seconds are also observed
    into that histogram of the :mod:`repro.obs` registry on exit —
    a no-op while observability is disabled.

    >>> with Timer() as t:
    ...     _ = sum(range(100))
    >>> t.elapsed_s >= 0.0
    True
    """

    def __init__(
        self, metric: Optional[str] = None, help_text: str = ""
    ) -> None:
        self.metric = metric
        self.help_text = help_text
        self.elapsed_s = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_s = time.perf_counter() - self._started
        if self.metric is not None:
            obs.observe(self.metric, self.elapsed_s, self.help_text)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1000.0


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Call *fn*, returning ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
