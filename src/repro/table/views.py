"""Schema-emulating views (the TPC-H experiment's access path).

For the regular-data experiment (Section V-C) the paper loads TPC-H into a
Cinderella-partitioned universal table and emulates the standard TPC-H
tables with views over the partitions.  :class:`TableView` is that
emulation: a named relation defined by a set of columns, materialized on
demand as a pruned UNION ALL over the partitions whose synopses contain
all discriminating columns.

Because TPC-H data is perfectly regular and column names are disjoint
across tables (``l_…``, ``o_…``, …), Cinderella recovers partitions that
each hold entities of exactly one table — the view then prunes every
foreign partition, and the only residual cost is the union overhead that
Table I quantifies.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, TYPE_CHECKING

from repro.query.executor import ExecutionStats
from repro.query.query import AttributeQuery
from repro.query.rewrite import UnionAllPlan
from repro.storage.record import deserialize_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.table.partitioned import CinderellaTable


class TableView:
    """A regular-table view over a Cinderella-partitioned universal table."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        table: "CinderellaTable",
        key_columns: Optional[Sequence[str]] = None,
    ) -> None:
        """Define a view.

        Args:
            name: the emulated table's name (e.g. ``lineitem``).
            columns: the emulated table's full column list; rows are
                projected to these.
            table: the partitioned universal table to read from.
            key_columns: the columns that *discriminate* membership — an
                entity belongs to the view iff it instantiates all of
                them.  Defaults to all ``columns``, which is exact for
                NOT NULL schemas like TPC-H.
        """
        if not columns:
            raise ValueError("a view needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self.key_columns = tuple(key_columns) if key_columns else self.columns
        self.table = table
        #: statistics of the most recent materialization
        self.last_stats: Optional[ExecutionStats] = None

    def _query(self) -> AttributeQuery:
        return AttributeQuery(self.key_columns, mode="all")

    def plan(self) -> UnionAllPlan:
        """The pruned UNION ALL plan materializing this view."""
        return self.table.plan(self._query())

    def rows(self) -> Iterator[dict[str, Any]]:
        """Materialize the view: scan surviving partitions, project rows.

        Accumulates :class:`ExecutionStats` in :attr:`last_stats` so the
        TPC-H harness can charge the view's scan and union-projection
        costs to the query that consumed it.
        """
        plan = self.plan()
        query = plan.query
        stats = ExecutionStats(
            partitions_total=plan.partitions_total,
            partitions_pruned=len(plan.pruned_pids),
        )
        self.last_stats = stats
        dictionary = self.table.dictionary
        for pid in plan.branch_pids:
            heap = self.table.heap_of(pid)
            stats.partitions_scanned += 1
            stats.union_branches += 1
            before = heap.io.snapshot()
            for _rid, record in heap.scan():
                _eid, attributes = deserialize_record(record, dictionary)
                stats.entities_read += 1
                if query.matches(attributes):
                    stats.rows_returned += 1
                    yield {name: attributes.get(name) for name in self.columns}
            delta = heap.io.delta_since(before)
            stats.pages_read += delta.pages_read
            stats.bytes_read += delta.bytes_read

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableView({self.name}, {len(self.columns)} columns)"
