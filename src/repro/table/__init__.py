"""Table layer: universal table, Cinderella-partitioned table, views."""

from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable
from repro.table.views import TableView

__all__ = ["CinderellaTable", "TableView", "UniversalTable"]
