"""The unpartitioned universal table — the paper's baseline.

One sparse table holds every entity (Figure 1).  Queries must scan it in
full regardless of their selectivity, which is exactly the flat curve the
paper measures for the "universal table" series in Figures 5 and 6.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional

from repro.catalog.dictionary import AttributeDictionary
from repro.query.executor import ExecutionResult, execute_full_scan
from repro.query.query import AttributeQuery
from repro.storage.buffer import BufferPool
from repro.storage.entity import Entity
from repro.storage.heap import HeapFile, RecordId
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.record import deserialize_record, serialize_record


class UniversalTable:
    """A single heap file of irregularly structured entities."""

    def __init__(
        self,
        dictionary: Optional[AttributeDictionary] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool: Optional[BufferPool] = None,
    ) -> None:
        self.dictionary = dictionary if dictionary is not None else AttributeDictionary()
        self.io = IOStats()
        self.heap = HeapFile(page_size=page_size, io=self.io, buffer_pool=buffer_pool)
        self._rids: dict[int, RecordId] = {}
        self._masks: dict[int, int] = {}
        self._next_eid = 0

    # ------------------------------------------------------------------
    # data manipulation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rids)

    def __contains__(self, eid: int) -> bool:
        return eid in self._rids

    def insert(
        self, attributes: Mapping[str, Any], entity_id: Optional[int] = None
    ) -> int:
        """Insert an entity; returns its (assigned or given) entity id."""
        eid = self._claim_eid(entity_id)
        record = serialize_record(eid, attributes, self.dictionary)
        self._rids[eid] = self.heap.insert(record)
        self._masks[eid] = self.dictionary.encode(attributes)
        return eid

    def delete(self, eid: int) -> None:
        rid = self._rids.pop(eid)
        del self._masks[eid]
        self.heap.delete(rid)

    def update(self, eid: int, attributes: Mapping[str, Any]) -> None:
        record = serialize_record(eid, attributes, self.dictionary)
        self._rids[eid] = self.heap.replace(self._rids[eid], record)
        self._masks[eid] = self.dictionary.encode(attributes)

    def get(self, eid: int) -> Entity:
        """Random-access read of one entity."""
        record = self.heap.read(self._rids[eid])
        entity_id, attributes = deserialize_record(record, self.dictionary)
        return Entity(entity_id, attributes)

    def _claim_eid(self, entity_id: Optional[int]) -> int:
        if entity_id is None:
            entity_id = self._next_eid
        if entity_id in self._rids:
            raise ValueError(f"entity {entity_id} already exists")
        self._next_eid = max(self._next_eid, entity_id) + 1
        return entity_id

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Entity]:
        """Full-table scan in physical order."""
        for _rid, record in self.heap.scan():
            entity_id, attributes = deserialize_record(record, self.dictionary)
            yield Entity(entity_id, attributes)

    def execute(self, query: AttributeQuery) -> ExecutionResult:
        """Run an attribute query: always a full scan, never pruned."""
        return execute_full_scan(query, self.heap, self.dictionary)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def entity_ids(self) -> tuple[int, ...]:
        return tuple(self._rids)

    def entity_masks(self) -> dict[int, int]:
        """Entity synopsis masks, for the efficiency metric and baselines."""
        return dict(self._masks)

    def data_bytes(self) -> int:
        return self.heap.data_bytes()

    def sparseness(self) -> float:
        """Fraction of unset cells in the full entity × attribute grid.

        The paper reports 0.94 for the DBpedia person extract.
        """
        attr_count = len(self.dictionary)
        if not self._masks or attr_count == 0:
            return 0.0
        instantiated = sum(mask.bit_count() for mask in self._masks.values())
        return 1.0 - instantiated / (len(self._masks) * attr_count)
