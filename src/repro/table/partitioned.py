"""The Cinderella-partitioned universal table.

This is the reproduction of the paper's prototype: users insert, update,
and delete against a universal table interface; every modification
triggers the Cinderella routine (the prototype used PostgreSQL triggers,
we call the partitioner directly); queries are rewritten to a pruned
UNION ALL over per-partition heap files.

The partitioner is purely logical — it returns a
:class:`~repro.core.outcomes.ModificationOutcome` describing partition
creations, drops, and entity moves, and this class mirrors those decisions
physically.  Physical moves read and rewrite the actual serialized
records, so split costs show up in the I/O statistics exactly as the paper
describes ("the performance will be dominated by the moving of the actual
entities from partition to partition").
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional

from repro.catalog.catalog import PartitionCatalog
from repro.catalog.dictionary import AttributeDictionary
from repro.core.config import CinderellaConfig
from repro.core.outcomes import ModificationOutcome
from repro.core.partitioner import CinderellaPartitioner
from repro.metrics.telemetry import QueryPathCounters
from repro.query.cache import QueryResultCache
from repro.query.executor import (
    ExecutionResult,
    execute_uncached_full_scan,
    execute_union_all,
)
from repro.query.query import AttributeQuery
from repro.query.rewrite import UnionAllPlan, rewrite
from repro.storage.buffer import BufferPool
from repro.storage.entity import Entity
from repro.storage.heap import HeapFile, RecordId
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.record import deserialize_record, serialize_record


class CinderellaTable:
    """A universal table horizontally partitioned online by Cinderella."""

    def __init__(
        self,
        config: Optional[CinderellaConfig] = None,
        dictionary: Optional[AttributeDictionary] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool: Optional[BufferPool] = None,
        result_cache: Optional[QueryResultCache] = None,
    ) -> None:
        self.dictionary = dictionary if dictionary is not None else AttributeDictionary()
        self.partitioner = CinderellaPartitioner(config)
        self.io = IOStats()
        self.page_size = page_size
        self.buffer_pool = buffer_pool
        #: read-side fast-path telemetry (always collected — it is cheap)
        self.query_counters = QueryPathCounters()
        self.result_cache = result_cache
        if result_cache is not None and result_cache.counters is None:
            result_cache.counters = self.query_counters
        #: optional adaptation hook (an
        #: :class:`~repro.adapt.controller.AdaptationController` installs
        #: itself here via ``bind_table``); when set, every executed query
        #: and applied modification feeds its workload trace
        self.adapt = None
        self._heaps: dict[int, HeapFile] = {}
        self._rids: dict[int, RecordId] = {}
        self._next_eid = 0

    @property
    def catalog(self) -> PartitionCatalog:
        return self.partitioner.catalog

    @property
    def config(self) -> CinderellaConfig:
        return self.partitioner.config

    # ------------------------------------------------------------------
    # data manipulation (the trigger bodies of the prototype)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rids)

    def __contains__(self, eid: int) -> bool:
        return eid in self._rids

    def entity_ids(self) -> list[int]:
        """Stored entity ids in ascending order (resync paging, audits)."""
        return sorted(self._rids)

    def insert(
        self, attributes: Mapping[str, Any], entity_id: Optional[int] = None
    ) -> ModificationOutcome:
        """Insert an entity through the Cinderella routine."""
        eid = self._claim_eid(entity_id)
        record = serialize_record(eid, attributes, self.dictionary)
        mask = self.dictionary.encode(attributes)
        outcome = self.partitioner.insert(eid, mask, payload_bytes=len(record))
        self._apply(outcome, fresh_records={eid: record})
        self._observe_write(outcome)
        return outcome

    def delete(self, eid: int) -> ModificationOutcome:
        """Delete an entity; drops its partition when it becomes empty."""
        if eid not in self._rids:
            raise KeyError(f"no entity {eid}")
        pid = self.catalog.partition_of(eid)
        outcome = self.partitioner.delete(eid)
        heap = self._heaps[pid]
        heap.delete(self._rids.pop(eid))
        self._drop_heaps(outcome)
        if self.adapt is not None:
            self.adapt.observe_write(pid, version=self.catalog.version_clock)
        return outcome

    def update(self, eid: int, attributes: Mapping[str, Any]) -> ModificationOutcome:
        """Update an entity; Cinderella moves it only if a better partition wins."""
        if eid not in self._rids:
            raise KeyError(f"no entity {eid}")
        record = serialize_record(eid, attributes, self.dictionary)
        mask = self.dictionary.encode(attributes)
        old_pid = self.catalog.partition_of(eid)
        outcome = self.partitioner.update(eid, mask, payload_bytes=len(record))
        if outcome.in_place:
            heap = self._heaps[old_pid]
            self._rids[eid] = heap.replace(self._rids[eid], record)
        else:
            # the entity leaves its old partition; its first move reads the
            # new record, the old one is discarded here
            self._heaps[old_pid].delete(self._rids.pop(eid))
            self._apply(outcome, fresh_records={eid: record})
        self._observe_write(outcome)
        return outcome

    def _observe_write(self, outcome: ModificationOutcome) -> None:
        if self.adapt is not None and outcome.partition_id is not None:
            self.adapt.observe_write(
                outcome.partition_id, version=self.catalog.version_clock
            )

    def _claim_eid(self, entity_id: Optional[int]) -> int:
        if entity_id is None:
            entity_id = self._next_eid
        if entity_id in self._rids:
            raise ValueError(f"entity {entity_id} already exists")
        self._next_eid = max(self._next_eid, entity_id) + 1
        return entity_id

    # ------------------------------------------------------------------
    # physical mirroring of partitioner outcomes
    # ------------------------------------------------------------------
    def _apply(
        self, outcome: ModificationOutcome, fresh_records: dict[int, bytes]
    ) -> None:
        """Replay an outcome's moves against the heap files, in order.

        ``fresh_records`` holds serialized records for entities that are
        not yet stored anywhere (the incoming insert / the updated record).
        """
        for pid in outcome.created_partitions:
            self._heaps[pid] = HeapFile(
                page_size=self.page_size, io=self.io, buffer_pool=self.buffer_pool
            )
        for move in outcome.moves:
            if move.eid in fresh_records:
                record = fresh_records.pop(move.eid)
            else:
                source_heap = self._heaps[move.from_pid]
                rid = self._rids.pop(move.eid)
                record = source_heap.read(rid)
                source_heap.delete(rid)
            self._rids[move.eid] = self._heaps[move.to_pid].insert(record)
        self._drop_heaps(outcome)

    def _drop_heaps(self, outcome: ModificationOutcome) -> None:
        for pid in outcome.dropped_partitions:
            heap = self._heaps.pop(pid)
            if len(heap):
                raise AssertionError(
                    f"dropping partition {pid} with {len(heap)} records left"
                )
            heap.free()
            if self.result_cache is not None:
                # memory hygiene only — version validation already keeps
                # the dropped pid's entries from ever being served
                self.result_cache.invalidate_partition(pid)

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def _restore_partition(self, members) -> int:
        """Recreate one partition with exact membership (snapshot load).

        *members* is a sequence of ``(entity_id, attributes)``; split
        starters are rebuilt by replaying the incremental rule over the
        stored member order.  Returns the fresh partition id.
        """
        partition = self.catalog.create_partition()
        heap = self._heaps[partition.pid] = HeapFile(
            page_size=self.page_size, io=self.io, buffer_pool=self.buffer_pool
        )
        for eid, attributes in members:
            if eid in self._rids:
                raise ValueError(f"entity {eid} restored twice")
            record = serialize_record(eid, attributes, self.dictionary)
            mask = self.dictionary.encode(attributes)
            size = self.config.size_model.entity_size(mask, len(record))
            self.catalog.add_entity(partition.pid, eid, mask, size)
            self._rids[eid] = heap.insert(record)
            self._next_eid = max(self._next_eid, eid) + 1
        return partition.pid

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def merge_small_partitions(self, min_fill: float = 0.25):
        """Merge under-filled partitions (see :mod:`repro.maintenance.merger`)
        and mirror the relocations physically.

        Returns the :class:`~repro.maintenance.merger.MergeReport`.
        """
        from repro.maintenance.merger import merge_small_partitions

        report = merge_small_partitions(self.partitioner, min_fill=min_fill)
        for move in report.moves:
            source_heap = self._heaps[move.from_pid]
            rid = self._rids.pop(move.eid)
            record = source_heap.read(rid)
            source_heap.delete(rid)
            self._rids[move.eid] = self._heaps[move.to_pid].insert(record)
        for pid in report.dropped_partitions:
            heap = self._heaps.pop(pid)
            heap.free()
            if self.result_cache is not None:
                self.result_cache.invalidate_partition(pid)
        return report

    def reorganize(
        self,
        config: Optional[CinderellaConfig] = None,
        query_masks=None,
        order: str = "size",
    ):
        """Rebuild the partitioning offline and mirror it physically.

        Runs :func:`repro.txn.ops.atomic_reorganize` on the logical
        partitioner (which also re-stamps every partition version past
        the replaced catalog's clock, so no pre-reorganization cache
        entry can ever be served again), then rebuilds the heap files to
        match the adopted layout.  Returns the
        :class:`~repro.maintenance.reorganizer.ReorganizationReport`.
        """
        from repro.txn.ops import atomic_reorganize

        attributes_by_eid = {
            entity.entity_id: entity.attributes for entity in self.scan()
        }
        report = atomic_reorganize(
            self.partitioner, config, query_masks=query_masks, order=order
        )
        for heap in self._heaps.values():
            heap.free()
        self._heaps = {}
        self._rids = {}
        for partition in self.catalog:
            heap = self._heaps[partition.pid] = HeapFile(
                page_size=self.page_size, io=self.io, buffer_pool=self.buffer_pool
            )
            for eid, _mask, _size in partition.members():
                record = serialize_record(
                    eid, attributes_by_eid[eid], self.dictionary
                )
                self._rids[eid] = heap.insert(record)
        return report

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, eid: int) -> Entity:
        pid = self.catalog.partition_of(eid)
        record = self._heaps[pid].read(self._rids[eid])
        entity_id, attributes = deserialize_record(record, self.dictionary)
        return Entity(entity_id, attributes)

    def scan(self) -> Iterator[Entity]:
        """Scan every partition (no pruning; for exports and tests)."""
        for pid in sorted(self._heaps):
            for _rid, record in self._heaps[pid].scan():
                entity_id, attributes = deserialize_record(record, self.dictionary)
                yield Entity(entity_id, attributes)

    def plan(self, query: AttributeQuery, use_index: bool = True) -> UnionAllPlan:
        """Rewrite a query into its pruned UNION ALL plan."""
        return rewrite(query, self.catalog, self.dictionary, use_index=use_index)

    def execute(self, query: AttributeQuery, eid_filter=None) -> ExecutionResult:
        """Rewrite and execute a query over the surviving partitions.

        The fast path end to end: survivors resolved through the
        inverted synopsis index when the catalog carries one, branch
        results served from the result cache when one is attached.

        *eid_filter* (shard-scoped reads from the routing tier)
        restricts the scan to entities it accepts; filtered executions
        bypass the result cache (cached rows are filter-agnostic).
        """
        if self.catalog.index is not None:
            self.query_counters.index_resolutions += 1
        else:
            self.query_counters.catalog_scan_resolutions += 1
        result = execute_union_all(
            self.plan(query),
            self._heaps,
            self.dictionary,
            catalog=self.catalog,
            cache=self.result_cache,
            counters=self.query_counters,
            eid_filter=eid_filter,
        )
        if self.adapt is not None:
            self.adapt.observe_execution(query, result, self)
        return result

    def execute_naive(self, query: AttributeQuery) -> ExecutionResult:
        """Execute with no pruning, no index, no cache (the oracle path)."""
        return execute_uncached_full_scan(query, self._heaps, self.dictionary)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def entity_masks(self) -> dict[int, int]:
        """Entity synopsis masks, for the efficiency metric."""
        return {
            eid: mask
            for partition in self.catalog
            for eid, mask, _size in partition.members()
        }

    def data_bytes(self) -> int:
        return sum(heap.data_bytes() for heap in self._heaps.values())

    def partition_count(self) -> int:
        return len(self.catalog)

    def heap_of(self, pid: int) -> HeapFile:
        """The heap file storing one partition (benchmarks peek at these)."""
        return self._heaps[pid]

    def check_consistency(self) -> list[str]:
        """Logical/physical cross-check: catalog vs. heap contents."""
        problems = self.partitioner.check_invariants()
        for pid, heap in self._heaps.items():
            if pid not in self.catalog:
                problems.append(f"heap for unknown partition {pid}")
                continue
            if len(heap) != len(self.catalog.get(pid)):
                problems.append(
                    f"partition {pid}: {len(self.catalog.get(pid))} catalog "
                    f"entities but {len(heap)} stored records"
                )
        for partition in self.catalog:
            if partition.pid not in self._heaps:
                problems.append(f"partition {partition.pid} has no heap file")
        for eid, rid in self._rids.items():
            pid = self.catalog.partition_of(eid)
            record = self._heaps[pid]._pages[rid.page].read(rid.slot)
            stored_eid, _ = deserialize_record(record, self.dictionary)
            if stored_eid != eid:
                problems.append(f"rid of entity {eid} points at record {stored_eid}")
        return problems
