"""Parameter advisor for Cinderella's two knobs, B and w.

The paper gives qualitative guidance: "the partition size limit should be
set lower for very selective workloads and higher for less selective
workloads" (Section V-B) and "the optimal weight depends more on the
irregularity of the data set than on the workload", with 0.2–0.5 a
reasonable band.  This module turns that guidance into an automated
recommendation: it runs small trial partitionings over a sample of the
data and scores each candidate configuration by Definition 1 efficiency
minus a partition-count penalty representing the catalog/union overhead.

The advisor is an offline helper — exactly the kind of tool a DBA would
run once before enabling online partitioning — and is deliberately cheap:
trials run on a bounded sample with the plain logical partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency
from repro.core.partitioner import CinderellaPartitioner

#: default candidate grids, spanning the paper's studied ranges
DEFAULT_WEIGHTS = (0.1, 0.2, 0.3, 0.4, 0.5)
DEFAULT_SIZE_FRACTIONS = (0.01, 0.025, 0.05, 0.25)


@dataclass(frozen=True)
class Trial:
    """One evaluated candidate configuration."""

    weight: float
    max_partition_size: float
    efficiency: float
    partition_count: int
    score: float


@dataclass(frozen=True)
class AdvisorReport:
    """The recommendation plus every trial behind it."""

    recommended: CinderellaConfig
    trials: tuple[Trial, ...]
    sample_size: int
    rationale: str

    def best_trial(self) -> Trial:
        return max(self.trials, key=lambda t: t.score)


def advise(
    entity_masks: Sequence[int],
    query_masks: Optional[Sequence[int]] = None,
    weights: Sequence[float] = DEFAULT_WEIGHTS,
    size_fractions: Sequence[float] = DEFAULT_SIZE_FRACTIONS,
    sample_limit: int = 5_000,
    partition_penalty: float = 0.5,
) -> AdvisorReport:
    """Recommend a :class:`CinderellaConfig` for a data set.

    Args:
        entity_masks: synopsis masks of the (sampled) entities.
        query_masks: the workload, when known; without one, every
            instantiated attribute becomes a single-attribute probe query
            (the workload-agnostic reading of Definition 1).
        weights: candidate ``w`` values.
        size_fractions: candidate ``B`` values as fractions of the data
            set size (so the advice scales with the table).
        sample_limit: trials run on at most this many entities.
        partition_penalty: score deduction proportional to the
            partition-to-entity ratio — the stand-in for catalog scan and
            UNION ALL overhead that pure efficiency ignores (the paper:
            smaller partitions always raise efficiency but "increase the
            total number of partitions and thereby the overhead").

    Returns:
        An :class:`AdvisorReport` with the winning configuration and all
        trial scores, highest first.
    """
    if not entity_masks:
        raise ValueError("cannot advise on an empty data set")
    if not weights or not size_fractions:
        raise ValueError("need at least one candidate weight and size")
    sample = list(entity_masks[:sample_limit])

    if query_masks is None:
        universe = 0
        for mask in sample:
            universe |= mask
        probes = []
        remaining = universe
        while remaining:
            low = remaining & -remaining
            probes.append(low)
            remaining ^= low
        query_masks = probes

    trials: list[Trial] = []
    total = len(entity_masks)
    for weight in weights:
        for fraction in size_fractions:
            max_size = max(2.0, round(fraction * total))
            trial_size = max(2.0, round(fraction * len(sample)))
            partitioner = CinderellaPartitioner(
                CinderellaConfig(max_partition_size=trial_size, weight=weight)
            )
            for eid, mask in enumerate(sample):
                partitioner.insert(eid, mask)
            efficiency = catalog_efficiency(partitioner.catalog, query_masks)
            count = len(partitioner.catalog)
            score = efficiency - partition_penalty * count / len(sample)
            trials.append(
                Trial(
                    weight=weight,
                    max_partition_size=max_size,
                    efficiency=efficiency,
                    partition_count=count,
                    score=score,
                )
            )
    trials.sort(key=lambda t: (-t.score, t.max_partition_size, t.weight))
    best = trials[0]
    rationale = (
        f"best of {len(trials)} trials on a {len(sample)}-entity sample: "
        f"efficiency {best.efficiency:.3f} with {best.partition_count} "
        f"partitions (score {best.score:.3f}); paper guidance: weights "
        f"0.2-0.5 are reasonable, lower B favours selective workloads"
    )
    return AdvisorReport(
        recommended=CinderellaConfig(
            max_partition_size=best.max_partition_size, weight=best.weight
        ),
        trials=tuple(trials),
        sample_size=len(sample),
        rationale=rationale,
    )
