"""Offline B/w grid advisor — now a re-export of :mod:`repro.adapt.advisor`.

The grid advisor grew a closed-loop sibling (the cost-model-driven
online advisor of :mod:`repro.adapt`), and the two share the candidate
machinery, so the implementation lives there now.  This module keeps the
historical import path working: ``from repro.tuning.advisor import
advise`` behaves exactly as before.
"""

from __future__ import annotations

from repro.adapt.advisor import (
    DEFAULT_SIZE_FRACTIONS,
    DEFAULT_WEIGHTS,
    AdvisorReport,
    Trial,
    advise,
)

__all__ = [
    "DEFAULT_SIZE_FRACTIONS",
    "DEFAULT_WEIGHTS",
    "AdvisorReport",
    "Trial",
    "advise",
]
