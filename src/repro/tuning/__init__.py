"""Parameter tuning: the offline B/w advisor."""

from repro.tuning.advisor import AdvisorReport, Trial, advise

__all__ = ["AdvisorReport", "Trial", "advise"]
