"""Workload trace store — the *observe* stage of the adaptation loop.

The store samples live traffic into two compact structures:

* a **query profile**: decayed weights per distinct query synopsis mask,
  bounded to ``max_query_shapes`` distinct shapes (the lightest shape is
  evicted on overflow).  Every ``decay_every`` observed queries all
  weights are multiplied by ``decay``, so the profile tracks the recent
  workload instead of the whole history — exactly what the advisor
  should optimize for.  One exemplar ``(attributes, mode)`` pair is kept
  per mask so the calibrator can replay a shape as a real query.
* per-partition **heat**: read/write counts and the version clock at the
  last touch, exposed through the server's ``stats`` verb and ``repro
  top`` so operators can see what the advisor sees.

Workload *shift* is measured as the total-variation distance between two
normalized profiles (0.0 = identical mix, 1.0 = disjoint) — the
controller blesses a reference profile and only wakes the advisor when
the live profile drifts past its threshold.

All mutators take one plain lock: queries are observed on the server's
event loop, writes on the batcher's worker thread, and the controller
reads from the maintenance thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

#: weights below this are dropped outright after a decay pass
_WEIGHT_FLOOR = 1e-3


@dataclass
class PartitionHeat:
    """Access counts of one partition (operator-facing)."""

    reads: int = 0
    writes: int = 0
    last_version: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "last_version": self.last_version,
        }


def profile_shift(
    reference: Mapping[int, float], current: Mapping[int, float]
) -> float:
    """Total-variation distance between two normalized mask profiles.

    Both inputs are mask -> weight maps (not necessarily normalized);
    the result is in ``[0, 1]``: 0.0 for an identical mix, 1.0 for
    disjoint workloads.  An empty side counts as maximally shifted
    against a non-empty one, and 0.0 against another empty one.
    """
    ref_total = sum(reference.values())
    cur_total = sum(current.values())
    if ref_total <= 0.0 and cur_total <= 0.0:
        return 0.0
    if ref_total <= 0.0 or cur_total <= 0.0:
        return 1.0
    distance = 0.0
    for mask in reference.keys() | current.keys():
        p = reference.get(mask, 0.0) / ref_total
        q = current.get(mask, 0.0) / cur_total
        distance += abs(p - q)
    return min(1.0, 0.5 * distance)


class WorkloadTraceStore:
    """Bounded, decayed sampling of query/insert traffic (thread-safe)."""

    def __init__(
        self,
        max_query_shapes: int = 128,
        decay: float = 0.5,
        decay_every: int = 512,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if max_query_shapes < 1:
            raise ValueError("need room for at least one query shape")
        self.max_query_shapes = max_query_shapes
        self.decay = decay
        self.decay_every = max(1, decay_every)
        #: monotonic totals (never decayed)
        self.queries_observed = 0
        self.writes_observed = 0
        self.shapes_evicted = 0
        self._lock = threading.Lock()
        self._weights: dict[int, float] = {}
        #: mask -> (attributes, mode) of one real query with that mask
        self._exemplars: dict[int, tuple[tuple[str, ...], str]] = {}
        self._heat: dict[int, PartitionHeat] = {}
        self._since_decay = 0

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_query(
        self,
        mask: int,
        scanned_pids: Iterable[int] = (),
        version: int = 0,
        exemplar: Optional[tuple[tuple[str, ...], str]] = None,
    ) -> None:
        """Record one query: its mask, and which partitions it touched."""
        with self._lock:
            self.queries_observed += 1
            self._weights[mask] = self._weights.get(mask, 0.0) + 1.0
            if exemplar is not None and mask not in self._exemplars:
                self._exemplars[mask] = exemplar
            for pid in scanned_pids:
                heat = self._heat.get(pid)
                if heat is None:
                    heat = self._heat[pid] = PartitionHeat()
                heat.reads += 1
                heat.last_version = max(heat.last_version, version)
            self._bound_locked()

    def observe_write(self, pid: int, version: int = 0) -> None:
        """Record one modification landing in partition *pid*."""
        with self._lock:
            self.writes_observed += 1
            heat = self._heat.get(pid)
            if heat is None:
                heat = self._heat[pid] = PartitionHeat()
            heat.writes += 1
            heat.last_version = max(heat.last_version, version)

    def _bound_locked(self) -> None:
        self._since_decay += 1
        if self._since_decay >= self.decay_every:
            self._since_decay = 0
            decayed = {}
            for mask, weight in self._weights.items():
                weight *= self.decay
                if weight >= _WEIGHT_FLOOR:
                    decayed[mask] = weight
            self._weights = decayed
        while len(self._weights) > self.max_query_shapes:
            lightest = min(self._weights, key=self._weights.get)
            del self._weights[lightest]
            self._exemplars.pop(lightest, None)
            self.shapes_evicted += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def profile(self) -> dict[int, float]:
        """The current mask -> decayed-weight profile (a copy)."""
        with self._lock:
            return dict(self._weights)

    def exemplars(self) -> dict[int, tuple[tuple[str, ...], str]]:
        """mask -> (attributes, mode) exemplars for calibration probes."""
        with self._lock:
            return dict(self._exemplars)

    def total_weight(self) -> float:
        with self._lock:
            return sum(self._weights.values())

    def heat(self) -> dict[int, PartitionHeat]:
        """Per-partition heat (a copy of the records, not the dict)."""
        with self._lock:
            return {
                pid: PartitionHeat(h.reads, h.writes, h.last_version)
                for pid, h in self._heat.items()
            }

    def heat_as_dict(self) -> dict[str, dict[str, int]]:
        """Heat keyed by stringified pid — the ``stats`` wire shape."""
        with self._lock:
            return {
                str(pid): h.as_dict() for pid, h in sorted(self._heat.items())
            }

    def shift_from(self, reference: Mapping[int, float]) -> float:
        """Shift of the live profile away from a blessed *reference*."""
        return profile_shift(reference, self.profile())

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear_heat(self) -> None:
        """Forget per-partition heat (pids change on reorganization)."""
        with self._lock:
            self._heat.clear()

    def status(self) -> dict[str, float]:
        with self._lock:
            return {
                "queries_observed": self.queries_observed,
                "writes_observed": self.writes_observed,
                "distinct_shapes": len(self._weights),
                "shapes_evicted": self.shapes_evicted,
                "profile_weight": round(sum(self._weights.values()), 3),
                "hot_partitions": len(self._heat),
            }
