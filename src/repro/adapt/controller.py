"""The *act* stage: hysteresis-gated repartitioning decisions.

The :class:`AdaptationController` closes the loop.  It owns a
:class:`~repro.adapt.trace.WorkloadTraceStore` (fed by the table hook
and the server's read path), an
:class:`~repro.cost.calibrate.OnlineCalibrator` (fed by measured
executions and by bounded probe runs), and a decision pipeline run from
the server's background-maintenance slot — or standalone, driven by any
loop that calls :meth:`maybe_adapt`.

A decision walks gates in order, and every early exit is a typed,
observable "declined":

1. ``insufficient_traffic`` — fewer than ``min_observations`` queries.
2. ``budget_exhausted`` — the bounded action budget is spent.
3. ``cooldown`` — the last action is too recent.
4. ``baseline_established`` — the first eligible evaluation only
   blesses the current profile as the reference; the controller *never*
   acts before a measured shift, which is what makes a stationary
   workload provably reorganization-free.
5. ``no_shift`` — the live profile is within ``shift_threshold``
   (total-variation distance) of the blessed reference.
6. ``below_threshold`` — the advisor's best plan does not clear
   ``min_win_fraction`` of the current predicted cost (hysteresis).

Only then does it act: ``reorganize`` through
:meth:`~repro.table.partitioned.CinderellaTable.reorganize` under the
advisor's winning config, or ``merge`` through the maintenance merger.
After acting it re-blesses the reference profile and clears partition
heat (pids changed), so an unchanged workload immediately quiesces.

Every decision — acted or declined — increments a typed counter, emits
an ``adapt.decision`` event, and runs inside an ``adapt.evaluate`` span.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.adapt.advisor import (
    ADAPT_SIZE_FRACTIONS,
    ADAPT_WEIGHTS,
    AdaptationPlan,
    AdaptationReport,
    LayoutSketch,
    advise_adaptation,
)
from repro.adapt.trace import WorkloadTraceStore, profile_shift
from repro.cost.calibrate import CalibrationSample, OnlineCalibrator
from repro.cost.model import CostModel
from repro.metrics.telemetry import AdaptationCounters
from repro.obs import runtime as obs
from repro.query.executor import execute_union_all
from repro.query.query import AttributeQuery

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.executor import ExecutionResult
    from repro.table.partitioned import CinderellaTable

#: decision reasons, in gate order (docs and tests key off these)
DECLINED_REASONS = (
    "insufficient_traffic",
    "budget_exhausted",
    "cooldown",
    "baseline_established",
    "no_shift",
    "below_threshold",
)


@dataclass
class AdaptationConfig:
    """Tunables of the decision pipeline (see the module docstring)."""

    #: gate 1: queries observed before any decision is attempted
    min_observations: int = 64
    #: gate 5: total-variation distance that counts as a workload shift
    shift_threshold: float = 0.2
    #: gate 6: hysteresis — the best plan's amortized win must be at
    #: least this fraction of the current predicted per-query cost
    min_win_fraction: float = 0.1
    #: physical action cost is amortized over this many future queries
    horizon_queries: float = 2_000.0
    #: gate 3: seconds between actions
    cooldown_s: float = 30.0
    #: gate 2: lifetime action budget (0 = unbounded)
    max_actions: int = 0
    #: candidate grid handed to the advisor
    weights: tuple[float, ...] = ADAPT_WEIGHTS
    size_fractions: tuple[float, ...] = ADAPT_SIZE_FRACTIONS
    #: merge-candidate fill threshold
    merge_min_fill: float = 0.25
    #: candidate replays sample at most this many entities
    sample_limit: int = 10_000
    #: run calibration probes before advising (startup and on drift)
    calibrate: bool = True
    #: probe budget per calibration pass (each probe runs one pruned
    #: and one full scan of the table)
    max_probes: int = 6


@dataclass(frozen=True)
class AdaptationDecision:
    """One decision of the controller, acted or declined."""

    action: str  # "reorganize" | "merge" | "declined"
    reason: str
    shift: float
    queries_observed: int
    plan: Optional[AdaptationPlan] = None
    acted: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "action": self.action,
            "reason": self.reason,
            "shift": round(self.shift, 4),
            "queries_observed": self.queries_observed,
            "acted": self.acted,
            "plan": None if self.plan is None else self.plan.as_dict(),
        }


@dataclass
class _ControllerState:
    """Mutable decision state, guarded by the controller's lock."""

    reference: Optional[dict[int, float]] = None
    last_action_monotonic: Optional[float] = None
    actions_taken: int = 0
    decisions: deque = field(default_factory=lambda: deque(maxlen=64))


class AdaptationController:
    """Observe → predict → decide → act, with every stage observable."""

    def __init__(
        self,
        config: Optional[AdaptationConfig] = None,
        trace: Optional[WorkloadTraceStore] = None,
        model: Optional[CostModel] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else AdaptationConfig()
        self.trace = trace if trace is not None else WorkloadTraceStore()
        self.calibrator = OnlineCalibrator(base=model)
        self.counters = AdaptationCounters()
        self.clock = clock
        self.last_report: Optional[AdaptationReport] = None
        self._state = _ControllerState()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # observation (called from hot paths; must stay cheap)
    # ------------------------------------------------------------------
    def observe_execution(
        self, query: AttributeQuery, result: "ExecutionResult",
        table: "CinderellaTable",
    ) -> None:
        """Feed one embedded-path execution (the table hook calls this)."""
        mask = query.synopsis_mask(table.dictionary)
        pids: tuple[int, ...] = ()
        if result.plan is not None:
            pids = tuple(result.plan.branch_pids)
        self.trace.observe_query(
            mask, pids, version=table.catalog.version_clock,
            exemplar=(query.attributes, query.mode),
        )
        self.calibrator.observe(result.stats)

    def observe_query(
        self,
        mask: int,
        scanned_pids: tuple[int, ...] = (),
        version: int = 0,
        exemplar: Optional[tuple[tuple[str, ...], str]] = None,
    ) -> None:
        """Feed one served query (the server's snapshot read path)."""
        self.trace.observe_query(
            mask, scanned_pids, version=version, exemplar=exemplar
        )

    def observe_write(self, pid: int, version: int = 0) -> None:
        self.trace.observe_write(pid, version=version)

    # ------------------------------------------------------------------
    # the decision pipeline
    # ------------------------------------------------------------------
    def maybe_adapt(
        self, table: "CinderellaTable", act: bool = True
    ) -> AdaptationDecision:
        """Run one decision; apply the winning plan unless *act* is False.

        Must be called from the single-writer context (the server's
        maintenance slot under the write lock, or whatever owns the
        table in embedded use) — an action physically rebuilds heaps.
        """
        with self._lock:
            with obs.span("adapt.evaluate") as span:
                decision = self._decide_locked(table)
                if span.is_recording:
                    span.set("action", decision.action)
                    span.set("reason", decision.reason)
            if act and decision.action != "declined":
                decision = self._apply_locked(table, decision)
            self._record_locked(decision)
        return decision

    def evaluate(self, table: "CinderellaTable") -> AdaptationDecision:
        """Decide without acting (``repro adapt --dry-run``)."""
        return self.maybe_adapt(table, act=False)

    def _decide_locked(self, table: "CinderellaTable") -> AdaptationDecision:
        config = self.config
        state = self._state
        observed = self.trace.queries_observed
        if observed < config.min_observations:
            return AdaptationDecision(
                "declined", "insufficient_traffic", 0.0, observed
            )
        if 0 < config.max_actions <= state.actions_taken:
            return AdaptationDecision(
                "declined", "budget_exhausted", 0.0, observed
            )
        if (
            state.last_action_monotonic is not None
            and self.clock() - state.last_action_monotonic < config.cooldown_s
        ):
            return AdaptationDecision("declined", "cooldown", 0.0, observed)
        profile = self.trace.profile()
        if state.reference is None:
            # first eligible look: bless the current mix as the baseline.
            # Acting here would let a freshly started controller churn a
            # stationary workload; the contract is shift-triggered only.
            state.reference = profile
            return AdaptationDecision(
                "declined", "baseline_established", 0.0, observed
            )
        shift = profile_shift(state.reference, profile)
        obs.gauge_set(
            "repro_adapt_shift_score", shift,
            "Workload shift vs the blessed reference profile (TV distance)",
        )
        if shift < config.shift_threshold:
            return AdaptationDecision("declined", "no_shift", shift, observed)
        if config.calibrate:
            self._calibrate_locked(table)
        report = self._advise_locked(table, profile)
        self.last_report = report
        best = report.best
        if best.kind == "keep" or best.win_fraction < config.min_win_fraction:
            return AdaptationDecision(
                "declined", "below_threshold", shift, observed,
                plan=best if best.kind != "keep" else None,
            )
        return AdaptationDecision(
            best.kind, "predicted_win", shift, observed, plan=best
        )

    def _advise_locked(
        self, table: "CinderellaTable", profile: dict[int, float]
    ) -> AdaptationReport:
        config = self.config
        entity_masks = list(table.entity_masks().values())
        entities = len(entity_masks)
        avg_record_bytes = (
            table.data_bytes() / entities if entities else 64.0
        )
        records_per_page = max(
            1.0, table.page_size / max(avg_record_bytes, 1.0)
        )
        return advise_adaptation(
            entity_masks,
            LayoutSketch.from_catalog(table.catalog),
            profile,
            self.calibrator.model,
            current_config=table.config,
            weights=config.weights,
            size_fractions=config.size_fractions,
            merge_min_fill=config.merge_min_fill,
            records_per_page=records_per_page,
            avg_record_bytes=avg_record_bytes,
            sample_limit=config.sample_limit,
            horizon_queries=config.horizon_queries,
        )

    def _calibrate_locked(self, table: "CinderellaTable") -> None:
        """Probe the live table and refit the model when it has drifted.

        Each probe replays one traced query shape twice — once through
        the pruned plan, once as the naive full scan — so the fit sees
        both ends of the feature range on this very host.  Sweeps repeat
        (bounded) until the calibrator's fit window has enough samples:
        on the serve path queries come pre-serialized from snapshots, so
        probes are the *only* measured executions the fit ever sees.
        """
        calibrator = self.calibrator
        if calibrator.report is not None and not calibrator.needs_refit():
            return
        shapes = list(self.trace.exemplars().values())[: self.config.max_probes]
        if shapes and len(table):
            heaps = {p.pid: table.heap_of(p.pid) for p in table.catalog}
            with obs.span("adapt.calibrate", probes=len(shapes)):
                for _sweep in range(4):
                    for attributes, mode in shapes:
                        query = AttributeQuery(attributes, mode)
                        pruned = execute_union_all(
                            table.plan(query), heaps, table.dictionary,
                            catalog=table.catalog,
                        )
                        calibrator.observe_sample(
                            CalibrationSample.from_stats(pruned.stats)
                        )
                        naive = table.execute_naive(query)
                        calibrator.observe_sample(
                            CalibrationSample.from_stats(naive.stats)
                        )
                    if calibrator.sample_count >= calibrator.min_samples:
                        break
        if calibrator.maybe_refit():
            self.counters.calibration_refits += 1
            report = self.calibrator.report
            obs.event(
                "adapt.calibrated",
                samples=report.samples if report else 0,
                r2=round(report.r2, 3) if report else 0.0,
            )

    def _apply_locked(
        self, table: "CinderellaTable", decision: AdaptationDecision
    ) -> AdaptationDecision:
        plan = decision.plan
        assert plan is not None
        state = self._state
        profile = self.trace.profile()
        with obs.span("adapt.apply", kind=decision.action) as span:
            if decision.action == "reorganize":
                table.reorganize(
                    config=plan.config, query_masks=list(profile)
                )
            else:  # merge
                table.merge_small_partitions(
                    min_fill=self.config.merge_min_fill
                )
            if span.is_recording:
                span.set("partitions", table.partition_count())
        state.actions_taken += 1
        state.last_action_monotonic = self.clock()
        # re-bless: the mix that justified this layout is the new
        # reference, so an unchanged workload immediately quiesces
        state.reference = profile
        self.trace.clear_heat()  # pids changed under the action
        return AdaptationDecision(
            decision.action, decision.reason, decision.shift,
            decision.queries_observed, plan=plan, acted=True,
        )

    def _record_locked(self, decision: AdaptationDecision) -> None:
        counters = self.counters
        counters.decisions_total += 1
        if decision.acted:
            if decision.action == "reorganize":
                counters.acted_reorganize += 1
            else:
                counters.acted_merge += 1
        elif decision.action == "declined":
            attr = f"declined_{decision.reason}"
            setattr(counters, attr, getattr(counters, attr) + 1)
        self._state.decisions.append(decision)
        obs.event(
            "adapt.decision",
            action=decision.action,
            reason=decision.reason,
            shift=round(decision.shift, 3),
            queries=decision.queries_observed,
            win_fraction=(
                round(decision.plan.win_fraction, 3)
                if decision.plan is not None else 0.0
            ),
        )

    # ------------------------------------------------------------------
    # exposure
    # ------------------------------------------------------------------
    @property
    def actions_taken(self) -> int:
        return self._state.actions_taken

    def decisions(self) -> list[AdaptationDecision]:
        """Recent decisions, oldest first (bounded)."""
        with self._lock:
            return list(self._state.decisions)

    def bind_table(self, table: "CinderellaTable") -> None:
        """Install this controller as the table's observation hook."""
        table.adapt = self

    def status(self) -> dict[str, Any]:
        """The ``stats`` verb's adaptation document."""
        with self._lock:
            state = self._state
            reference = state.reference
            last = state.decisions[-1] if state.decisions else None
        shift = (
            self.trace.shift_from(reference) if reference is not None else None
        )
        return {
            "trace": self.trace.status(),
            "shift": None if shift is None else round(shift, 4),
            "actions_taken": state.actions_taken,
            "calibration": self.calibrator.status(),
            "counters": self.counters.as_dict(),
            "last_decision": None if last is None else last.as_dict(),
        }
