"""The *predict/decide* stages: candidate layouts ranked by predicted cost.

Two advisors live here:

* :func:`advise` — the offline B/w grid advisor (moved from
  ``repro.tuning.advisor``, which now re-exports it): trial
  partitionings over a data sample scored by Definition 1 efficiency
  minus a partition-count penalty.  The DBA's one-shot tool.
* :func:`advise_adaptation` — the online advisor of the closed loop: it
  prices the *current* layout and a set of candidate layouts against
  the observed query profile using the (calibrated) cost model, and
  emits ranked :class:`AdaptationPlan`\\ s whose predicted win already
  amortizes the physical cost of getting there.

The online advisor works on :class:`LayoutSketch`\\ es — per-partition
``(mask, entities, size)`` triples — because that is all the cost model
needs: Definition 1's numerator (the relevant data) is *layout
independent*, so ranking layouts only requires predicting what each one
*reads*.  Candidate layouts come from the existing rating machinery: a
bounded sample of the live entity masks is replayed through a fresh
:class:`~repro.core.partitioner.CinderellaPartitioner` under each
candidate ``(w, B)``, so splits happen exactly as they would online; a
merge candidate simulates the maintenance merger's bin-packing at the
synopsis level.

The recommendation contract (pinned by a Hypothesis property): the best
plan is either ``keep`` or has a strictly positive predicted win — the
advisor never recommends a plan whose predicted cost, including the
amortized reorganization, exceeds the current layout's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency
from repro.core.partitioner import CinderellaPartitioner
from repro.cost.model import CostModel
from repro.query.executor import ExecutionStats

#: default candidate grids, spanning the paper's studied ranges
DEFAULT_WEIGHTS = (0.1, 0.2, 0.3, 0.4, 0.5)
DEFAULT_SIZE_FRACTIONS = (0.01, 0.025, 0.05, 0.25)

#: candidate grid of the online advisor — tighter than the offline
#: grid because every candidate costs a sample replay under the lock
ADAPT_WEIGHTS = (0.2, 0.3, 0.5)
ADAPT_SIZE_FRACTIONS = (0.02, 0.05, 0.25)


# ----------------------------------------------------------------------
# the offline grid advisor (absorbed from repro.tuning.advisor)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Trial:
    """One evaluated candidate configuration."""

    weight: float
    max_partition_size: float
    efficiency: float
    partition_count: int
    score: float


@dataclass(frozen=True)
class AdvisorReport:
    """The recommendation plus every trial behind it."""

    recommended: CinderellaConfig
    trials: tuple[Trial, ...]
    sample_size: int
    rationale: str

    def best_trial(self) -> Trial:
        return max(self.trials, key=lambda t: t.score)


def advise(
    entity_masks: Sequence[int],
    query_masks: Optional[Sequence[int]] = None,
    weights: Sequence[float] = DEFAULT_WEIGHTS,
    size_fractions: Sequence[float] = DEFAULT_SIZE_FRACTIONS,
    sample_limit: int = 5_000,
    partition_penalty: float = 0.5,
) -> AdvisorReport:
    """Recommend a :class:`CinderellaConfig` for a data set.

    Args:
        entity_masks: synopsis masks of the (sampled) entities.
        query_masks: the workload, when known; without one, every
            instantiated attribute becomes a single-attribute probe query
            (the workload-agnostic reading of Definition 1).
        weights: candidate ``w`` values.
        size_fractions: candidate ``B`` values as fractions of the data
            set size (so the advice scales with the table).
        sample_limit: trials run on at most this many entities.
        partition_penalty: score deduction proportional to the
            partition-to-entity ratio — the stand-in for catalog scan and
            UNION ALL overhead that pure efficiency ignores (the paper:
            smaller partitions always raise efficiency but "increase the
            total number of partitions and thereby the overhead").

    Returns:
        An :class:`AdvisorReport` with the winning configuration and all
        trial scores, highest first.
    """
    if not entity_masks:
        raise ValueError("cannot advise on an empty data set")
    if not weights or not size_fractions:
        raise ValueError("need at least one candidate weight and size")
    sample = list(entity_masks[:sample_limit])

    if query_masks is None:
        universe = 0
        for mask in sample:
            universe |= mask
        probes = []
        remaining = universe
        while remaining:
            low = remaining & -remaining
            probes.append(low)
            remaining ^= low
        query_masks = probes

    trials: list[Trial] = []
    total = len(entity_masks)
    for weight in weights:
        for fraction in size_fractions:
            max_size = max(2.0, round(fraction * total))
            trial_size = max(2.0, round(fraction * len(sample)))
            partitioner = CinderellaPartitioner(
                CinderellaConfig(max_partition_size=trial_size, weight=weight)
            )
            for eid, mask in enumerate(sample):
                partitioner.insert(eid, mask)
            efficiency = catalog_efficiency(partitioner.catalog, query_masks)
            count = len(partitioner.catalog)
            score = efficiency - partition_penalty * count / len(sample)
            trials.append(
                Trial(
                    weight=weight,
                    max_partition_size=max_size,
                    efficiency=efficiency,
                    partition_count=count,
                    score=score,
                )
            )
    trials.sort(key=lambda t: (-t.score, t.max_partition_size, t.weight))
    best = trials[0]
    rationale = (
        f"best of {len(trials)} trials on a {len(sample)}-entity sample: "
        f"efficiency {best.efficiency:.3f} with {best.partition_count} "
        f"partitions (score {best.score:.3f}); paper guidance: weights "
        f"0.2-0.5 are reasonable, lower B favours selective workloads"
    )
    return AdvisorReport(
        recommended=CinderellaConfig(
            max_partition_size=best.max_partition_size, weight=best.weight
        ),
        trials=tuple(trials),
        sample_size=len(sample),
        rationale=rationale,
    )


# ----------------------------------------------------------------------
# the online cost-based advisor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayoutSketch:
    """A layout reduced to what the cost model needs.

    ``partitions`` holds one ``(mask, entities, size)`` triple per
    partition.  ``scale`` multiplies entity counts when the sketch was
    built from a sample replay (the candidate has ``entities * scale``
    records once the whole table is reorganized under it).
    """

    partitions: tuple[tuple[int, int, float], ...]
    scale: float = 1.0

    @classmethod
    def from_catalog(cls, catalog, scale: float = 1.0) -> "LayoutSketch":
        return cls(
            partitions=tuple(
                (p.mask, len(p), p.total_size) for p in catalog
            ),
            scale=scale,
        )

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    @property
    def entity_count(self) -> float:
        return self.scale * sum(n for _mask, n, _size in self.partitions)


def predicted_workload_ms(
    sketch: LayoutSketch,
    profile: Mapping[int, float],
    model: CostModel,
    records_per_page: float = 64.0,
) -> float:
    """Predicted cost of running the traced workload once over a layout.

    Per profiled mask (weight = observed multiplicity): the surviving
    partitions are those whose synopsis overlaps the mask (``any``-mode
    pruning — the conservative bound for ``all`` queries), each read in
    full.  Rows returned are layout-independent (Definition 1's
    numerator), so they cancel in any layout comparison and are priced
    as zero here.
    """
    if not sketch.partitions:
        return 0.0
    total_ms = 0.0
    scale = sketch.scale
    for mask, weight in profile.items():
        if weight <= 0.0:
            continue
        entities = 0
        pages = 0
        branches = 0
        for part_mask, count, _size in sketch.partitions:
            if part_mask & mask:
                branches += 1
                scaled = count * scale
                entities += scaled
                pages += math.ceil(scaled / max(records_per_page, 1.0))
        stats = ExecutionStats(
            partitions_total=len(sketch.partitions),
            partitions_scanned=branches,
            entities_read=int(entities),
            pages_read=pages,
            union_branches=branches,
        )
        total_ms += weight * model.query_time_ms(stats)
    return total_ms


@dataclass(frozen=True)
class AdaptationPlan:
    """One candidate action with its predicted economics.

    ``predicted_current_ms`` / ``predicted_plan_ms`` are per *average
    traced query* (the workload-pass prediction divided by the profile's
    total weight); ``predicted_win_ms`` already subtracts the physical
    cost of the action amortized over ``horizon_queries``.
    """

    kind: str  # "keep" | "reorganize" | "merge"
    config: Optional[CinderellaConfig]
    predicted_current_ms: float
    predicted_plan_ms: float
    reorg_cost_ms: float
    predicted_win_ms: float
    win_fraction: float
    partitions_before: int
    partitions_after: int
    rationale: str

    def as_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "weight": None if self.config is None else self.config.weight,
            "max_partition_size": (
                None if self.config is None
                else self.config.max_partition_size
            ),
            "predicted_current_ms": round(self.predicted_current_ms, 4),
            "predicted_plan_ms": round(self.predicted_plan_ms, 4),
            "reorg_cost_ms": round(self.reorg_cost_ms, 2),
            "predicted_win_ms": round(self.predicted_win_ms, 4),
            "win_fraction": round(self.win_fraction, 4),
            "partitions_before": self.partitions_before,
            "partitions_after": self.partitions_after,
            "rationale": self.rationale,
        }


@dataclass(frozen=True)
class AdaptationReport:
    """Ranked plans; ``best`` is never a predicted loss."""

    best: AdaptationPlan
    plans: tuple[AdaptationPlan, ...]
    evaluated: int
    profile_shapes: int

    def as_dict(self) -> dict[str, object]:
        return {
            "best": self.best.as_dict(),
            "plans": [plan.as_dict() for plan in self.plans],
            "evaluated": self.evaluated,
            "profile_shapes": self.profile_shapes,
        }


def _merge_sketch(
    current: LayoutSketch, max_size: float, min_fill: float
) -> tuple[LayoutSketch, int]:
    """Simulate the maintenance merger's bin-packing on a sketch.

    Returns the merged sketch plus the number of entities that would
    move (everything except the largest member of each bin).
    """
    threshold = min_fill * max_size
    underfilled = [
        entry for entry in current.partitions if entry[2] < threshold
    ]
    kept = [entry for entry in current.partitions if entry[2] >= threshold]
    if len(underfilled) < 2:
        return current, 0
    underfilled.sort(key=lambda entry: entry[2])
    bins: list[list[tuple[int, int, float]]] = []
    for entry in underfilled:
        placed = False
        for group in bins:
            if sum(e[2] for e in group) + entry[2] <= max_size:
                group.append(entry)
                placed = True
                break
        if not placed:
            bins.append([entry])
    moved = 0
    merged = list(kept)
    for group in bins:
        if len(group) == 1:
            merged.append(group[0])
            continue
        mask = 0
        count = 0
        size = 0.0
        for m, n, s in group:
            mask |= m
            count += n
            size += s
        largest = max(group, key=lambda e: e[1])
        moved += count - largest[1]
        merged.append((mask, count, size))
    return LayoutSketch(tuple(merged), scale=current.scale), moved


def advise_adaptation(
    entity_masks: Sequence[int],
    current: LayoutSketch,
    profile: Mapping[int, float],
    model: Optional[CostModel] = None,
    *,
    current_config: Optional[CinderellaConfig] = None,
    weights: Sequence[float] = ADAPT_WEIGHTS,
    size_fractions: Sequence[float] = ADAPT_SIZE_FRACTIONS,
    merge_min_fill: float = 0.25,
    records_per_page: float = 64.0,
    avg_record_bytes: float = 64.0,
    sample_limit: int = 10_000,
    horizon_queries: float = 2_000.0,
) -> AdaptationReport:
    """Rank candidate layouts against the current one by predicted cost.

    Args:
        entity_masks: synopsis masks of the live entities (candidate
            layouts are built by replaying a bounded sample of these
            through the rating machinery).
        current: sketch of the live layout.
        profile: observed mask -> weight query profile (the trace
            store's :meth:`~repro.adapt.trace.WorkloadTraceStore.profile`).
        model: the (calibrated) cost model; defaults to the priors.
        current_config: the live configuration — used to skip the
            no-op candidate and to price the merge candidate.
        merge_min_fill: fill threshold of the merge candidate.
        records_per_page: page-granularity estimate for the scan term.
        avg_record_bytes: mean serialized record size, for move costs.
        sample_limit: candidate replays use at most this many entities.
        horizon_queries: the physical action cost is amortized over this
            many future queries before being compared to the win.

    Returns:
        An :class:`AdaptationReport`; ``best.kind == "keep"`` when no
        candidate clears its amortized cost.
    """
    if model is None:
        model = CostModel()
    total = len(entity_masks)
    total_weight = sum(w for w in profile.values() if w > 0.0)
    current_pass_ms = predicted_workload_ms(
        current, profile, model, records_per_page
    )
    per_query = (
        current_pass_ms / total_weight if total_weight > 0.0 else 0.0
    )
    keep = AdaptationPlan(
        kind="keep",
        config=current_config,
        predicted_current_ms=per_query,
        predicted_plan_ms=per_query,
        reorg_cost_ms=0.0,
        predicted_win_ms=0.0,
        win_fraction=0.0,
        partitions_before=current.partition_count,
        partitions_after=current.partition_count,
        rationale="no candidate clears its amortized reorganization cost",
    )
    if total == 0 or total_weight <= 0.0 or per_query <= 0.0:
        return AdaptationReport(
            best=keep, plans=(keep,), evaluated=0,
            profile_shapes=len(profile),
        )

    winners: list[AdaptationPlan] = []
    evaluated = 0

    def consider(
        kind: str,
        sketch: LayoutSketch,
        config: Optional[CinderellaConfig],
        entities_moved: float,
        partitions_created: int,
        note: str,
    ) -> None:
        nonlocal evaluated
        evaluated += 1
        plan_pass_ms = predicted_workload_ms(
            sketch, profile, model, records_per_page
        )
        plan_per_query = plan_pass_ms / total_weight
        action_ms = (
            model.record_move_ms * entities_moved
            + model.byte_move_ms * entities_moved * avg_record_bytes
            + model.partition_create_ms * partitions_created
        )
        amortized = action_ms / max(horizon_queries, 1.0)
        win = per_query - plan_per_query - amortized
        if win <= 0.0:
            return
        winners.append(AdaptationPlan(
            kind=kind,
            config=config,
            predicted_current_ms=per_query,
            predicted_plan_ms=plan_per_query + amortized,
            reorg_cost_ms=action_ms,
            predicted_win_ms=win,
            win_fraction=win / per_query,
            partitions_before=current.partition_count,
            partitions_after=sketch.partition_count,
            rationale=note,
        ))

    sample = list(entity_masks[:sample_limit])
    scale = total / len(sample)
    skip = (
        None if current_config is None
        else (current_config.weight, current_config.max_partition_size)
    )
    for weight in weights:
        for fraction in size_fractions:
            max_size = max(2.0, round(fraction * total))
            if skip is not None and skip == (weight, max_size):
                continue
            trial_size = max(2.0, round(fraction * len(sample)))
            partitioner = CinderellaPartitioner(
                CinderellaConfig(
                    max_partition_size=trial_size, weight=weight
                )
            )
            for eid, mask in enumerate(sample):
                partitioner.insert(eid, mask)
            sketch = LayoutSketch.from_catalog(
                partitioner.catalog, scale=scale
            )
            consider(
                "reorganize",
                sketch,
                CinderellaConfig(
                    max_partition_size=max_size, weight=weight
                ),
                entities_moved=float(total),
                partitions_created=sketch.partition_count,
                note=(
                    f"replayed {len(sample)}/{total} entities under "
                    f"w={weight}, B={max_size:g}: "
                    f"{sketch.partition_count} partitions"
                ),
            )
    if current_config is not None:
        merged, moved = _merge_sketch(
            current, current_config.max_partition_size, merge_min_fill
        )
        if moved:
            consider(
                "merge",
                merged,
                current_config,
                entities_moved=float(moved),
                partitions_created=0,
                note=(
                    f"merge under-filled partitions: "
                    f"{current.partition_count} -> {merged.partition_count}"
                ),
            )

    winners.sort(key=lambda plan: -plan.predicted_win_ms)
    plans = tuple(winners) + (keep,)
    return AdaptationReport(
        best=plans[0],
        plans=plans,
        evaluated=evaluated,
        profile_shapes=len(profile),
    )
