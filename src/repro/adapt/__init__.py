"""Closed-loop, cost-model-driven adaptive repartitioning.

Cinderella's online rating reacts to *inserts*; this package reacts to
the *workload*.  It closes the observe → predict → decide → act loop
around a running table:

* :mod:`repro.adapt.trace` — **observe**: sample live query/insert
  traffic into a bounded, decayed per-mask profile plus per-partition
  heat, and measure workload shift as a total-variation distance.
* :mod:`repro.cost.calibrate` — **predict** (the model half): fit the
  cost model's scan constants from observed latencies, at startup and
  again when prediction error drifts.
* :mod:`repro.adapt.advisor` — **predict** (the search half): sketch
  candidate layouts (alternative ``B``/``w`` settings replayed through
  the rating machinery, merge plans) and price each against the traced
  profile under the calibrated model, emitting a ranked
  :class:`~repro.adapt.advisor.AdaptationPlan`.
* :mod:`repro.adapt.controller` — **decide + act**: hysteresis and
  cooldown gates around :meth:`~repro.table.partitioned.CinderellaTable
  .reorganize`, with every decision — acted or declined — observable.

The offline grid advisor that previously lived in ``repro.tuning``
(``advise``) is part of this package now; ``repro.tuning`` re-exports
it unchanged.
"""

from repro.adapt.advisor import (
    AdaptationPlan,
    AdaptationReport,
    AdvisorReport,
    LayoutSketch,
    Trial,
    advise,
    advise_adaptation,
    predicted_workload_ms,
)
from repro.adapt.controller import (
    AdaptationConfig,
    AdaptationController,
    AdaptationDecision,
)
from repro.adapt.trace import PartitionHeat, WorkloadTraceStore, profile_shift

__all__ = [
    "AdaptationConfig",
    "AdaptationController",
    "AdaptationDecision",
    "AdaptationPlan",
    "AdaptationReport",
    "AdvisorReport",
    "LayoutSketch",
    "PartitionHeat",
    "Trial",
    "WorkloadTraceStore",
    "advise",
    "advise_adaptation",
    "predicted_workload_ms",
    "profile_shift",
]
