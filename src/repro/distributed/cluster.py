"""Simulated shared-nothing cluster hosting partitions on nodes.

Section II names distributed databases as the most obvious home of the
online partitioning problem: "partitions are distributed among the
nodes".  This module simulates that deployment level: a fixed set of
nodes, each hosting whole partition *copies*, with capacity-balanced,
replica-aware placement.  The simulation is about *placement,
communication, and availability*, not storage — partition contents stay
in the coordinator's tables; the cluster tracks which nodes must be
contacted for which partition, how much data lives where, and which
nodes are currently healthy.

Fault model (see :mod:`repro.distributed.failures`):

* ``crash_node`` flips a node to DOWN.  The placement map is *not*
  rewritten — the coordinator only learns about the crash when requests
  time out, exactly like a real system.  The node's copies are treated
  as lost the moment the repair pass (:meth:`re_replicate`) runs.
* ``recover_node`` brings a node back.  If the repair pass already
  declared its copies dead, it rejoins empty; otherwise it resumes
  serving the copies it held (disk survived the crash).
* ``degrade_node`` keeps the node serving, but slower and optionally
  flaky (it times out on every k-th request).
* :meth:`re_replicate` is the repair/rebalance pass: it purges copies
  on DOWN nodes and then restores every partition to the reachable
  replication target ``min(k, live nodes)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.failures import NodeState
from repro.distributed.replication import choose_replica_targets

#: tolerance for floating-point load accounting
_EPSILON = 1e-9


class PlacementError(RuntimeError):
    """Raised on inconsistent placement operations."""


@dataclass
class Node:
    """One cluster node: hosted partition copies, load, and health."""

    node_id: int
    partitions: set[int] = field(default_factory=set)
    load: float = 0.0
    state: NodeState = NodeState.UP
    #: latency multiplier while DEGRADED (1.0 = full speed)
    slowdown: float = 1.0
    #: while DEGRADED, time out on every k-th request (0 = never)
    drop_every: int = 0
    #: requests this node has received (drives deterministic flakiness)
    requests_served: int = 0

    @property
    def is_up(self) -> bool:
        """True when the node answers requests (UP or DEGRADED)."""
        return self.state is not NodeState.DOWN


class SimulatedCluster:
    """Nodes plus least-loaded, replica-aware placement of partitions.

    Placement policy: a new partition's ``min(k, live nodes)`` copies
    land on the currently least-loaded distinct live nodes (ties broken
    by node id); the first copy is the primary.  Growing or shrinking a
    partition adjusts every hosting node's load in place; partitions
    never migrate unless dropped and re-placed (Cinderella's splits do
    exactly that) or re-replicated after a crash.
    """

    def __init__(self, node_count: int, replication_factor: int = 1) -> None:
        if node_count < 1:
            raise ValueError("a cluster needs at least one node")
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.nodes = [Node(node_id) for node_id in range(node_count)]
        self.replication_factor = replication_factor
        #: partition id -> hosting node ids, primary first
        self._replica_nodes: dict[int, list[int]] = {}
        self._sizes: dict[int, float] = {}
        #: partitions that lost every copy (awaiting re-replication)
        self._unhosted: set[int] = set()

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def partition_count(self) -> int:
        return len(self._sizes)

    def partition_ids(self) -> tuple[int, ...]:
        return tuple(self._sizes)

    def up_nodes(self) -> list[Node]:
        """Nodes currently answering requests (UP or DEGRADED)."""
        return [node for node in self.nodes if node.is_up]

    def node_of(self, pid: int) -> int:
        """The partition's primary node (may currently be DOWN)."""
        self._require_placed(pid)
        hosts = self._replica_nodes.get(pid)
        if not hosts:
            raise PlacementError(f"partition {pid} has no hosted copy")
        return hosts[0]

    def replica_nodes(self, pid: int) -> tuple[int, ...]:
        """All hosting nodes, primary first (empty if every copy died)."""
        self._require_placed(pid)
        return tuple(self._replica_nodes.get(pid, ()))

    def live_replica_nodes(self, pid: int) -> tuple[int, ...]:
        """Hosting nodes that currently answer requests."""
        self._require_placed(pid)
        return tuple(
            nid for nid in self._replica_nodes.get(pid, ())
            if self.nodes[nid].is_up
        )

    def unhosted_partitions(self) -> frozenset[int]:
        """Partitions whose every copy was purged (need re-replication)."""
        return frozenset(self._unhosted)

    def _require_placed(self, pid: int) -> None:
        if pid not in self._sizes:
            raise PlacementError(f"partition {pid} is not placed")

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place_partition(self, pid: int, size: float = 0.0) -> int:
        """Place a new partition's copies on the least-loaded live nodes;
        return the primary's node id."""
        if pid in self._sizes:
            raise PlacementError(f"partition {pid} already placed")
        k = min(self.replication_factor, len(self.up_nodes()))
        targets = choose_replica_targets(self.nodes, k)
        if not targets:
            raise PlacementError("no live node available for placement")
        for nid in targets:
            node = self.nodes[nid]
            node.partitions.add(pid)
            node.load += size
        self._replica_nodes[pid] = list(targets)
        self._sizes[pid] = size
        return targets[0]

    def drop_partition(self, pid: int) -> None:
        self._require_placed(pid)
        size = self._sizes.pop(pid)
        for nid in self._replica_nodes.pop(pid, ()):
            node = self.nodes[nid]
            node.partitions.discard(pid)
            node.load = max(0.0, node.load - size)
        self._unhosted.discard(pid)

    def resize_partition(self, pid: int, delta: float) -> None:
        """Adjust a partition's size contribution on all hosting nodes.

        Rejects (with :class:`PlacementError`) any delta that would
        drive the partition's tracked size or a hosting node's load
        negative — silently corrupted load accounting is worse than a
        loud failure.
        """
        self._require_placed(pid)
        new_size = self._sizes[pid] + delta
        if new_size < -_EPSILON:
            raise PlacementError(
                f"resize of partition {pid} by {delta} would make its "
                f"tracked size negative ({new_size})"
            )
        hosts = self._replica_nodes.get(pid, ())
        for nid in hosts:
            if self.nodes[nid].load + delta < -_EPSILON:
                raise PlacementError(
                    f"resize of partition {pid} by {delta} would make node "
                    f"{nid}'s load negative"
                )
        for nid in hosts:
            node = self.nodes[nid]
            node.load = max(0.0, node.load + delta)
        self._sizes[pid] = max(0.0, new_size)

    def partition_size(self, pid: int) -> float:
        self._require_placed(pid)
        return self._sizes[pid]

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def _require_node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except IndexError:
            raise PlacementError(f"no node {node_id} in the cluster") from None

    def crash_node(self, node_id: int) -> None:
        """Mark a node DOWN.  The placement map stays as-is: queries
        discover the crash via timeouts until :meth:`re_replicate`
        declares the node's copies dead."""
        node = self._require_node(node_id)
        node.state = NodeState.DOWN
        node.slowdown = 1.0
        node.drop_every = 0

    def recover_node(self, node_id: int) -> None:
        """Bring a node back to full health.

        Copies it still appears to host (crash without an intervening
        repair pass) resume serving; if the repair pass purged them the
        node simply rejoins empty.
        """
        node = self._require_node(node_id)
        node.state = NodeState.UP
        node.slowdown = 1.0
        node.drop_every = 0

    def degrade_node(
        self, node_id: int, slowdown: float = 4.0, drop_every: int = 0
    ) -> None:
        """Mark a node DEGRADED: it answers *slowdown* times slower and
        times out on every *drop_every*-th request (0 = never)."""
        node = self._require_node(node_id)
        if node.state is NodeState.DOWN:
            raise PlacementError(f"cannot degrade DOWN node {node_id}")
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1.0")
        node.state = NodeState.DEGRADED
        node.slowdown = slowdown
        node.drop_every = drop_every

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    def under_replicated(self) -> dict[int, int]:
        """Partitions below the reachable target; pid -> missing copies."""
        target = min(self.replication_factor, len(self.up_nodes()))
        deficits: dict[int, int] = {}
        for pid in self._sizes:
            live = len(self.live_replica_nodes(pid))
            if live < target:
                deficits[pid] = target - live
        return deficits

    def re_replicate(self) -> list[tuple[int, int]]:
        """The repair/rebalance pass; returns the copies it created.

        First purges every copy hosted on a DOWN node (those copies are
        now considered lost — a node recovering later rejoins empty),
        then walks partitions in id order and adds copies on the
        least-loaded live nodes until each one reaches the reachable
        target ``min(k, live nodes)``.  Deterministic: same cluster
        state in, same copies out — the write-ahead log replays this
        pass by re-running it.
        """
        for node in self.nodes:
            if node.state is not NodeState.DOWN or not node.partitions:
                continue
            for pid in sorted(node.partitions):
                hosts = self._replica_nodes.get(pid)
                if hosts is not None and node.node_id in hosts:
                    hosts.remove(node.node_id)
                    if not hosts:
                        del self._replica_nodes[pid]
                        self._unhosted.add(pid)
            node.partitions.clear()
            node.load = 0.0
        created: list[tuple[int, int]] = []
        target = min(self.replication_factor, len(self.up_nodes()))
        for pid in sorted(self._sizes):
            hosts = self._replica_nodes.get(pid)
            if hosts is None:
                hosts = []
            while len(hosts) < target:
                picks = choose_replica_targets(self.nodes, 1, frozenset(hosts))
                if not picks:
                    break
                nid = picks[0]
                node = self.nodes[nid]
                node.partitions.add(pid)
                node.load += self._sizes[pid]
                hosts.append(nid)
                created.append((pid, nid))
            if hosts:
                self._replica_nodes[pid] = hosts
                self._unhosted.discard(pid)
        return created

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def loads(self) -> list[float]:
        return [node.load for node in self.nodes]

    def imbalance(self) -> float:
        """max/mean load ratio over live nodes — 1.0 is perfectly balanced."""
        live = self.up_nodes() or self.nodes
        loads = [node.load for node in live]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def nodes_for_partitions(self, pids) -> set[int]:
        """The set of primary nodes a query over these partitions contacts."""
        return {self.node_of(pid) for pid in pids}
