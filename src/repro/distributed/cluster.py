"""Simulated shared-nothing cluster hosting partitions on nodes.

Section II names distributed databases as the most obvious home of the
online partitioning problem: "partitions are distributed among the
nodes".  This module simulates that deployment level: a fixed set of
nodes, each hosting whole partitions, with capacity-balanced placement.
The simulation is about *placement and communication*, not storage —
partition contents stay in the coordinator's tables; the cluster tracks
which node must be contacted for which partition and how much data lives
where.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PlacementError(RuntimeError):
    """Raised on inconsistent placement operations."""


@dataclass
class Node:
    """One cluster node: hosted partitions and their total size."""

    node_id: int
    partitions: set[int] = field(default_factory=set)
    load: float = 0.0


class SimulatedCluster:
    """Nodes plus least-loaded placement of partitions.

    Placement policy: a new partition lands on the currently least-loaded
    node (ties broken by node id) — the standard balanced-placement
    baseline of distributed stores.  Growing or shrinking a partition
    adjusts its node's load in place; partitions never migrate unless
    dropped and re-placed (Cinderella's splits do exactly that).
    """

    def __init__(self, node_count: int) -> None:
        if node_count < 1:
            raise ValueError("a cluster needs at least one node")
        self.nodes = [Node(node_id) for node_id in range(node_count)]
        self._node_of: dict[int, int] = {}
        self._sizes: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def partition_count(self) -> int:
        return len(self._node_of)

    def node_of(self, pid: int) -> int:
        try:
            return self._node_of[pid]
        except KeyError:
            raise PlacementError(f"partition {pid} is not placed") from None

    def place_partition(self, pid: int, size: float = 0.0) -> int:
        """Place a new partition on the least-loaded node; return node id."""
        if pid in self._node_of:
            raise PlacementError(f"partition {pid} already placed")
        node = min(self.nodes, key=lambda n: (n.load, n.node_id))
        node.partitions.add(pid)
        node.load += size
        self._node_of[pid] = node.node_id
        self._sizes[pid] = size
        return node.node_id

    def drop_partition(self, pid: int) -> None:
        node = self.nodes[self.node_of(pid)]
        node.partitions.discard(pid)
        node.load -= self._sizes.pop(pid)
        del self._node_of[pid]

    def resize_partition(self, pid: int, delta: float) -> None:
        """Adjust a partition's size contribution on its node."""
        self.nodes[self.node_of(pid)].load += delta
        self._sizes[pid] += delta

    def partition_size(self, pid: int) -> float:
        self.node_of(pid)  # raise if unplaced
        return self._sizes[pid]

    def loads(self) -> list[float]:
        return [node.load for node in self.nodes]

    def imbalance(self) -> float:
        """max/mean load ratio — 1.0 is perfectly balanced."""
        loads = self.loads()
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def nodes_for_partitions(self, pids) -> set[int]:
        """The set of nodes a query over these partitions must contact."""
        return {self.node_of(pid) for pid in pids}
