"""A distributed universal store: Cinderella partitions across nodes.

Binds a logical partitioner (Cinderella or a baseline) to a
:class:`~repro.distributed.cluster.SimulatedCluster`:

* every partition the partitioner creates is placed on the least-loaded
  live nodes (``replication_factor`` copies on distinct nodes); drops
  free the nodes; size changes (inserts, deletes, splits, moves) adjust
  node loads;
* queries are routed by synopsis pruning — only nodes hosting a
  non-prunable partition are contacted, the distributed payoff of the
  paper's Section II setting;
* routing is *failover-aware*: a request to a crashed or flaky node
  times out (cost accounted by the :class:`NetworkCostModel`) and is
  retried against the next replica with exponential backoff.  Only when
  every copy of a needed partition is unreachable does the query
  degrade — explicitly, via ``degraded=True`` and the unreachable
  partition set in its stats — rather than silently losing rows;
* every state-mutating operation can be journaled to a
  :class:`~repro.storage.wal.WriteAheadLog`, so a crashed coordinator
  recovers the exact pre-crash catalog and placement from
  ``snapshot + WAL`` (see :meth:`DistributedUniversalStore.checkpoint`
  and :meth:`DistributedUniversalStore.recover`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.failures import FailureEvent, NodeState
from repro.metrics.telemetry import FaultToleranceCounters, RobustnessCounters
from repro.obs import runtime as obs


@dataclass(frozen=True)
class NetworkCostModel:
    """Latency model for coordinator/node communication (milliseconds)."""

    #: per contacted node: request/response round trip
    round_trip_ms: float = 0.5
    #: per entity scanned on a node (remote CPU)
    remote_scan_ms: float = 0.001
    #: per relevant entity shipped back to the coordinator
    transfer_ms: float = 0.002
    #: time before the coordinator declares a request dead
    timeout_ms: float = 5.0
    #: base of the exponential backoff between retries
    retry_backoff_ms: float = 0.5
    #: how many times the coordinator cycles a partition's replica list
    #: before giving up on flaky nodes
    max_retry_rounds: int = 2

    def query_latency_ms(
        self, per_node_scanned: dict[int, float], per_node_returned: dict[int, float]
    ) -> float:
        """Nodes work in parallel: latency = slowest node + one round trip."""
        if not per_node_scanned:
            return 0.0
        slowest = max(
            self.remote_scan_ms * per_node_scanned[node]
            + self.transfer_ms * per_node_returned.get(node, 0.0)
            for node in per_node_scanned
        )
        return self.round_trip_ms + slowest

    def retry_penalty_ms(self, attempt: int) -> float:
        """Cost of the *attempt*-th failed request: timeout + backoff."""
        return self.timeout_ms + self.retry_backoff_ms * (2 ** attempt)


@dataclass
class DistributedQueryStats:
    """Routing outcome of one distributed query.

    ``degraded`` is the explicit incomplete-result marker: True when at
    least one non-prunable partition had no reachable copy, in which
    case ``unreachable_partitions`` lists exactly which ones and the
    scanned/returned figures cover only the reachable partitions.
    """

    nodes_total: int
    nodes_contacted: int
    partitions_scanned: int
    partitions_pruned: int
    entities_scanned: float
    entities_returned: float
    latency_ms: float
    degraded: bool = False
    unreachable_partitions: tuple[int, ...] = ()
    retries: int = 0
    failovers: int = 0


class DistributedUniversalStore:
    """Coordinator view: logical partitioner + cluster placement.

    The partitioner can be a :class:`CinderellaPartitioner` or any
    baseline with the same ``insert``/``delete``/``update`` outcome
    contract (e.g. :class:`repro.baselines.HashPartitioner`), so the
    distributed benefit of schema-aware partitioning is directly
    comparable.
    """

    def __init__(
        self,
        node_count: int,
        partitioner=None,
        network: Optional[NetworkCostModel] = None,
        replication_factor: int = 1,
        wal=None,
    ) -> None:
        self.partitioner = (
            partitioner
            if partitioner is not None
            else CinderellaPartitioner(CinderellaConfig())
        )
        if len(self.partitioner.catalog):
            raise ValueError("the partitioner must start empty")
        self.cluster = SimulatedCluster(
            node_count, replication_factor=replication_factor
        )
        self.network = network if network is not None else NetworkCostModel()
        self.counters = FaultToleranceCounters()
        self.robustness = RobustnessCounters()
        self.wal = wal
        self.journal = None
        if wal is not None:
            from repro.txn.journal import OperationJournal

            self.journal = OperationJournal(wal)
        self._replaying = False
        #: client operation ids already applied (idempotent-retry dedup);
        #: rebuilt from snapshot + WAL payloads on recovery
        self.applied_op_ids: set[str] = set()

    @property
    def catalog(self):
        return self.partitioner.catalog

    # ------------------------------------------------------------------
    # write-ahead logging
    # ------------------------------------------------------------------
    def _log(self, op: str, payload: dict) -> None:
        """Journal one operation *before* applying it (write-ahead)."""
        if self.wal is not None and not self._replaying:
            self.wal.append(op, payload)
            self.counters.wal_records_appended += 1

    # ------------------------------------------------------------------
    # modifications (placement mirrored from partitioner outcomes)
    # ------------------------------------------------------------------
    def _entity_size(self, eid: int) -> float:
        """An entity's SIZE(), read from its (final) catalog location.

        Sizes depend only on the entity's synopsis/payload, never on the
        hosting partition, so the final location is authoritative even
        while replaying a multi-move cascade.
        """
        pid = self.catalog.partition_of(eid)
        return self.catalog.get(pid).member(eid)[1]

    def _sync_placement(
        self, outcome, pre_adjusted: Optional[tuple[int, int]] = None
    ) -> None:
        """Mirror an outcome's partition churn onto the cluster.

        ``pre_adjusted = (eid, pid)`` marks one entity whose departure
        from *pid* the caller already subtracted (the update path removes
        the entity before re-inserting it); only that entity's *first*
        move out of *pid* skips the source-side resize.
        """
        for pid in outcome.created_partitions:
            self.cluster.place_partition(pid, 0.0)
        for move in outcome.moves:
            size = self._entity_size(move.eid)
            if move.from_pid is not None:
                if pre_adjusted == (move.eid, move.from_pid):
                    pre_adjusted = None  # consumed: later moves resize
                else:
                    self.cluster.resize_partition(move.from_pid, -size)
            self.cluster.resize_partition(move.to_pid, size)
        for pid in outcome.dropped_partitions:
            self.cluster.drop_partition(pid)

    def _already_applied(self, op_id: Optional[str]) -> bool:
        """Idempotent-retry check: True when *op_id* was applied before.

        Client op ids should avoid the journal's ``op-<n>`` namespace
        (see :mod:`repro.txn.journal`); anything else — UUIDs,
        ``client-7/42`` — is fine.
        """
        if op_id is not None and op_id in self.applied_op_ids:
            self.robustness.ingest_replayed += 1
            return True
        return False

    def _payload(self, op_id: Optional[str], **fields) -> dict:
        if op_id is not None:
            fields["op_id"] = op_id
        return fields

    def _mark_applied(self, op_id: Optional[str]) -> None:
        if op_id is not None:
            self.applied_op_ids.add(op_id)

    def insert(self, eid: int, mask: int, op_id: Optional[str] = None):
        if self._already_applied(op_id):
            return None
        self._log("insert", self._payload(op_id, eid=eid, mask=mask))
        outcome = self.partitioner.insert(eid, mask)
        self._sync_placement(outcome)
        self._mark_applied(op_id)
        return outcome

    def delete(self, eid: int, op_id: Optional[str] = None):
        if self._already_applied(op_id):
            return None
        self._log("delete", self._payload(op_id, eid=eid))
        pid = self.catalog.partition_of(eid)
        _mask, size = self.catalog.get(pid).member(eid)
        outcome = self.partitioner.delete(eid)
        if pid not in outcome.dropped_partitions:
            self.cluster.resize_partition(pid, -size)
        for dropped in outcome.dropped_partitions:
            self.cluster.drop_partition(dropped)
        self._mark_applied(op_id)
        return outcome

    def update(self, eid: int, mask: int, op_id: Optional[str] = None):
        if self._already_applied(op_id):
            return None
        self._log("update", self._payload(op_id, eid=eid, mask=mask))
        pid = self.catalog.partition_of(eid)
        _old_mask, old_size = self.catalog.get(pid).member(eid)
        outcome = self.partitioner.update(eid, mask)
        if outcome.in_place:
            new_size = self.catalog.get(pid).member(eid)[1]
            self.cluster.resize_partition(pid, new_size - old_size)
            self._mark_applied(op_id)
            return outcome
        if pid not in outcome.dropped_partitions:
            self.cluster.resize_partition(pid, -old_size)
        # else: the drop inside _sync_placement subtracts the partition's
        # full remaining tracked size, entity included — no pre-adjustment
        self._sync_placement(outcome, pre_adjusted=(eid, pid))
        self._mark_applied(op_id)
        return outcome

    # ------------------------------------------------------------------
    # journaled maintenance (transactional catalog operations)
    # ------------------------------------------------------------------
    def _maintenance_journal(self):
        """The operation journal, or None while replaying (no re-logging)."""
        return self.journal if not self._replaying else None

    def merge_small(
        self,
        min_fill: float = 0.25,
        query_masks=None,
        crash_hook=None,
    ):
        """Run an atomic merge pass and mirror it onto the cluster.

        The catalog half runs inside an undo-log transaction journaled
        as one operation (see :func:`repro.txn.ops.atomic_merge`); the
        cluster placement is only touched after the catalog op commits,
        so a crash mid-merge leaves both layers at their exact pre-op
        state.  Replayed deterministically from the ``op_commit``
        record on recovery.
        """
        from repro.txn.ops import atomic_merge

        report = atomic_merge(
            self.partitioner,
            min_fill,
            query_masks,
            journal=self._maintenance_journal(),
            crash_hook=crash_hook,
            counters=self.robustness,
        )
        for move in report.moves:
            size = self._entity_size(move.eid)
            self.cluster.resize_partition(move.from_pid, -size)
            self.cluster.resize_partition(move.to_pid, size)
        for pid in report.dropped_partitions:
            self.cluster.drop_partition(pid)
        return report

    def reorganize_catalog(
        self,
        order: str = "size",
        query_masks=None,
        crash_hook=None,
    ):
        """Rebuild the partitioning atomically and re-place it.

        The rebuild happens on a scratch partitioner; the live catalog
        adopts it in one swap directly before the commit record (see
        :func:`repro.txn.ops.atomic_reorganize`).  Placement is rebuilt
        only after the commit: old partitions are dropped from the
        cluster and the new ones placed fresh on the least-loaded
        nodes — deterministic, so WAL replay reproduces it exactly.
        """
        from repro.txn.ops import atomic_reorganize

        old_pids = sorted(self.catalog.partition_ids())
        report = atomic_reorganize(
            self.partitioner,
            query_masks=query_masks,
            order=order,
            journal=self._maintenance_journal(),
            crash_hook=crash_hook,
            counters=self.robustness,
        )
        for pid in old_pids:
            self.cluster.drop_partition(pid)
        for partition in sorted(self.catalog, key=lambda p: p.pid):
            self.cluster.place_partition(partition.pid, partition.total_size)
        return report

    # ------------------------------------------------------------------
    # failure events and repair
    # ------------------------------------------------------------------
    def crash_node(self, node_id: int) -> None:
        self._log("crash", {"node": node_id})
        self.cluster.crash_node(node_id)
        self.counters.node_crashes += 1
        obs.event("fault.crash", node=node_id)

    def recover_node(self, node_id: int) -> None:
        self._log("recover", {"node": node_id})
        self.cluster.recover_node(node_id)
        self.counters.node_recoveries += 1
        obs.event("fault.recover", node=node_id)

    def degrade_node(
        self, node_id: int, slowdown: float = 4.0, drop_every: int = 0
    ) -> None:
        self._log(
            "degrade",
            {"node": node_id, "slowdown": slowdown, "drop_every": drop_every},
        )
        self.cluster.degrade_node(node_id, slowdown=slowdown, drop_every=drop_every)
        self.counters.node_degradations += 1
        obs.event(
            "fault.degrade", node=node_id, slowdown=slowdown,
            drop_every=drop_every,
        )

    def apply_event(self, event: FailureEvent) -> None:
        """Apply one :class:`FailureEvent` from a schedule."""
        if event.action == "crash":
            self.crash_node(event.node_id)
        elif event.action == "recover":
            self.recover_node(event.node_id)
        elif event.action == "degrade":
            self.degrade_node(
                event.node_id,
                slowdown=event.slowdown,
                drop_every=event.drop_every,
            )
        else:  # pragma: no cover - FailureEvent validates its action
            raise ValueError(f"unknown failure action {event.action!r}")

    def re_replicate(self) -> list[tuple[int, int]]:
        """Run the repair pass (see ``SimulatedCluster.re_replicate``);
        returns the (pid, node) copies it created."""
        self._log("re_replicate", {})
        with obs.span("distributed.re_replicate") as span:
            created = self.cluster.re_replicate()
            if span.is_recording:
                span.set("replicas_created", len(created))
        self.counters.re_replication_passes += 1
        self.counters.replicas_created += len(created)
        obs.event("fault.repair", replicas_created=len(created))
        return created

    # ------------------------------------------------------------------
    # query routing
    # ------------------------------------------------------------------
    def _attempt_hosts(self, pid: int) -> tuple[Optional[int], float, int]:
        """Find a copy of *pid* that answers; model timeouts on the way.

        Walks the replica list primary-first, cycling up to
        ``max_retry_rounds`` times (a DEGRADED node may drop one request
        and serve the next).  Returns ``(serving node or None,
        accumulated penalty ms, failed attempts)``.
        """
        hosts = self.cluster.replica_nodes(pid)
        if not hosts:
            return None, 0.0, 0
        penalty = 0.0
        attempt = 0
        for _round in range(self.network.max_retry_rounds):
            for node_id in hosts:
                node = self.cluster.nodes[node_id]
                if node.state is NodeState.DOWN:
                    penalty += self.network.retry_penalty_ms(attempt)
                    attempt += 1
                    continue
                node.requests_served += 1
                if (
                    node.state is NodeState.DEGRADED
                    and node.drop_every > 0
                    and node.requests_served % node.drop_every == 0
                ):
                    penalty += self.network.retry_penalty_ms(attempt)
                    attempt += 1
                    continue
                return node_id, penalty, attempt
            if all(
                self.cluster.nodes[nid].state is NodeState.DOWN for nid in hosts
            ):
                break  # every copy is down; further rounds cannot succeed
        return None, penalty, attempt

    def route_query(self, query_mask: int) -> DistributedQueryStats:
        """Prune by synopsis, contact surviving replicas of the rest."""
        with obs.span("distributed.route_query") as span:
            stats = self._route_query(query_mask)
            if span.is_recording:
                span.set("nodes_contacted", stats.nodes_contacted)
                span.set("retries", stats.retries)
                span.set("degraded", stats.degraded)
        if stats.degraded:
            obs.event(
                "distributed.degraded_query",
                unreachable=list(stats.unreachable_partitions),
            )
        return stats

    def _route_query(self, query_mask: int) -> DistributedQueryStats:
        per_node_scanned: dict[int, float] = {}
        per_node_returned: dict[int, float] = {}
        scanned = 0
        pruned = 0
        entities_scanned = 0.0
        entities_returned = 0.0
        penalty_ms = 0.0
        retries = 0
        failovers = 0
        unreachable: list[int] = []
        for partition in self.catalog:
            if partition.mask & query_mask == 0:
                pruned += 1
                continue
            scanned += 1
            node_id, penalty, attempts = self._attempt_hosts(partition.pid)
            penalty_ms += penalty
            retries += attempts
            if node_id is None:
                unreachable.append(partition.pid)
                continue
            hosts = self.cluster.replica_nodes(partition.pid)
            if node_id != hosts[0]:
                failovers += 1
            node = self.cluster.nodes[node_id]
            relevant = sum(
                size
                for _eid, mask, size in partition.members()
                if mask & query_mask
            )
            per_node_scanned[node_id] = (
                per_node_scanned.get(node_id, 0.0)
                + partition.total_size * node.slowdown
            )
            per_node_returned[node_id] = (
                per_node_returned.get(node_id, 0.0) + relevant
            )
            entities_scanned += partition.total_size
            entities_returned += relevant
        degraded = bool(unreachable)
        stats = DistributedQueryStats(
            nodes_total=len(self.cluster),
            nodes_contacted=len(per_node_scanned),
            partitions_scanned=scanned,
            partitions_pruned=pruned,
            entities_scanned=entities_scanned,
            entities_returned=entities_returned,
            latency_ms=self.network.query_latency_ms(
                per_node_scanned, per_node_returned
            ) + penalty_ms,
            degraded=degraded,
            unreachable_partitions=tuple(unreachable),
            retries=retries,
            failovers=failovers,
        )
        counters = self.counters
        counters.queries_total += 1
        counters.retries += retries
        counters.failovers += failovers
        if degraded:
            counters.queries_degraded += 1
            counters.unreachable_partition_hits += len(unreachable)
        return stats

    # ------------------------------------------------------------------
    # durability: checkpoint, replay, recovery
    # ------------------------------------------------------------------
    def checkpoint(self, snapshot_path: Union[str, Path]) -> None:
        """Snapshot the full coordinator state and truncate the WAL.

        After a checkpoint, recovery needs only this snapshot plus the
        WAL records appended since.
        """
        from repro.storage.snapshot import save_store

        save_store(self, snapshot_path)
        if self.wal is not None:
            self.wal.reset(basis_seq=self.wal.last_seq)

    def replay_wal(self, records) -> int:
        """Re-apply journaled operations; returns the count applied.

        Used by :meth:`recover`; records are not re-journaled.
        """
        from repro.storage.wal import (
            JOURNAL_ABORT,
            JOURNAL_BEGIN,
            JOURNAL_COMMIT,
            JOURNAL_STEP,
            WALFormatError,
        )

        self._replaying = True
        try:
            for record in records:
                payload = record.payload
                if record.op == "insert":
                    self.insert(
                        payload["eid"], payload["mask"],
                        op_id=payload.get("op_id"),
                    )
                elif record.op == "delete":
                    self.delete(payload["eid"], op_id=payload.get("op_id"))
                elif record.op == "update":
                    self.update(
                        payload["eid"], payload["mask"],
                        op_id=payload.get("op_id"),
                    )
                elif record.op == JOURNAL_COMMIT:
                    self._replay_committed_op(payload)
                elif record.op in (JOURNAL_BEGIN, JOURNAL_STEP, JOURNAL_ABORT):
                    # intent/progress/abort records carry no durable
                    # effects: replay acts on op_commit alone, so an
                    # operation a crash interrupted is simply skipped
                    pass
                elif record.op == "crash":
                    self.crash_node(payload["node"])
                elif record.op == "recover":
                    self.recover_node(payload["node"])
                elif record.op == "degrade":
                    self.degrade_node(
                        payload["node"],
                        slowdown=payload.get("slowdown", 4.0),
                        drop_every=payload.get("drop_every", 0),
                    )
                elif record.op == "re_replicate":
                    self.re_replicate()
                else:
                    raise WALFormatError(f"unknown WAL op {record.op!r}")
                self.counters.wal_records_replayed += 1
        finally:
            self._replaying = False
        return self.counters.wal_records_replayed

    def _replay_committed_op(self, payload: dict) -> None:
        """Re-run one committed maintenance operation deterministically."""
        from repro.storage.wal import WALFormatError

        kind = payload.get("kind")
        params = payload.get("params") or {}
        if kind == "merge":
            self.merge_small(
                params.get("min_fill", 0.25), params.get("query_masks")
            )
        elif kind == "reorganize":
            self.reorganize_catalog(
                order=params.get("order", "size"),
                query_masks=params.get("query_masks"),
            )
        else:
            raise WALFormatError(f"unknown committed operation kind {kind!r}")

    @classmethod
    def recover(
        cls,
        snapshot_path: Union[str, Path],
        wal_path: Union[str, Path],
        network: Optional[NetworkCostModel] = None,
    ) -> "DistributedUniversalStore":
        """Rebuild a crashed coordinator from ``snapshot + WAL``.

        Loads the store snapshot, verifies that the WAL's basis matches
        the snapshot's journal position, replays the tail, and attaches
        the WAL for further appends.  The result has the exact catalog
        and placement the coordinator had before it crashed.
        """
        from repro.storage.snapshot import load_store
        from repro.storage.wal import WALFormatError, WriteAheadLog

        store, wal_seq = load_store(snapshot_path, network=network)
        wal = WriteAheadLog(wal_path)
        if wal.basis_seq != wal_seq:
            raise WALFormatError(
                f"WAL basis {wal.basis_seq} does not match snapshot "
                f"journal position {wal_seq}"
            )
        store.replay_wal(wal.records())
        store.wal = wal
        from repro.txn.journal import OperationJournal

        store.journal = OperationJournal(wal)
        return store

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_placement(self) -> list[str]:
        """Cross-check cluster placement against the catalog."""
        problems = []
        cluster = self.cluster
        hosted: set[int] = set()
        for node in cluster.nodes:
            hosted.update(node.partitions)
        placed = hosted | set(cluster.unhosted_partitions())
        catalog_pids = set(self.catalog.partition_ids())
        if placed != catalog_pids:
            problems.append(
                f"placement/catalog mismatch: placed {placed} vs {catalog_pids}"
            )
        for pid in catalog_pids:
            expected = self.catalog.get(pid).total_size
            try:
                actual = cluster.partition_size(pid)
            except Exception as error:
                problems.append(f"partition {pid} untracked: {error}")
                continue
            if abs(expected - actual) > 1e-9:
                problems.append(
                    f"partition {pid} size drift: cluster {actual} vs "
                    f"catalog {expected}"
                )
            hosts = cluster.replica_nodes(pid)
            if len(set(hosts)) != len(hosts):
                problems.append(
                    f"partition {pid} has duplicate replica nodes {hosts}"
                )
            for nid in hosts:
                if pid not in cluster.nodes[nid].partitions:
                    problems.append(
                        f"partition {pid} maps to node {nid} but the node "
                        f"does not host it"
                    )
        for node in cluster.nodes:
            expected_load = sum(
                cluster.partition_size(pid) for pid in node.partitions
            )
            if abs(node.load - expected_load) > 1e-6:
                problems.append(
                    f"node {node.node_id} load drift: {node.load} vs "
                    f"hosted sum {expected_load}"
                )
        return problems
