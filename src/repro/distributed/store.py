"""A distributed universal store: Cinderella partitions across nodes.

Binds a logical partitioner (Cinderella or a baseline) to a
:class:`~repro.distributed.cluster.SimulatedCluster`:

* every partition the partitioner creates is placed on the least-loaded
  node; drops free the node; size changes (inserts, deletes, splits,
  moves) adjust node loads;
* queries are routed by synopsis pruning — only nodes hosting a
  non-prunable partition are contacted, the distributed payoff of the
  paper's Section II setting;
* a simple network cost model (per-contact round trip, per-byte result
  transfer) turns routing into simulated latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import CinderellaConfig
from repro.core.partitioner import CinderellaPartitioner
from repro.distributed.cluster import SimulatedCluster


@dataclass(frozen=True)
class NetworkCostModel:
    """Latency model for coordinator/node communication (milliseconds)."""

    #: per contacted node: request/response round trip
    round_trip_ms: float = 0.5
    #: per entity scanned on a node (remote CPU)
    remote_scan_ms: float = 0.001
    #: per relevant entity shipped back to the coordinator
    transfer_ms: float = 0.002

    def query_latency_ms(
        self, per_node_scanned: dict[int, float], per_node_returned: dict[int, float]
    ) -> float:
        """Nodes work in parallel: latency = slowest node + one round trip."""
        if not per_node_scanned:
            return 0.0
        slowest = max(
            self.remote_scan_ms * per_node_scanned[node]
            + self.transfer_ms * per_node_returned.get(node, 0.0)
            for node in per_node_scanned
        )
        return self.round_trip_ms + slowest


@dataclass
class DistributedQueryStats:
    """Routing outcome of one distributed query."""

    nodes_total: int
    nodes_contacted: int
    partitions_scanned: int
    partitions_pruned: int
    entities_scanned: float
    entities_returned: float
    latency_ms: float


class DistributedUniversalStore:
    """Coordinator view: logical partitioner + cluster placement.

    The partitioner can be a :class:`CinderellaPartitioner` or any
    baseline with the same ``insert``/``delete``/``update`` outcome
    contract (e.g. :class:`repro.baselines.HashPartitioner`), so the
    distributed benefit of schema-aware partitioning is directly
    comparable.
    """

    def __init__(
        self,
        node_count: int,
        partitioner=None,
        network: Optional[NetworkCostModel] = None,
    ) -> None:
        self.partitioner = (
            partitioner
            if partitioner is not None
            else CinderellaPartitioner(CinderellaConfig())
        )
        if len(self.partitioner.catalog):
            raise ValueError("the partitioner must start empty")
        self.cluster = SimulatedCluster(node_count)
        self.network = network if network is not None else NetworkCostModel()

    @property
    def catalog(self):
        return self.partitioner.catalog

    # ------------------------------------------------------------------
    # modifications (placement mirrored from partitioner outcomes)
    # ------------------------------------------------------------------
    def _entity_size(self, eid: int) -> float:
        """An entity's SIZE(), read from its (final) catalog location.

        Sizes depend only on the entity's synopsis/payload, never on the
        hosting partition, so the final location is authoritative even
        while replaying a multi-move cascade.
        """
        pid = self.catalog.partition_of(eid)
        return self.catalog.get(pid).member(eid)[1]

    def _sync_placement(
        self, outcome, pre_adjusted: Optional[tuple[int, int]] = None
    ) -> None:
        """Mirror an outcome's partition churn onto the cluster.

        ``pre_adjusted = (eid, pid)`` marks one entity whose departure
        from *pid* the caller already subtracted (the update path removes
        the entity before re-inserting it); only that entity's *first*
        move out of *pid* skips the source-side resize.
        """
        for pid in outcome.created_partitions:
            self.cluster.place_partition(pid, 0.0)
        for move in outcome.moves:
            size = self._entity_size(move.eid)
            if move.from_pid is not None:
                if pre_adjusted == (move.eid, move.from_pid):
                    pre_adjusted = None  # consumed: later moves resize
                else:
                    self.cluster.resize_partition(move.from_pid, -size)
            self.cluster.resize_partition(move.to_pid, size)
        for pid in outcome.dropped_partitions:
            self.cluster.drop_partition(pid)

    def insert(self, eid: int, mask: int):
        outcome = self.partitioner.insert(eid, mask)
        self._sync_placement(outcome)
        return outcome

    def delete(self, eid: int):
        pid = self.catalog.partition_of(eid)
        _mask, size = self.catalog.get(pid).member(eid)
        outcome = self.partitioner.delete(eid)
        if pid not in outcome.dropped_partitions:
            self.cluster.resize_partition(pid, -size)
        for dropped in outcome.dropped_partitions:
            self.cluster.drop_partition(dropped)
        return outcome

    def update(self, eid: int, mask: int):
        pid = self.catalog.partition_of(eid)
        _old_mask, old_size = self.catalog.get(pid).member(eid)
        outcome = self.partitioner.update(eid, mask)
        if outcome.in_place:
            new_size = self.catalog.get(pid).member(eid)[1]
            self.cluster.resize_partition(pid, new_size - old_size)
            return outcome
        if pid not in outcome.dropped_partitions:
            self.cluster.resize_partition(pid, -old_size)
        # else: the drop inside _sync_placement subtracts the partition's
        # full remaining tracked size, entity included — no pre-adjustment
        self._sync_placement(outcome, pre_adjusted=(eid, pid))
        return outcome

    # ------------------------------------------------------------------
    # query routing
    # ------------------------------------------------------------------
    def route_query(self, query_mask: int) -> DistributedQueryStats:
        """Prune by synopsis, contact only the hosting nodes."""
        per_node_scanned: dict[int, float] = {}
        per_node_returned: dict[int, float] = {}
        scanned = 0
        pruned = 0
        entities_scanned = 0.0
        entities_returned = 0.0
        for partition in self.catalog:
            if partition.mask & query_mask == 0:
                pruned += 1
                continue
            scanned += 1
            node = self.cluster.node_of(partition.pid)
            relevant = sum(
                size
                for _eid, mask, size in partition.members()
                if mask & query_mask
            )
            per_node_scanned[node] = (
                per_node_scanned.get(node, 0.0) + partition.total_size
            )
            per_node_returned[node] = per_node_returned.get(node, 0.0) + relevant
            entities_scanned += partition.total_size
            entities_returned += relevant
        return DistributedQueryStats(
            nodes_total=len(self.cluster),
            nodes_contacted=len(per_node_scanned),
            partitions_scanned=scanned,
            partitions_pruned=pruned,
            entities_scanned=entities_scanned,
            entities_returned=entities_returned,
            latency_ms=self.network.query_latency_ms(
                per_node_scanned, per_node_returned
            ),
        )

    def check_placement(self) -> list[str]:
        """Cross-check cluster placement against the catalog."""
        problems = []
        placed = set()
        for node in self.cluster.nodes:
            placed.update(node.partitions)
        catalog_pids = set(self.catalog.partition_ids())
        if placed != catalog_pids:
            problems.append(
                f"placement/catalog mismatch: placed {placed} vs {catalog_pids}"
            )
        for pid in catalog_pids:
            expected = self.catalog.get(pid).total_size
            actual = self.cluster.partition_size(pid)
            if abs(expected - actual) > 1e-9:
                problems.append(
                    f"partition {pid} size drift: cluster {actual} vs "
                    f"catalog {expected}"
                )
        return problems
