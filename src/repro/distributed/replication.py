"""Replica-aware placement policy and replication health reporting.

k-way replication is the standard availability answer of adaptive
distributed stores (PHD-Store and the AdPart line treat it as a
first-class concern): every partition has one *primary* copy and up to
``k - 1`` additional replicas, all on distinct nodes, so a single node
crash never makes a partition unreachable.

This module holds the pure placement policy — which nodes should host a
new copy — and the health report; the bookkeeping lives in
:class:`~repro.distributed.cluster.SimulatedCluster`, which calls in
here.  Keeping the policy free of cluster state makes it trivially
testable and swappable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.distributed.failures import NodeState


def choose_replica_targets(
    nodes: Iterable, k: int, exclude: frozenset[int] = frozenset()
) -> list[int]:
    """Pick up to *k* distinct hosting nodes for one partition copy set.

    Policy: the least-loaded non-DOWN nodes, ties broken by node id —
    the balanced-placement baseline extended to replica sets.  Nodes in
    *exclude* (already hosting a copy) are never picked, which is what
    makes replicas land on distinct nodes.
    """
    eligible = [
        node for node in nodes
        if node.state is not NodeState.DOWN and node.node_id not in exclude
    ]
    eligible.sort(key=lambda node: (node.load, node.node_id))
    return [node.node_id for node in eligible[:k]]


@dataclass(frozen=True)
class ReplicaSet:
    """The copy set of one partition: hosting nodes, primary first."""

    pid: int
    nodes: tuple[int, ...]

    @property
    def primary(self) -> int:
        return self.nodes[0]

    @property
    def replica_count(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class ReplicationReport:
    """Cluster-wide replication health at one instant."""

    replication_factor: int
    partition_count: int
    #: partitions whose live copy count is below the current target
    under_replicated: tuple[int, ...]
    #: partitions with no live copy at all (unreachable until repaired)
    unhosted: tuple[int, ...]
    min_live_copies: int
    mean_live_copies: float

    @property
    def healthy(self) -> bool:
        return not self.under_replicated and not self.unhosted


def replication_report(cluster) -> ReplicationReport:
    """Summarize a :class:`SimulatedCluster`'s replication health.

    The *target* copy count is ``min(k, live nodes)`` — with fewer live
    nodes than the configured factor, full replication is impossible
    and the report does not flag partitions that meet the reachable
    target.
    """
    live_nodes = sum(
        1 for node in cluster.nodes if node.state is not NodeState.DOWN
    )
    target = min(cluster.replication_factor, live_nodes)
    under: list[int] = []
    unhosted: list[int] = []
    live_counts: list[int] = []
    for pid in sorted(cluster.partition_ids()):
        live = len(cluster.live_replica_nodes(pid))
        live_counts.append(live)
        if live == 0:
            unhosted.append(pid)
        if live < target:
            under.append(pid)
    return ReplicationReport(
        replication_factor=cluster.replication_factor,
        partition_count=len(live_counts),
        under_replicated=tuple(under),
        unhosted=tuple(unhosted),
        min_live_copies=min(live_counts, default=0),
        mean_live_copies=(
            sum(live_counts) / len(live_counts) if live_counts else 0.0
        ),
    )
