"""Distributed deployment simulation: partitions across cluster nodes,
with replication, failure injection, failover routing, and repair."""

from repro.distributed.cluster import Node, PlacementError, SimulatedCluster
from repro.distributed.failures import FailureEvent, FailureSchedule, NodeState
from repro.distributed.replication import (
    ReplicaSet,
    ReplicationReport,
    choose_replica_targets,
    replication_report,
)
from repro.distributed.store import (
    DistributedQueryStats,
    DistributedUniversalStore,
    NetworkCostModel,
)

__all__ = [
    "DistributedQueryStats",
    "DistributedUniversalStore",
    "FailureEvent",
    "FailureSchedule",
    "NetworkCostModel",
    "Node",
    "NodeState",
    "PlacementError",
    "ReplicaSet",
    "ReplicationReport",
    "SimulatedCluster",
    "choose_replica_targets",
    "replication_report",
]
