"""Distributed deployment simulation: partitions across cluster nodes."""

from repro.distributed.cluster import Node, PlacementError, SimulatedCluster
from repro.distributed.store import (
    DistributedQueryStats,
    DistributedUniversalStore,
    NetworkCostModel,
)

__all__ = [
    "DistributedQueryStats",
    "DistributedUniversalStore",
    "NetworkCostModel",
    "Node",
    "PlacementError",
    "SimulatedCluster",
]
