"""Failure injection for the simulated cluster.

Distributed deployments — the paper's Section II setting — do not stay
healthy: nodes crash, come back, or limp along half-broken.  This module
defines the failure model used by the fault-tolerance subsystem:

* :class:`NodeState` — every node is UP, DOWN, or DEGRADED (reachable
  but slow and possibly flaky);
* :class:`FailureEvent` — one state transition pinned to an operation
  index of the driving workload;
* :class:`FailureSchedule` — an ordered, replayable sequence of events.
  :meth:`FailureSchedule.random` generates a schedule from a seed, so
  chaos runs are deterministic and failures can be replayed exactly
  (the write-ahead log relies on this).

The schedule is expressed in *operation time*, not wall-clock time: an
event fires before the workload operation with the same index.  This
keeps chaos tests independent of machine speed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional, Sequence


class MidOperationCrash(RuntimeError):
    """Simulated process death in the middle of a multi-step operation.

    Raised by a :class:`CrashInjector` at a chosen step index inside a
    journaled catalog operation (split, merge, reorganize).  The
    transactional operation layer treats it like any other failure —
    roll back to the exact pre-operation state — while the write-ahead
    log never sees a commit record, so a coordinator rebuilt from
    ``snapshot + WAL`` also lands on the pre-operation state.
    """


class CrashInjector:
    """Crash a multi-step operation at one exact step index.

    The op-time sibling of :class:`FailureSchedule`: where the schedule
    kills *nodes* between workload operations, the injector kills the
    *coordinator* between the internal steps of one operation.  Step
    indices are deterministic — the same operation on the same catalog
    always walks the same step sequence — so a crash matrix simply runs
    the operation once with ``crash_at=None`` to count the steps, then
    once per index.

    >>> injector = CrashInjector(crash_at=1)
    >>> injector.reached("merge:move")
    >>> injector.reached("merge:drop")
    Traceback (most recent call last):
        ...
    repro.distributed.failures.MidOperationCrash: injected crash at step 1 (merge:drop)
    """

    def __init__(self, crash_at: Optional[int] = None) -> None:
        self.crash_at = crash_at
        self.steps_seen = 0
        self.labels: list[str] = []

    def reached(self, label: str) -> None:
        """Mark one step boundary; crash if it is the chosen one."""
        index = self.steps_seen
        self.steps_seen += 1
        self.labels.append(label)
        if self.crash_at is not None and index == self.crash_at:
            raise MidOperationCrash(f"injected crash at step {index} ({label})")


class NodeState(Enum):
    """Health of one cluster node."""

    UP = "up"
    DOWN = "down"
    DEGRADED = "degraded"


#: Actions a :class:`FailureEvent` can carry.
ACTIONS = ("crash", "recover", "degrade")


@dataclass(frozen=True)
class FailureEvent:
    """One node state transition at a workload operation index.

    ``slowdown`` and ``drop_every`` only matter for ``degrade`` events:
    the node serves requests ``slowdown`` times slower and times out on
    every ``drop_every``-th request it receives (0 = never drops).
    """

    at_op: int
    action: str
    node_id: int
    slowdown: float = 1.0
    drop_every: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown failure action {self.action!r}")
        if self.at_op < 0:
            raise ValueError("event operation index must be >= 0")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1.0")
        if self.drop_every < 0:
            raise ValueError("drop_every must be >= 0")


class FailureSchedule:
    """An ordered sequence of failure events, addressable by op index."""

    def __init__(self, events: Sequence[FailureEvent] = ()) -> None:
        self.events = tuple(sorted(events, key=lambda e: e.at_op))
        self._by_op: dict[int, list[FailureEvent]] = {}
        for event in self.events:
            self._by_op.setdefault(event.at_op, []).append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self.events)

    @property
    def crash_count(self) -> int:
        return sum(1 for event in self.events if event.action == "crash")

    def events_at(self, op_index: int) -> tuple[FailureEvent, ...]:
        """Events that fire just before workload operation *op_index*."""
        return tuple(self._by_op.get(op_index, ()))

    @classmethod
    def random(
        cls,
        node_count: int,
        n_ops: int,
        seed: int = 0,
        crash_rate: float = 0.01,
        mean_downtime: int = 50,
        degrade_rate: float = 0.0,
        slowdown: float = 4.0,
        drop_every: int = 3,
        min_up: int = 1,
    ) -> "FailureSchedule":
        """Generate a deterministic random schedule from *seed*.

        At every operation index each healthy node population is
        examined: with probability *crash_rate* one random up node
        crashes (never dropping the up count below *min_up*) and is
        scheduled to recover after an exponentially distributed
        downtime; with probability *degrade_rate* one random up node
        degrades until its own recovery fires.  The same seed always
        yields the same schedule.
        """
        if node_count < 1:
            raise ValueError("node_count must be >= 1")
        if min_up < 1:
            raise ValueError("min_up must be >= 1")
        rng = random.Random(seed)
        events: list[FailureEvent] = []
        #: node id -> op index at which its recovery fires
        down: dict[int, int] = {}
        degraded: dict[int, int] = {}
        for op_index in range(n_ops):
            for nid, recover_at in sorted(down.items()):
                if recover_at <= op_index:
                    events.append(FailureEvent(op_index, "recover", nid))
                    del down[nid]
            for nid, recover_at in sorted(degraded.items()):
                if recover_at <= op_index:
                    events.append(FailureEvent(op_index, "recover", nid))
                    del degraded[nid]
            healthy = [
                nid for nid in range(node_count)
                if nid not in down and nid not in degraded
            ]
            if rng.random() < crash_rate and len(healthy) > min_up:
                nid = rng.choice(healthy)
                downtime = max(1, int(rng.expovariate(1.0 / mean_downtime)))
                events.append(FailureEvent(op_index, "crash", nid))
                down[nid] = op_index + downtime
                healthy.remove(nid)
            if degrade_rate and rng.random() < degrade_rate and len(healthy) > min_up:
                nid = rng.choice(healthy)
                duration = max(1, int(rng.expovariate(1.0 / mean_downtime)))
                events.append(
                    FailureEvent(
                        op_index, "degrade", nid,
                        slowdown=slowdown, drop_every=drop_every,
                    )
                )
                degraded[nid] = op_index + duration
        return cls(events)
