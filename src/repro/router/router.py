"""The routing tier: one TCP front door over a cluster of serving nodes.

:class:`CinderellaRouter` speaks the *same* line-delimited JSON
protocol as :class:`~repro.server.server.CinderellaServer` — a client
cannot tell (and should not care) whether it is talking to one node or
a routed cluster.  What the router adds:

* **partition-aware writes** — ``insert``/``update``/``delete`` are
  routed to the replica set of the owning shard
  (:class:`~repro.router.placement.PlacementMap`) and fanned out to
  every reachable replica; the write is acknowledged as soon as one
  replica acked it, and replicas that missed it are caught up from a
  bounded buffer when they return;
* **scatter-gather reads** — ``query``/``sql`` fan out to one replica
  per shard (with on-the-wire failover to the next replica when one
  does not answer) and merge the shards' rows.  The partial-result
  contract is explicit: every shard answered → ``ok``; some shards had
  no reachable replica → ``degraded`` with the gathered rows *plus*
  ``unreachable_shards``; no shard reachable → ``node_unavailable``
  (retryable).  This is the ``repro.distributed`` failover vocabulary
  (degraded results, unreachable partitions) spoken on the wire;
* **health tracking** — a per-node circuit breaker
  (:class:`~repro.router.health.NodeHealth`) with jittered
  timeout/retry/backoff, ejection windows, and probe-on-expiry, so a
  dead node costs each request at most one fast failure instead of a
  timeout per exchange.

Two deliberate limitations, documented rather than hidden: SQL
scatter-gather concatenates per-shard result rows, so cross-shard
aggregates and ``ORDER BY`` are per-shard, not global; and write
fan-out is asynchronous replication — a replica that missed a write
serves slightly stale reads until its catch-up replay lands.

Spans and the event loop: the tracer's span stack is per *thread*, so
holding a span across an ``await`` inside concurrent tasks would
mis-parent everything.  As in :mod:`repro.server.server`, latency goes
straight into histograms and spans only wrap synchronous regions (the
gather merge).
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.metrics.telemetry import RouterCounters
from repro.obs import runtime as obs
from repro.obs.federation import (
    local_obs_document,
    merge_documents,
    unreachable_document,
)
from repro.obs.registry import SERVER_LATENCY_BUCKETS
from repro.obs.tracing import TraceContext
from repro.router.health import (
    REPLICA_DIVERGED,
    REPLICA_RESYNCING,
    NodeHealth,
    ReplicaTracker,
)
from repro.router.placement import ROUTER_EID_BASE, NodeAddress, PlacementMap
from repro.router.pool import NodePool, UpstreamError
from repro.server import protocol
from repro.server.protocol import ProtocolError, Request, Response
from repro.server.server import Session

_REQUEST_SECONDS = "repro_router_request_seconds"
_REQUESTS_BY_OP = "repro_router_requests_by_op_total"

#: refusal codes that mean "the write actually landed, the ack was
#: lost" when they follow a transport failure on the same exchange
_DEDUP_CODES = {"insert": "duplicate_entity", "delete": "unknown_entity"}


def _request_trace_context(request: Request) -> Optional[TraceContext]:
    """The adopted trace context _dispatch stashed on the request (the
    isinstance check also drops a wire-supplied impostor field)."""
    context = request.fields.get("_trace_context")
    return context if isinstance(context, TraceContext) else None


@dataclass
class RouterConfig:
    """Tunables of one router instance."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests, benchmarks)
    port: int = 0
    name: str = "router"
    #: per-exchange upstream timeout (connect, send, and read each)
    upstream_timeout_s: float = 2.0
    #: attempts per node before failing over to the next replica
    upstream_attempts: int = 2
    #: jittered exponential backoff between same-node attempts
    retry_base_s: float = 0.01
    retry_max_s: float = 0.1
    #: consecutive failures that trip a node's circuit breaker
    failure_threshold: int = 3
    #: ejection window growth: base · 2^(ejections−1), capped
    eject_base_s: float = 0.2
    eject_max_s: float = 5.0
    #: buffered writes kept per unreachable node for catch-up replay;
    #: overflowing this budget marks the replica ``diverged`` (resync
    #: rebuilds it) instead of silently dropping buffered writes
    catchup_limit: int = 512
    #: idle upstream connections kept warm per node
    pool_max_idle: int = 2
    #: graceful-drain bound (same contract as the serving nodes)
    drain_deadline_s: float = 5.0
    #: how often the resync monitor looks for diverged replicas to
    #: repair (seconds; 0 disables the monitor — resyncs then only run
    #: when driven explicitly, which is what the tests want)
    resync_interval_s: float = 0.25
    #: entities copied per ``sync_snapshot``/``sync_delta`` page — the
    #: 1 MiB frame bound is the real ceiling, this keeps each exchange
    #: comfortably under it
    sync_page_entities: int = 200
    #: count/digest agreement attempts before a resync is abandoned
    #: (live traffic can race the comparison; each retry re-drains the
    #: buffered delta first)
    resync_verify_attempts: int = 8


class _Refused(Exception):
    """A request the router answers with a non-ok status (no traceback)."""

    def __init__(self, status: str, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class CinderellaRouter:
    """A placement-driven proxy over serving nodes (see module docs)."""

    def __init__(
        self,
        placement: PlacementMap,
        config: Optional[RouterConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.placement = placement
        self.config = config if config is not None else RouterConfig()
        self.counters = RouterCounters()
        self._rng = rng if rng is not None else random.Random()
        self.health: dict[str, NodeHealth] = {
            node.name: NodeHealth(
                node.name,
                failure_threshold=self.config.failure_threshold,
                eject_base_s=self.config.eject_base_s,
                eject_max_s=self.config.eject_max_s,
                rng=self._rng,
            )
            for node in placement.nodes
        }
        self.pools: dict[str, NodePool] = {
            node.name: NodePool(
                node,
                timeout_s=self.config.upstream_timeout_s,
                max_idle=self.config.pool_max_idle,
            )
            for node in placement.nodes
        }
        self._catchup: dict[str, deque[tuple[str, dict[str, Any]]]] = {
            node.name: deque() for node in placement.nodes
        }
        #: per-node replay serialization: concurrent successful
        #: exchanges must not interleave drains of the same deque, and
        #: an exchange that *waited* behind a replay needs to know one
        #: happened (its response predates the replayed writes)
        self._catchup_locks: dict[str, asyncio.Lock] = {
            node.name: asyncio.Lock() for node in placement.nodes
        }
        #: data-lifecycle state per replica (healthy/lagging/diverged/
        #: resyncing) — orthogonal to the reachability breaker above
        self.replicas: dict[str, ReplicaTracker] = {
            node.name: ReplicaTracker(node.name) for node in placement.nodes
        }
        self._catchup_dropped: dict[str, int] = {
            node.name: 0 for node in placement.nodes
        }
        self._resyncing: set[str] = set()
        self._monitor_task: Optional[asyncio.Task] = None
        self._next_eid = ROUTER_EID_BASE
        self.sessions: dict[int, Session] = {}
        self._next_sid = 1
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._stop_task: Optional[asyncio.Task] = None
        self._draining = False
        self._stopped = asyncio.Event()
        self._started_monotonic = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("router not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("router already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._started_monotonic = time.monotonic()
        if self.config.resync_interval_s > 0:
            self._monitor_task = asyncio.get_running_loop().create_task(
                self._resync_monitor()
            )
        host, port = self.address
        obs.event(
            "router.started", host=host, port=port,
            nodes=len(self.placement.nodes),
            n_shards=self.placement.n_shards,
        )
        return host, port

    async def serve_until_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        """Bounded graceful drain, mirroring the serving node's contract:
        in-flight requests get until ``drain_deadline_s``, stragglers are
        force-closed with a typed ``shutting_down`` frame."""
        if self._server is None:
            self._stopped.set()
            return
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        deadline = time.monotonic() + self.config.drain_deadline_s
        forced = False
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        self._server.close()
        await self._server.wait_closed()
        for session in self.sessions.values():
            session.closing = True
        await asyncio.sleep(0)
        for writer in list(self._writers.values()):
            writer.close()
        if self._conn_tasks:
            _done, survivors = await asyncio.wait(
                list(self._conn_tasks),
                timeout=max(0.05, deadline - time.monotonic()),
            )
            if survivors:
                forced = True
                for sid, writer in list(self._writers.items()):
                    try:
                        writer.write(protocol.encode_response(
                            0, protocol.SHUTTING_DOWN,
                            error=protocol.error_body(
                                "drain_deadline",
                                "connection force-closed at the drain deadline",
                            ),
                        ))
                    except Exception:
                        pass  # transport already dying
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                for task in list(self._conn_tasks):
                    task.cancel()
                await asyncio.wait(list(survivors), timeout=1.0)
        for pool in self.pools.values():
            pool.close()
        obs.event("router.stopped", name=self.config.name, forced=forced)
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling (same loop shape as the serving node)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        session = Session(
            sid=self._next_sid, peer=peer, opened_monotonic=time.monotonic()
        )
        self._next_sid += 1
        self.sessions[session.sid] = session
        self._writers[session.sid] = writer
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.counters.connections_opened += 1
        obs.event("router.connect", sid=session.sid, peer=peer)
        try:
            while not session.closing:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.counters.bad_requests += 1
                    writer.write(protocol.encode_response(
                        0, protocol.BAD_REQUEST,
                        error=protocol.error_body(
                            "frame_too_long",
                            f"frame exceeds {protocol.MAX_LINE_BYTES} bytes",
                        ),
                    ))
                    await writer.drain()
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                payload = await self._dispatch(line.strip(), session)
                writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-response
        except asyncio.CancelledError:
            pass  # force-close cancelled us: end the task quietly
        finally:
            self.sessions.pop(session.sid, None)
            self._writers.pop(session.sid, None)
            if task is not None:
                self._conn_tasks.discard(task)
            self.counters.connections_closed += 1
            obs.event(
                "router.disconnect", sid=session.sid,
                requests=session.requests,
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes, session: Session) -> bytes:
        """Decode, route, and encode one request; never raises."""
        try:
            request = protocol.decode_request(line)
        except ProtocolError as err:
            self.counters.bad_requests += 1
            session.observe("?", ok=False)
            return protocol.encode_response(
                0, protocol.BAD_REQUEST,
                error=protocol.error_body("protocol", str(err)),
            )
        self.counters.requests_total += 1
        started = time.perf_counter()
        trace_context: Optional[TraceContext] = None
        wire = request.fields.pop("trace", None)
        if wire is not None:
            # adopt the caller's trace context; it rides on the request
            # object (handlers run concurrently on the loop, so a
            # thread-local would bleed across tasks) and every upstream
            # exchange below stamps its own child context on the wire
            trace_context = obs.adopt_wire_trace(wire)
            if trace_context is not None:
                request.fields["_trace_context"] = trace_context
        try:
            status, fields, error = await self._route(request, session)
        except _Refused as refusal:
            status = refusal.status
            fields = {}
            error = protocol.error_body(refusal.code, str(refusal))
        except Exception as err:  # a routing bug must not kill the loop
            status = protocol.ERROR
            fields = {}
            error = protocol.error_body(
                "internal", f"{type(err).__name__}: {err}"
            )
        ended = time.perf_counter()
        obs.observe(
            _REQUEST_SECONDS, ended - started,
            "Router request latency by op (fan-out included)",
            buckets=SERVER_LATENCY_BUCKETS, op=request.op,
        )
        obs.inc(
            _REQUESTS_BY_OP,
            help_text="Router requests by op and status",
            op=request.op, status=status,
        )
        ok = status in protocol.SUCCESS_STATUSES
        session.observe(request.op, ok=ok)
        if trace_context is not None:
            # the router's hop in the distributed trace (recorded after
            # the fact: this coroutine awaited, so a stack-held span
            # would mis-parent interleaved tasks)
            obs.record_remote_span(
                "router.request", started, ended, trace_context,
                error=None if ok or status in protocol.PARTIAL_STATUSES
                else status,
                op=request.op, router=self.config.name, status=status,
            )
        return protocol.encode_response(
            request.id, status, error=error, **fields
        )

    async def _route(
        self, request: Request, session: Session
    ) -> tuple[str, dict[str, Any], Optional[dict[str, Any]]]:
        op = request.op
        if self._draining and op not in ("ping", "stats", "obs"):
            raise _Refused(
                protocol.SHUTTING_DOWN, "draining",
                "router is draining; no new work",
            )
        if op == "ping":
            return protocol.OK, {
                "payload": request.get("payload"), "router": self.config.name,
            }, None
        if op in ("insert", "update", "delete"):
            return await self._route_write(request)
        if op in ("query", "sql"):
            return await self._scatter(request)
        if op == "stats":
            snapshot = self._stats_snapshot()
            if request.get("heat"):
                snapshot["heat"] = await self._gather_heat(request)
            return protocol.OK, snapshot, None
        if op == "obs":
            return await self._fanout_obs(request)
        if op == "maintain":
            return await self._fanout_maintain(request)
        if op == "shutdown":
            session.closing = True
            self._stop_task = asyncio.get_running_loop().create_task(self.stop())
            return protocol.OK, {"draining": True}, None
        raise _Refused(  # unreachable: decode_request validates ops
            protocol.BAD_REQUEST, "unknown_op", f"unhandled op {op!r}"
        )

    # ------------------------------------------------------------------
    # one upstream node: retry loop + breaker + dedup
    # ------------------------------------------------------------------
    async def _node_exchange(
        self,
        node: NodeAddress,
        op: str,
        fields: dict[str, Any],
        context: Optional[TraceContext] = None,
    ) -> Response:
        """Exchange with one node: bounded same-node retries with
        jittered backoff, breaker bookkeeping, and lost-ack dedup.

        With a trace *context*, the exchange gets its own child span —
        ``router.exchange`` with the node's name — whose context crosses
        the wire on the request's ``trace`` field, so the node's span
        nests under this exchange.  A fully failed exchange records the
        transport error on that span: in a degraded scatter, the
        unreachable shard's hop is marked, not silently absent.

        Raises :class:`UpstreamError` when every attempt transport-failed.
        """
        if context is None:
            return await self._exchange_attempts(node, op, fields)
        exchange_context = context.child()
        fields = {**fields, "trace": exchange_context.to_wire()}
        started = time.perf_counter()
        error: Optional[str] = None
        try:
            return await self._exchange_attempts(node, op, fields)
        except UpstreamError as err:
            error = f"UpstreamError: {err}"
            raise
        finally:
            obs.record_remote_span(
                "router.exchange", started, time.perf_counter(),
                exchange_context, error=error, node=node.name, op=op,
            )

    async def _exchange_attempts(
        self, node: NodeAddress, op: str, fields: dict[str, Any]
    ) -> Response:
        health = self.health[node.name]
        pool = self.pools[node.name]
        if health.probing:
            self.counters.probes_sent += 1
        saw_transport_failure = False
        last_error: Optional[UpstreamError] = None
        for attempt in range(1, self.config.upstream_attempts + 1):
            try:
                response = await pool.request(op, **fields)
            except UpstreamError as err:
                saw_transport_failure = True
                last_error = err
                if health.record_failure():
                    self.counters.node_ejections += 1
                if attempt < self.config.upstream_attempts:
                    self.counters.upstream_retries += 1
                    delay = min(
                        self.config.retry_max_s,
                        self.config.retry_base_s * (2 ** (attempt - 1)),
                    )
                    await asyncio.sleep(delay * (0.5 + self._rng.random() * 0.5))
                continue
            if health.record_success():
                self.counters.node_restores += 1
            # any successful exchange drains the node's catch-up buffer
            # — a replica can miss writes without ever being ejected (a
            # transport blip on one fan-out), so replay cannot be tied
            # to breaker restores alone; stale_risk also covers a replay
            # another task had in flight while our response was being
            # computed (we wait on its lock below)
            stale_risk = (
                bool(self._catchup[node.name])
                or self._catchup_locks[node.name].locked()
            )
            replayed = await self._replay_catchup(node.name)
            if (replayed or stale_risk) and (
                op in ("query", "sql") or not response.ok
            ):
                # this response was computed before the catch-up landed,
                # so it can be stale in either direction: a read missing
                # the buffered writes, or a refusal (unknown_entity on a
                # delete whose insert was still buffered) contradicting
                # the cluster-wide truth.  Re-issue now that the node is
                # caught up.  On a re-failure a read falls back to its
                # pre-catch-up rows (usable, merely stale), but a stale
                # refusal must not stand — fail over instead.
                try:
                    response = await pool.request(op, **fields)
                except UpstreamError:
                    if not response.ok:
                        raise

            if (
                saw_transport_failure
                and response.error is not None
                and response.error.get("code") == _DEDUP_CODES.get(op)
            ):
                # the attempt that "failed" actually applied before its
                # ack was lost; the retransmit's refusal proves it —
                # surface the idempotent success, not the duplicate error
                return Response(
                    id=response.id, status=protocol.APPLIED,
                    fields={"eid": fields.get("eid"), "deduplicated": True},
                )
            return response
        assert last_error is not None
        raise last_error

    def _buffer_catchup(
        self, node_name: str, op: str, fields: dict[str, Any]
    ) -> None:
        """Remember a write a replica missed, within the bounded budget.

        Overflowing the budget does **not** drop the oldest buffered
        write (that would silently lose the replica's copy of an acked
        write): it declares the replica *diverged* — replay alone can no
        longer reconstruct it — abandons the buffer, and hands the node
        to the resync machinery, which rebuilds it from a healthy peer.
        """
        tracker = self.replicas[node_name]
        if tracker.state == REPLICA_DIVERGED:
            return  # a full resync rebuilds it; buffering is pointless
        buffer = self._catchup[node_name]
        if len(buffer) >= self.config.catchup_limit:
            abandoned = len(buffer) + 1
            buffer.clear()
            self._catchup_dropped[node_name] += abandoned
            self.counters.catchup_dropped += abandoned
            self._mark_diverged(node_name, reason="catchup_overflow")
            obs.event(
                "router.catchup_overflow", node=node_name,
                abandoned=abandoned,
            )
            return
        buffer.append((op, dict(fields)))
        tracker.mark_lagging()

    def _mark_diverged(self, node_name: str, reason: str) -> None:
        if self.replicas[node_name].mark_diverged(reason):
            self.counters.nodes_diverged += 1

    async def _replay_catchup(self, node_name: str, force: bool = False) -> int:
        """Flush the buffered writes of a node that just came back;
        returns how many were replayed.

        Skipped (unless *force*) while the replica is diverged or
        resyncing: a diverged buffer was abandoned, and a drain landing
        mid-resync would apply writes the snapshot cut is about to
        erase — the resync task owns the drain ordering and passes
        ``force=True`` at exactly the right point.
        """
        if not force and not self.replicas[node_name].in_write_set:
            return 0
        buffer = self._catchup[node_name]
        lock = self._catchup_locks[node_name]
        if not buffer and not lock.locked():
            return 0
        pool = self.pools[node_name]
        replayed = 0
        # serialize per node: interleaved drains would reorder the
        # buffered writes, and a waiter must not return before an
        # in-flight replay has finished (its caller re-reads after us)
        async with lock:
            while buffer:
                entry = buffer[0]
                op, fields = entry
                try:
                    response = await pool.request(op, **fields)
                except UpstreamError:
                    # gone again mid-replay: keep the rest buffered; the
                    # next successful exchange brings us back here
                    self.health[node_name].record_failure()
                    break
                if not buffer or buffer[0] is not entry:
                    # the buffer was taken over while we awaited — a
                    # divergence declaration emptied it, or a resync
                    # claimed it; its contents are no longer ours to pop
                    break
                if response.retryable:
                    # the node shed the replayed write (overloaded):
                    # dropping it here would silently lose the replica's
                    # copy — keep it buffered and come back later
                    break
                # applied, or a logical verdict (duplicate_entity when
                # the node already had it): this record is settled
                buffer.popleft()
                replayed += 1
            if not buffer:
                self.replicas[node_name].mark_caught_up()
        self.counters.catchup_replayed += replayed
        if replayed:
            obs.event(
                "router.catchup_replayed", node=node_name,
                records=replayed, remaining=len(buffer),
            )
        return replayed

    # ------------------------------------------------------------------
    # resync: rebuilding a diverged replica from a healthy peer
    # ------------------------------------------------------------------
    async def _resync_monitor(self) -> None:
        """Background repair loop: probe diverged replicas and resync
        the reachable ones."""
        while True:
            await asyncio.sleep(self.config.resync_interval_s)
            for name, tracker in self.replicas.items():
                if (
                    tracker.state == REPLICA_DIVERGED
                    and name not in self._resyncing
                    and self.health[name].available()
                ):
                    await self.resync_node(name)

    async def resync_node(self, node_name: str) -> bool:
        """Rebuild one diverged replica from healthy shard peers.

        The zero-lost-writes argument, in full: write buffering for the
        node resumes the moment its tracker enters ``resyncing`` —
        strictly before the first ``sync_snapshot`` page is cut on any
        peer.  Every write acked after divergence is therefore either
        (a) already applied on the peer and thus inside the copied
        pages, or (b) sitting in the catch-up buffer drained (with
        ``force=True``) after the final delta.  Writes in both sets
        replay idempotently (``sync_put`` upserts; a replayed delete
        refused with ``unknown_entity`` is a settled verdict, not a
        loss).  Re-admission happens only after the node and its peers
        agree on entity count and an order-independent digest per shard
        group; live traffic can race that comparison, so it retries
        with a fresh drain each time.
        """
        tracker = self.replicas[node_name]
        if tracker.state != REPLICA_DIVERGED or node_name in self._resyncing:
            return False
        self._resyncing.add(node_name)
        tracker.begin_resync()
        self.counters.resyncs_started += 1
        # entries buffered while diverged do not exist (buffering was
        # off); anything stale from before the divergence is superseded
        # by the copy about to land
        self._catchup[node_name].clear()
        started = time.perf_counter()
        try:
            ok = await self._run_resync(node_name)
        except (UpstreamError, _Refused) as err:
            obs.event(
                "router.resync_failed", node=node_name, error=str(err),
            )
            ok = False
        finally:
            self._resyncing.discard(node_name)
        if ok and tracker.state == REPLICA_RESYNCING:
            lagging = bool(self._catchup[node_name])
            tracker.complete_resync(lagging=lagging)
            self.counters.resyncs_completed += 1
            obs.event(
                "router.resync_complete", node=node_name,
                duration_s=round(time.perf_counter() - started, 4),
                lagging=lagging,
            )
            return True
        tracker.fail_resync("resync_failed")
        self.counters.resyncs_failed += 1
        return False

    async def _run_resync(self, node_name: str) -> bool:
        target = self._node_address(node_name)
        shards = self.placement.shards_on(node_name)
        n_shards = self.placement.n_shards
        if not shards:
            return True  # holds nothing: trivially consistent
        peer_shards = self._pick_resync_peers(node_name, shards)
        if peer_shards is None:
            obs.event("router.resync_failed", node=node_name,
                      error="no healthy peer for some shard")
            return False
        # 1. reset: clear the target's (diverged) copy of its shards in
        #    one transaction, journaled on the target as sync_reset
        await self._resync_request(target, "sync_delta", {
            "reset": {"n_shards": n_shards, "shards": shards},
            "entities": [],
        })
        # 2. stream each peer's consistent copy, page by page
        for peer_name, peer_group in peer_shards.items():
            peer = self._node_address(peer_name)
            after_eid = -1
            while True:
                page = await self._resync_request(peer, "sync_snapshot", {
                    "n_shards": n_shards, "shards": peer_group,
                    "after_eid": after_eid,
                    "limit": self.config.sync_page_entities,
                })
                entities = page.get("entities", [])
                if entities:
                    await self._resync_request(target, "sync_delta", {
                        "entities": entities,
                    })
                    self.counters.sync_entities_streamed += len(entities)
                if page.get("done", True):
                    break
                after_eid = page.get("next_after", after_eid)
        # 3. final delta: ask the target to checkpoint so the resynced
        #    state survives an immediate crash
        await self._resync_request(target, "sync_delta", {
            "entities": [], "final": True,
        })
        # 4. drain the writes buffered since the resync began, then
        #    verify target and peers agree per shard group — retrying,
        #    because live traffic keeps moving the goalposts
        for attempt in range(1, self.config.resync_verify_attempts + 1):
            if attempt > 1:
                await asyncio.sleep(0.02)
            await self._replay_catchup(node_name, force=True)
            if self._catchup[node_name]:
                continue  # drain bounced (node busy); try again
            if await self._verify_resync(target, peer_shards, n_shards):
                return True
        obs.event(
            "router.resync_failed", node=node_name,
            error="count/digest verification never converged",
        )
        return False

    async def _verify_resync(
        self,
        target: NodeAddress,
        peer_shards: dict[str, list[int]],
        n_shards: int,
    ) -> bool:
        for peer_name, peer_group in peer_shards.items():
            peer = self._node_address(peer_name)
            fields = {
                "n_shards": n_shards, "shards": peer_group,
                "count_only": True,
            }
            ours, theirs = await asyncio.gather(
                self._resync_request(target, "sync_snapshot", fields),
                self._resync_request(peer, "sync_snapshot", fields),
            )
            if (
                ours.get("count") != theirs.get("count")
                or ours.get("digest") != theirs.get("digest")
            ):
                return False
        return True

    def _pick_resync_peers(
        self, node_name: str, shards: list[int]
    ) -> Optional[dict[str, list[int]]]:
        """Choose a healthy source replica per shard, grouped by peer so
        each peer streams its shards in one paging run.  None when some
        shard has no healthy reachable peer (resync would lose data)."""
        peer_shards: dict[str, list[int]] = {}
        for shard in shards:
            peer = next(
                (
                    node for node in self.placement.replicas(shard)
                    if node.name != node_name
                    and self.replicas[node.name].state
                    not in (REPLICA_DIVERGED, REPLICA_RESYNCING)
                    and self.health[node.name].available()
                ),
                None,
            )
            if peer is None:
                return None
            peer_shards.setdefault(peer.name, []).append(shard)
        return peer_shards

    def _node_address(self, node_name: str) -> NodeAddress:
        return next(
            node for node in self.placement.nodes if node.name == node_name
        )

    async def _resync_request(
        self, node: NodeAddress, op: str, fields: dict[str, Any]
    ) -> dict[str, Any]:
        """One repair exchange: plain request + breaker bookkeeping, no
        catch-up replay (the resync task owns that ordering) and no
        dedup (sync ops are idempotent by construction)."""
        health = self.health[node.name]
        try:
            response = await self.pools[node.name].request(op, **fields)
        except UpstreamError:
            if health.record_failure():
                self.counters.node_ejections += 1
            raise
        if health.record_success():
            self.counters.node_restores += 1
        if not response.ok:
            error = response.error or {}
            raise _Refused(
                response.status, error.get("code", "sync_failed"),
                f"{op} on {node.name}: "
                f"{error.get('message', 'refused')}",
            )
        return dict(response.fields)

    # ------------------------------------------------------------------
    # writes: partition-aware fan-out to the owning shard's replicas
    # ------------------------------------------------------------------
    async def _route_write(
        self, request: Request
    ) -> tuple[str, dict[str, Any], Optional[dict[str, Any]]]:
        op = request.op
        eid = request.get("eid")
        if op == "insert" and eid is None:
            eid = self._next_eid
            self._next_eid += 1
        if isinstance(eid, bool) or not isinstance(eid, int) or eid < 0:
            raise _Refused(
                protocol.REJECTED, "invalid_entity_id",
                f"entity id must be a non-negative integer, got {eid!r}",
            )
        shard = self.placement.shard_of(eid)
        replicas = self.placement.replicas(shard)
        fields = dict(request.fields)
        fields.pop("_trace_context", None)  # router-internal, not wire
        context = _request_trace_context(request)
        fields["eid"] = eid
        self.counters.writes_routed += 1
        # diverged/resyncing replicas are out of the write set entirely:
        # fanning a write to a mid-resync node would race the snapshot
        # cut (resyncing nodes get their live writes via the catch-up
        # buffer instead, drained after the copy lands)
        writable = [
            node for node in replicas if self.replicas[node.name].in_write_set
        ]
        candidates = [
            node for node in writable if self.health[node.name].available()
        ]
        if not candidates:
            if not writable:
                # every replica of the shard is being rebuilt: no node
                # may take this write directly.  Retryable — the resync
                # machinery re-admits replicas shortly
                self.counters.replies_unavailable += 1
                return protocol.NODE_UNAVAILABLE, {
                    "shard": shard,
                }, protocol.error_body(
                    "no_writable_replica",
                    f"every replica of shard {shard} is resyncing; "
                    f"back off and retry",
                )
            # last gasp: the breaker has every replica out, but refusing
            # outright would turn fast connect-refused failures into
            # guaranteed downtime — force one attempt at the first
            # writable replica, which doubles as the probe
            candidates = [writable[0]]
            self.counters.probes_sent += 1
        outcomes = await asyncio.gather(
            *(
                self._node_exchange(node, op, fields, context=context)
                for node in candidates
            ),
            return_exceptions=True,
        )
        acked: list[tuple[NodeAddress, Response]] = []
        refused: list[tuple[NodeAddress, Response]] = []
        missed = [node for node in replicas if node not in candidates]
        for node, outcome in zip(candidates, outcomes):
            if isinstance(outcome, UpstreamError):
                missed.append(node)
            elif isinstance(outcome, BaseException):
                raise outcome
            elif outcome.ok:
                acked.append((node, outcome))
            else:
                refused.append((node, outcome))
        if acked:
            for node in missed:
                self._buffer_catchup(node.name, op, fields)
            node, response = acked[0]
            merged = dict(response.fields)
            merged.update(
                shard=shard,
                replicas_acked=len(acked),
                replicas_missed=len(missed),
            )
            if len(acked) > 1:
                # per-replica partition ids differ (each node partitions
                # its slice independently); report the primary's view
                merged.pop("partition", None)
            self.counters.replies_complete += 1
            if node is not replicas[0]:
                self.counters.failovers += 1
            return protocol.APPLIED, merged, None
        if refused:
            if any(self._catchup[node.name] for node in replicas):
                # a refusal only speaks for the shard when every replica
                # is caught up: with writes still buffered, the verdict
                # may contradict the cluster-wide truth (unknown_entity
                # for an entity whose insert is sitting in the buffer).
                # Answer retryable — by the retry, the buffer has drained
                self.counters.replies_unavailable += 1
                return protocol.NODE_UNAVAILABLE, {
                    "shard": shard,
                }, protocol.error_body(
                    "replica_catching_up",
                    f"shard {shard} has replicas catching up; "
                    f"back off and retry",
                )
            # a logical verdict from a live replica (rejected, overloaded,
            # shutting_down): propagate it untouched — replicas apply
            # deterministically, so any one verdict speaks for the shard
            _node, response = refused[0]
            return response.status, dict(response.fields), response.error
        self.counters.replies_unavailable += 1
        obs.event("router.write_unroutable", shard=shard, op=op)
        return protocol.NODE_UNAVAILABLE, {"shard": shard}, protocol.error_body(
            "no_reachable_replica",
            f"no replica of shard {shard} is reachable; back off and retry",
        )

    # ------------------------------------------------------------------
    # reads: scatter-gather with per-shard replica failover
    # ------------------------------------------------------------------
    async def _scatter(
        self, request: Request
    ) -> tuple[str, dict[str, Any], Optional[dict[str, Any]]]:
        """Shard-scoped scatter-gather with per-shard replica failover.

        Every shard is assigned to its first available replica, shards
        sharing a node are grouped into *one* upstream request carrying
        a ``shard_filter`` (the node answers for exactly those shards —
        with replication, an unscoped read would double-count rows held
        as secondary copies).  Shards whose node failed are reassigned
        to their next replica in the following round; a shard that runs
        out of replicas is reported in ``unreachable_shards``.
        """
        self.counters.queries_scattered += 1
        base_fields = dict(request.fields)
        base_fields.pop("shard_filter", None)  # router-owned field
        base_fields.pop("_trace_context", None)  # router-internal
        context = _request_trace_context(request)
        n_shards = self.placement.n_shards
        remaining: set[int] = set(self.placement.shards)
        tried: dict[int, set[str]] = {shard: set() for shard in remaining}
        gathered: list[Response] = []
        failed_over: set[int] = set()
        refusal: Optional[Response] = None
        while remaining and refusal is None:
            assignment: dict[NodeAddress, list[int]] = {}
            for shard in sorted(remaining):
                replicas = self.placement.replicas(shard)
                # diverged/resyncing replicas hold incomplete copies —
                # serving a scatter slice from one would silently drop
                # rows, so they are not even failover candidates
                untried = [
                    node for node in replicas
                    if node.name not in tried[shard]
                    and self.replicas[node.name].is_queryable
                ]
                if not untried:
                    continue  # out of replicas: stays unreachable
                available = [
                    node for node in untried
                    if self.health[node.name].available()
                ]
                # last gasp when the breaker has every replica out: one
                # forced attempt beats guaranteed downtime, and a dead
                # port fails fast anyway
                node = available[0] if available else untried[0]
                tried[shard].add(node.name)
                if node is not replicas[0]:
                    failed_over.add(shard)
                assignment.setdefault(node, []).append(shard)
            if not assignment:
                break
            outcomes = await asyncio.gather(
                *(
                    self._node_exchange(node, request.op, {
                        **base_fields,
                        "shard_filter": {
                            "n_shards": n_shards, "shards": shards,
                        },
                    }, context=context)
                    for node, shards in assignment.items()
                ),
                return_exceptions=True,
            )
            for (node, shards), outcome in zip(assignment.items(), outcomes):
                if isinstance(outcome, UpstreamError):
                    continue  # shards stay in remaining; next round
                if isinstance(outcome, BaseException):
                    raise outcome
                if not outcome.ok:
                    # a logical refusal (bad_query, sql_syntax): the
                    # request itself is wrong, every shard would refuse
                    # identically — propagate instead of half-merging
                    refusal = outcome
                    break
                gathered.append(outcome)
                remaining.difference_update(shards)
        if refusal is not None:
            return refusal.status, dict(refusal.fields), refusal.error
        self.counters.failovers += len(failed_over - remaining)
        # the merge is synchronous, so a stack span is safe here; the
        # trace scope parents it under this request's router hop
        with obs.trace_scope(context), obs.span(
            "router.gather_merge", op=request.op, shards=n_shards,
            unreachable=len(remaining),
        ):
            return self._merge_scatter(request.op, gathered, sorted(remaining))

    def _merge_scatter(
        self,
        op: str,
        gathered: list[Response],
        unreachable: list[int],
    ) -> tuple[str, dict[str, Any], Optional[dict[str, Any]]]:
        rows: list[Any] = []
        stats_sum: dict[str, int] = {}
        pruned_partitions = 0
        for response in gathered:
            rows.extend(response.get("rows", []))
            pruned_partitions += response.get("pruned_partitions", 0)
            for key, value in (response.get("stats") or {}).items():
                if isinstance(value, (int, float)):
                    stats_sum[key] = stats_sum.get(key, 0) + value
        merged: dict[str, Any] = {"rows": rows, "row_count": len(rows)}
        if op == "query":
            merged["stats"] = stats_sum
        else:
            merged["pruned_partitions"] = pruned_partitions
        merged["shards_total"] = self.placement.n_shards
        merged["shards_answered"] = self.placement.n_shards - len(unreachable)
        if not unreachable:
            self.counters.replies_complete += 1
            return protocol.OK, merged, None
        if len(unreachable) == self.placement.n_shards:
            self.counters.replies_unavailable += 1
            obs.event("router.scatter_unroutable", op=op)
            return protocol.NODE_UNAVAILABLE, {
                "shards_total": self.placement.n_shards,
                "shards_answered": 0,
            }, protocol.error_body(
                "no_reachable_replica",
                "no shard had a reachable replica; back off and retry",
            )
        # the partial-result contract: the rows we *did* gather, plus an
        # explicit account of what is missing
        merged["unreachable_shards"] = unreachable
        self.counters.replies_degraded += 1
        obs.event(
            "router.scatter_degraded", op=op, unreachable_shards=unreachable,
        )
        return protocol.DEGRADED, merged, protocol.error_body(
            "partial_result",
            f"{len(unreachable)} of {self.placement.n_shards} shards had no "
            f"reachable replica; rows are incomplete",
        )

    # ------------------------------------------------------------------
    # admin ops
    # ------------------------------------------------------------------
    async def _fanout_maintain(
        self, request: Request
    ) -> tuple[str, dict[str, Any], Optional[dict[str, Any]]]:
        fields: dict[str, Any] = {}
        if request.get("checkpoint"):
            fields["checkpoint"] = True
        context = _request_trace_context(request)

        async def one(node: NodeAddress) -> tuple[str, dict[str, Any]]:
            try:
                response = await self._node_exchange(
                    node, "maintain", fields, context=context
                )
            except UpstreamError as err:
                return node.name, {"error": str(err)}
            return node.name, dict(response.fields)

        outcomes = await asyncio.gather(
            *(one(node) for node in self.placement.nodes)
        )
        return protocol.OK, {"nodes": dict(outcomes)}, None

    async def _gather_heat(self, request: Request) -> dict[str, Any]:
        """Partition heat federated from every node's ``stats``.

        Opt-in (``stats`` with ``heat: true``) so the plain stats verb
        stays a synchronous local snapshot.  Keys are ``node/pid``; a
        node that cannot be scraped — or that serves with adaptation
        disabled — simply contributes nothing.
        """
        context = _request_trace_context(request)

        async def one(node: NodeAddress) -> tuple[str, dict[str, Any]]:
            try:
                response = await self._node_exchange(
                    node, "stats", {}, context=context
                )
            except UpstreamError:
                return node.name, {}
            return node.name, response.get("heat") or {}

        outcomes = await asyncio.gather(
            *(one(node) for node in self.placement.nodes)
        )
        return {
            f"{name}/{pid}": doc
            for name, heat in outcomes for pid, doc in heat.items()
        }

    async def _fanout_obs(
        self, request: Request
    ) -> tuple[str, dict[str, Any], Optional[dict[str, Any]]]:
        """Metrics federation: scatter ``obs`` to every node, merge.

        Every node's observability document (flushed registry + trace
        digests) is gathered concurrently; a node that cannot be
        scraped contributes an explicit *unreachable* marker instead of
        vanishing.  The router's own document joins the set (labeled
        ``tier="router"``), and the merged cluster view — per-node
        labeled samples, bucket-merged histograms, staleness marks —
        is returned under ``cluster``.
        """
        context = _request_trace_context(request)
        started = time.perf_counter()

        async def one(node: NodeAddress) -> dict[str, Any]:
            try:
                response = await self._node_exchange(
                    node, "obs", {}, context=context
                )
            except UpstreamError as err:
                return unreachable_document(node.name, str(err))
            document = dict(response.fields)
            document.setdefault("name", node.name)
            return document

        documents = list(await asyncio.gather(
            *(one(node) for node in self.placement.nodes)
        ))
        documents.append(
            local_obs_document(self.config.name, tier="router")
        )
        view = merge_documents(documents)
        self.counters.obs_scrapes += 1
        obs.observe(
            "repro_router_obs_scrape_seconds",
            time.perf_counter() - started,
            "Cluster observability scrape latency (fan-out + merge)",
            buckets=SERVER_LATENCY_BUCKETS,
        )
        return protocol.OK, {"cluster": view.to_json_obj()}, None

    def _stats_snapshot(self) -> dict[str, Any]:
        return {
            "router": self.config.name,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "draining": self._draining,
            "placement": self.placement.as_dict(),
            "health": {
                name: health.as_dict() for name, health in self.health.items()
            },
            "pools": {
                name: pool.as_dict() for name, pool in self.pools.items()
            },
            "replicas": {
                name: tracker.as_dict()
                for name, tracker in self.replicas.items()
            },
            "catchup_buffered": {
                name: len(buffer) for name, buffer in self._catchup.items()
            },
            "catchup_dropped": dict(self._catchup_dropped),
            "sessions": [s.as_dict() for s in self.sessions.values()],
            "counters": self.counters.as_dict(),
        }
