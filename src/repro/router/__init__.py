"""The routing tier: partition-aware serving over a cluster of nodes.

This package marries the two halves the roadmap kept separate — the
asyncio serving layer (:mod:`repro.server`) and the fault-tolerant
replicated cluster model (:mod:`repro.distributed`) — into one
network-facing system:

* :mod:`repro.router.placement` — the deterministic shard → replica-set
  mapping (``shard_of(eid) = eid % n_shards``, rotated replicas);
* :mod:`repro.router.health` — the per-node circuit breaker
  (healthy → suspect → ejected → probing) with jittered, exponentially
  growing ejection windows;
* :mod:`repro.router.pool` — pooled upstream connections where *every*
  failure mode (refused, timeout, EOF, garbage) collapses into one
  typed :class:`~repro.router.pool.UpstreamError`;
* :mod:`repro.router.router` — :class:`CinderellaRouter` itself:
  partition-aware write fan-out with catch-up buffering, scatter-gather
  reads with per-shard replica failover, and the explicit
  complete / ``degraded`` / ``node_unavailable`` partial-result
  contract on the wire;
* :mod:`repro.router.testing` — :class:`ClusterHarness`, the
  nodes-plus-router topology with ``kill_node`` / ``restart_node``
  chaos verbs.

Start one with ``python -m repro route``; see
``docs/DISTRIBUTED_SERVING.md``.
"""

from repro.router.health import EJECTED, HEALTHY, PROBING, SUSPECT, NodeHealth
from repro.router.placement import (
    ROUTER_EID_BASE,
    NodeAddress,
    PlacementMap,
)
from repro.router.pool import NodePool, UpstreamError
from repro.router.router import CinderellaRouter, RouterConfig
from repro.router.testing import ClusterHarness, RouterThread

__all__ = [
    "CinderellaRouter",
    "ClusterHarness",
    "EJECTED",
    "HEALTHY",
    "NodeAddress",
    "NodeHealth",
    "NodePool",
    "PROBING",
    "PlacementMap",
    "ROUTER_EID_BASE",
    "RouterConfig",
    "RouterThread",
    "SUSPECT",
    "UpstreamError",
]
