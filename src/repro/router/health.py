"""Per-node health tracking: the router's circuit breaker.

One :class:`NodeHealth` per upstream node, driven purely by the
router's own observations (``record_success`` / ``record_failure``) —
there is no out-of-band health checker, the traffic *is* the probe.
The state machine:

::

    HEALTHY ──failure──▶ SUSPECT ──more failures──▶ EJECTED
       ▲                    │                          │ window expires
       │◀──────success──────┘                          ▼
       └───────────success────────────────────────  PROBING
                                                       │ failure
                                                       └──▶ EJECTED (longer)

* ``SUSPECT`` — recent failures, still routable; one success clears it.
* ``EJECTED`` — ``failure_threshold`` consecutive failures tripped the
  breaker: the node is skipped for a jittered, exponentially growing
  window (``eject_base_s · 2^(ejections−1)``, capped at
  ``eject_max_s``, scaled by a uniform factor in ``[0.5, 1.0)`` so a
  cluster of routers does not re-probe a recovering node in lockstep).
* ``PROBING`` — the window expired; the next request is allowed through
  as the probe.  Success restores the node (and lets the router replay
  its catch-up buffer); failure re-ejects with a longer window.

State transitions are emitted as ``router.node_health`` events so the
chaos suite can assert the breaker actually tripped and recovered.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

from repro.obs import runtime as obs

HEALTHY = "healthy"
SUSPECT = "suspect"
EJECTED = "ejected"
PROBING = "probing"

#: replica data-lifecycle states (orthogonal to the breaker: the breaker
#: tracks *reachability*, the replica tracker tracks *data integrity*)
REPLICA_HEALTHY = "healthy"
REPLICA_LAGGING = "lagging"
REPLICA_DIVERGED = "diverged"
REPLICA_RESYNCING = "resyncing"


class NodeHealth:
    """Breaker state for one upstream node (see module docstring)."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        eject_base_s: float = 0.2,
        eject_max_s: float = 5.0,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.eject_base_s = eject_base_s
        self.eject_max_s = eject_max_s
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.successes = 0
        self.failures = 0
        self.ejections = 0
        self.eject_until = 0.0

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def record_success(self) -> bool:
        """Note one successful exchange; returns True when this success
        *restored* an ejected/probing node (the router replays the
        node's catch-up buffer exactly then)."""
        self.successes += 1
        self.consecutive_failures = 0
        previous = self.state
        if previous != HEALTHY:
            self._transition(HEALTHY)
        return previous in (EJECTED, PROBING)

    def record_failure(self) -> bool:
        """Note one failed exchange; returns True when this failure
        tripped (or re-tripped) the breaker."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == PROBING:
            # the probe itself failed: straight back out, longer window
            self._eject()
            return True
        if self.state == EJECTED:
            return False  # already out; nothing new to trip
        if self.consecutive_failures >= self.failure_threshold:
            self._eject()
            return True
        if self.state == HEALTHY:
            self._transition(SUSPECT)
        return False

    def available(self) -> bool:
        """May the router send this node a request right now?

        An ejected node whose window has expired flips to ``PROBING``
        and becomes available — the next request through is the probe.
        """
        if self.state in (HEALTHY, SUSPECT, PROBING):
            return True
        if self._clock() >= self.eject_until:
            self._transition(PROBING)
            return True
        return False

    @property
    def probing(self) -> bool:
        return self.state == PROBING

    # ------------------------------------------------------------------
    # mechanics
    # ------------------------------------------------------------------
    def _eject(self) -> None:
        self.ejections += 1
        window = min(
            self.eject_max_s,
            self.eject_base_s * (2 ** (self.ejections - 1)),
        )
        window *= 0.5 + self._rng.random() * 0.5
        self.eject_until = self._clock() + window
        self._transition(EJECTED, window_s=round(window, 4))

    def _transition(self, to_state: str, **detail: float) -> None:
        from_state, self.state = self.state, to_state
        obs.event(
            "router.node_health", node=self.name,
            from_state=from_state, to_state=to_state,
            consecutive_failures=self.consecutive_failures, **detail,
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "successes": self.successes,
            "failures": self.failures,
            "ejections": self.ejections,
        }


class ReplicaTracker:
    """Data-lifecycle state of one replica, orthogonal to the breaker.

    The breaker answers "can I reach this node right now?"; the tracker
    answers "is this node's *copy of its shards* trustworthy?".  The
    lifecycle::

        HEALTHY ──missed a write (buffered)──▶ LAGGING
           ▲                                      │ buffer replayed dry
           │◀─────────────────────────────────────┘
           │                                      │ buffer overflowed
           │                                      ▼
           │◀──resync verified────RESYNCING◀───DIVERGED
                                      │  failure   ▲
                                      └────────────┘

    * ``LAGGING`` — the node missed fanned-out writes; they sit in the
      router's bounded catch-up buffer and replay on the next successful
      exchange.  Still serves reads (documented as slightly stale).
    * ``DIVERGED`` — the catch-up budget overflowed: replaying the
      buffer alone can no longer reconstruct the replica, so the router
      stops pretending.  The node is excluded from write fan-out,
      scatter reads, and catch-up replay until a resync rebuilds it.
    * ``RESYNCING`` — the router is streaming a peer's copy onto the
      node.  Write buffering resumes the moment this state is entered
      (*before* the snapshot cut), so every live write is either in the
      copied snapshot or in the buffer drained at the end — none fall
      between.

    Transitions are emitted as ``router.replica_state`` events so the
    chaos suite can assert divergence was declared and repaired.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = REPLICA_HEALTHY
        self.divergences = 0
        self.resyncs = 0
        self.last_reason: Optional[str] = None

    @property
    def in_write_set(self) -> bool:
        """May writes be fanned out to (or buffered for) this replica?"""
        return self.state in (REPLICA_HEALTHY, REPLICA_LAGGING)

    @property
    def is_queryable(self) -> bool:
        """May scatter reads be served from this replica?"""
        return self.state in (REPLICA_HEALTHY, REPLICA_LAGGING)

    def mark_lagging(self) -> None:
        if self.state == REPLICA_HEALTHY:
            self._transition(REPLICA_LAGGING)

    def mark_caught_up(self) -> None:
        if self.state == REPLICA_LAGGING:
            self._transition(REPLICA_HEALTHY)

    def mark_diverged(self, reason: str) -> bool:
        """Declare the replica's copy unreconstructable by replay alone;
        returns True when this call newly diverged it (a resync in
        flight is aborted by this: its completion check sees the state
        changed under it)."""
        if self.state == REPLICA_DIVERGED:
            return False
        self.divergences += 1
        self.last_reason = reason
        self._transition(REPLICA_DIVERGED, reason=reason)
        return True

    def begin_resync(self) -> None:
        if self.state != REPLICA_DIVERGED:
            raise RuntimeError(
                f"cannot resync replica {self.name} from state {self.state}"
            )
        self.resyncs += 1
        self._transition(REPLICA_RESYNCING)

    def complete_resync(self, lagging: bool = False) -> None:
        """Re-admit the replica; ``lagging=True`` when writes buffered
        during verification still await replay."""
        if self.state != REPLICA_RESYNCING:
            raise RuntimeError(
                f"cannot complete resync of replica {self.name} "
                f"from state {self.state}"
            )
        self.last_reason = None
        self._transition(REPLICA_LAGGING if lagging else REPLICA_HEALTHY)

    def fail_resync(self, reason: str) -> None:
        if self.state == REPLICA_RESYNCING:
            self.last_reason = reason
            self._transition(REPLICA_DIVERGED, reason=reason)

    def _transition(self, to_state: str, **detail: object) -> None:
        from_state, self.state = self.state, to_state
        obs.event(
            "router.replica_state", node=self.name,
            from_state=from_state, to_state=to_state, **detail,
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "state": self.state,
            "divergences": self.divergences,
            "resyncs": self.resyncs,
            "last_reason": self.last_reason,
        }
