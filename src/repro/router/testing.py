"""In-process cluster harness: serving nodes + router, kill switches.

:class:`RouterThread` mirrors :class:`~repro.server.testing.ServerThread`
for the routing tier.  :class:`ClusterHarness` assembles the whole
topology the chaos suite exercises — *n* WAL-backed serving nodes, a
placement map over them, and one router in front — and exposes the two
verbs chaos testing needs:

* :meth:`ClusterHarness.kill_node` — crash a node (RSTs on the wire,
  queued writes dropped, only the WAL survives);
* :meth:`ClusterHarness.restart_node` — bring it back on the *same*
  port with the *same* WAL, which the fresh server replays before
  binding; the router's breaker probes it back in and replays the
  catch-up buffer.

Every node serves a real :class:`~repro.table.partitioned.CinderellaTable`
with deliberately small partitions, so splits and merges keep firing
under chaos traffic — the paper's online adaptivity running *while*
nodes die.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Optional, Union

from repro.core.config import CinderellaConfig
from repro.query.cache import QueryResultCache
from repro.router.placement import NodeAddress, PlacementMap
from repro.router.router import CinderellaRouter, RouterConfig
from repro.server.client import ServerClient
from repro.server.server import CinderellaServer, ServerConfig
from repro.server.testing import ServerThread
from repro.table.partitioned import CinderellaTable


class RouterThread:
    """Run one router on its own event loop in a background thread."""

    def __init__(
        self,
        router: CinderellaRouter,
        startup_timeout_s: float = 10.0,
    ) -> None:
        self.router = router
        self._startup_timeout_s = startup_timeout_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: tuple[str, int] = ("", 0)

    def start(self) -> "RouterThread":
        if self._thread is not None:
            raise RuntimeError("harness already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-router-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(self._startup_timeout_s):
            raise TimeoutError("router failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("router startup failed") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        try:
            self.address = await self.router.start()
        except BaseException as err:  # surface bind errors to the caller
            self._startup_error = err
            self._started.set()
            return
        self._started.set()
        await self.router.serve_until_stopped()

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive() and self._startup_error is None:
            future = asyncio.run_coroutine_threadsafe(
                self.router.stop(), self._loop
            )
            future.result(timeout=timeout_s)
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():  # pragma: no cover - debugging aid
            raise TimeoutError("router loop thread did not exit")
        self._thread = None
        self._loop = None

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()


def small_partition_table() -> CinderellaTable:
    """A table whose partitions split early — chaos traffic keeps the
    adaptive machinery (splits, merges) firing on every node."""
    return CinderellaTable(
        CinderellaConfig(
            max_partition_size=12.0, weight=0.3, use_synopsis_index=True
        ),
        result_cache=QueryResultCache(thread_safe=True),
    )


class ClusterHarness:
    """N WAL-backed serving nodes + placement + router, in one process."""

    def __init__(
        self,
        wal_dir: Union[str, Path],
        n_nodes: int = 3,
        n_shards: int = 0,
        replication_factor: int = 2,
        server_config: Optional[ServerConfig] = None,
        router_config: Optional[RouterConfig] = None,
        checkpointing: bool = False,
        archiving: bool = False,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        self.wal_dir = Path(wal_dir)
        self.n_nodes = n_nodes
        self._n_shards = n_shards
        self._replication_factor = replication_factor
        self._server_config = server_config
        self._router_config = router_config
        #: checkpointing stays opt-in: several chaos assertions count on
        #: restart replaying the *full* WAL (wal_records_replayed > 0)
        self._checkpointing = checkpointing
        self._archiving = archiving
        self.nodes: dict[str, ServerThread] = {}
        self.addresses: dict[str, NodeAddress] = {}
        self.placement: Optional[PlacementMap] = None
        self.router: Optional[CinderellaRouter] = None
        self.router_thread: Optional[RouterThread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _node_config(self, name: str, port: int = 0) -> ServerConfig:
        base = self._server_config
        if base is None:
            base = ServerConfig(maintenance_interval_s=0.05)
        from dataclasses import replace

        extra: dict[str, object] = {}
        if self._checkpointing:
            extra["snapshot_path"] = self.wal_dir / f"{name}.snapshot"
        if self._archiving:
            extra["snapshot_path"] = self.wal_dir / f"{name}.snapshot"
            extra["archive_dir"] = self.wal_dir / f"{name}-archive"
        return replace(
            base, name=name, port=port,
            wal_path=self.wal_dir / f"{name}.wal",
            **extra,
        )

    def start(self) -> "ClusterHarness":
        for index in range(self.n_nodes):
            name = f"node{index}"
            server = CinderellaServer(
                table=small_partition_table(),
                config=self._node_config(name),
            )
            thread = ServerThread(server=server).start()
            self.nodes[name] = thread
            host, port = thread.address
            self.addresses[name] = NodeAddress(name=name, host=host, port=port)
        self.placement = PlacementMap(
            [self.addresses[f"node{i}"] for i in range(self.n_nodes)],
            n_shards=self._n_shards,
            replication_factor=self._replication_factor,
        )
        self.router = CinderellaRouter(
            self.placement, config=self._router_config
        )
        self.router_thread = RouterThread(self.router).start()
        return self

    @property
    def router_address(self) -> tuple[str, int]:
        assert self.router_thread is not None
        return self.router_thread.address

    def client(self, check: bool = True, timeout: float = 30.0) -> ServerClient:
        """A blocking client connected to the router."""
        host, port = self.router_address
        return ServerClient(host, port, timeout=timeout, check=check)

    def node_client(self, name: str, check: bool = True) -> ServerClient:
        """A blocking client connected directly to one serving node."""
        address = self.addresses[name]
        return ServerClient(address.host, address.port, check=check)

    # ------------------------------------------------------------------
    # chaos verbs
    # ------------------------------------------------------------------
    def kill_node(self, name: str) -> None:
        """Crash *name*: RST every connection, drop unacked writes.
        The node's WAL stays on disk — that is the durability contract
        under test."""
        self.nodes[name].kill()

    def restart_node(self, name: str) -> None:
        """Bring a killed node back on its old port with its old WAL.

        The fresh server replays the journal before binding, so every
        write it acknowledged in its previous life is served again."""
        address = self.addresses[name]
        server = CinderellaServer(
            table=small_partition_table(),
            config=self._node_config(name, port=address.port),
        )
        thread = ServerThread(server=server).start()
        self.nodes[name] = thread

    def stop(self) -> None:
        if self.router_thread is not None:
            self.router_thread.stop()
            self.router_thread = None
        for thread in self.nodes.values():
            try:
                thread.stop()
            except TimeoutError:  # pragma: no cover - debugging aid
                pass
        self.nodes.clear()

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()
