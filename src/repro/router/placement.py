"""Placement: which serving node owns which shard of the entity space.

The routing tier needs one deterministic answer to "where does entity
*e* live?" that every component — router, chaos harness, benchmark —
computes identically.  The scheme is the simplest one that still
exercises partition-aware routing and replica failover:

* the entity space is striped into ``n_shards`` shards by
  ``shard_of(eid) = eid % n_shards``;
* shard *s* is served by ``replication_factor`` nodes, *replica j* being
  ``nodes[(s + j) % len(nodes)]`` — the classic rotation, so every node
  carries the same number of primaries and the replica sets of adjacent
  shards overlap minimally.

Each node runs an ordinary :class:`~repro.server.server.CinderellaServer`
holding the *full* Cinderella machinery for its slice: the adaptive
partitioning from the paper operates per node, the placement map only
decides which node sees which entities.  (This is the PHD-Store /
AdPart layering: inter-node placement is hash-based and cheap, the
interesting adaptivity happens inside each node.)

Entity ids chosen by the router itself (eid-less inserts) start at
:data:`ROUTER_EID_BASE` so they can never collide with ids a client
picked explicitly — client-chosen ids stay below it in every test and
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

#: router-assigned entity ids start here (client-chosen ids stay below)
ROUTER_EID_BASE = 1 << 40


@dataclass(frozen=True)
class NodeAddress:
    """One serving node: a stable name plus its TCP endpoint."""

    name: str
    host: str
    port: int

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "host": self.host, "port": self.port}


class PlacementMap:
    """The deterministic shard → replica-set mapping (see module docs)."""

    def __init__(
        self,
        nodes: Sequence[NodeAddress],
        n_shards: int = 0,
        replication_factor: int = 1,
    ) -> None:
        if not nodes:
            raise ValueError("placement needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in placement: {names}")
        if n_shards <= 0:
            # default: a few shards per node, so scatter-gather and
            # rebalance-by-shard stay meaningful even on tiny clusters
            n_shards = 4 * len(nodes)
        if replication_factor <= 0:
            raise ValueError(
                f"replication_factor must be positive, got {replication_factor}"
            )
        self.nodes: tuple[NodeAddress, ...] = tuple(nodes)
        self.n_shards = n_shards
        #: effective factor — capped at the node count (replicating a
        #: shard twice onto the same node buys nothing)
        self.replication_factor = min(replication_factor, len(self.nodes))

    # ------------------------------------------------------------------
    # the mapping
    # ------------------------------------------------------------------
    def shard_of(self, eid: int) -> int:
        """The shard owning entity *eid*."""
        return eid % self.n_shards

    def replicas(self, shard: int) -> tuple[NodeAddress, ...]:
        """The replica set of *shard*, primary first."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.n_shards})")
        count = len(self.nodes)
        return tuple(
            self.nodes[(shard + j) % count]
            for j in range(self.replication_factor)
        )

    def replicas_of_eid(self, eid: int) -> tuple[NodeAddress, ...]:
        """The replica set serving entity *eid*, primary first."""
        return self.replicas(self.shard_of(eid))

    @property
    def shards(self) -> range:
        return range(self.n_shards)

    def nodes_of(self, name: str) -> NodeAddress:
        """Look a node up by name; raises ``KeyError`` when unknown."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} in placement")

    def shards_on(self, name: str) -> list[int]:
        """Every shard that has a replica on node *name*."""
        return [
            shard for shard in self.shards
            if any(node.name == name for node in self.replicas(shard))
        ]

    def as_dict(self) -> dict[str, Any]:
        """The placement as plain data (stats op, docs, debugging)."""
        return {
            "n_shards": self.n_shards,
            "replication_factor": self.replication_factor,
            "nodes": [node.as_dict() for node in self.nodes],
            "shards": {
                str(shard): [node.name for node in self.replicas(shard)]
                for shard in self.shards
            },
        }
