"""Per-node upstream connections: a small asyncio pool.

The router keeps a handful of warm connections to every serving node
(opening a TCP connection per proxied request would double the wire
latency the tier is supposed to hide).  The pool is deliberately
minimal:

* :meth:`NodePool.request` borrows an idle connection — or dials a new
  one — sends one frame, awaits one response line, and returns the
  connection to the idle stack;
* *any* failure (connect refused, timeout, EOF mid-frame, an oversized
  or malformed response line) closes that connection and raises
  :class:`UpstreamError` — the single exception type the router's
  failover logic catches.  A node that answers garbage is handled
  exactly like a node that does not answer at all: the connection is
  poisoned, the breaker records a failure, the next replica is tried.

Timeouts are per exchange (``timeout_s`` covers connect, send, and the
response read separately), so one hung node costs the fan-out at most
one timeout, not a compounding stack of them.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.server import protocol
from repro.server.protocol import ProtocolError, Response
from repro.router.placement import NodeAddress


class UpstreamError(ConnectionError):
    """Talking to one upstream node failed (transport or framing)."""

    def __init__(self, node: str, reason: str) -> None:
        super().__init__(f"upstream {node}: {reason}")
        self.node = node
        self.reason = reason


class _Conn:
    """One open upstream connection."""

    __slots__ = ("reader", "writer")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass  # already dead; nothing to release


class NodePool:
    """Pooled request/response exchanges with one serving node."""

    def __init__(
        self,
        address: NodeAddress,
        timeout_s: float = 2.0,
        max_idle: int = 2,
    ) -> None:
        self.address = address
        self.timeout_s = timeout_s
        self.max_idle = max_idle
        self._idle: list[_Conn] = []
        self._next_id = 0
        #: exchanges completed / connections dialed (stats)
        self.exchanges = 0
        self.dials = 0

    async def _checkout(self) -> _Conn:
        if self._idle:
            return self._idle.pop()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    self.address.host, self.address.port,
                    limit=protocol.MAX_LINE_BYTES,
                ),
                timeout=self.timeout_s,
            )
        except (OSError, asyncio.TimeoutError) as err:
            raise UpstreamError(
                self.address.name, f"connect failed: {err or type(err).__name__}"
            ) from None
        self.dials += 1
        return _Conn(reader, writer)

    async def request(self, op: str, **fields: Any) -> Response:
        """One request/response exchange; raises :class:`UpstreamError`
        on any transport or framing failure."""
        conn = await self._checkout()
        self._next_id += 1
        request_id = self._next_id
        try:
            conn.writer.write(protocol.encode_request(op, request_id, **fields))
            await asyncio.wait_for(conn.writer.drain(), timeout=self.timeout_s)
            try:
                line = await asyncio.wait_for(
                    conn.reader.readline(), timeout=self.timeout_s
                )
            except (asyncio.LimitOverrunError, ValueError):
                raise UpstreamError(
                    self.address.name, "oversized response frame"
                ) from None
            if not line:
                raise UpstreamError(
                    self.address.name, "connection closed mid-exchange"
                )
            try:
                response = protocol.decode_response(line)
            except ProtocolError as err:
                raise UpstreamError(
                    self.address.name, f"malformed response: {err}"
                ) from None
            if response.id not in (request_id, 0):
                raise UpstreamError(
                    self.address.name,
                    f"response id {response.id} for request {request_id}",
                )
        except UpstreamError:
            conn.close()
            raise
        except (OSError, asyncio.TimeoutError) as err:
            conn.close()
            raise UpstreamError(
                self.address.name, f"exchange failed: {err or type(err).__name__}"
            ) from None
        self.exchanges += 1
        if len(self._idle) < self.max_idle:
            self._idle.append(conn)
        else:
            conn.close()
        return response

    def close(self) -> None:
        """Drop every idle connection (in-flight exchanges self-close)."""
        while self._idle:
            self._idle.pop().close()

    def as_dict(self) -> dict[str, Any]:
        return {
            "node": self.address.name,
            "idle": len(self._idle),
            "dials": self.dials,
            "exchanges": self.exchanges,
        }
