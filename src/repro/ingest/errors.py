"""Typed admission errors of the hardened ingest pipeline.

Every way an ingest request can be refused has its own exception class,
all rooted at :class:`IngestError`.  The pipeline itself never lets
these escape unless it runs in *strict* mode — by default a failed
request is diverted to the quarantine store with the error attached —
but handlers, tests, and operators get a precise, machine-matchable
reason instead of a generic ``ValueError``.
"""

from __future__ import annotations


class IngestError(ValueError):
    """Base class of every admission failure.

    ``code`` is a stable machine-readable identifier (also used by the
    quarantine store and the CLI), independent of the human message.
    """

    code = "ingest-error"


class InvalidEntityIdError(IngestError):
    """The entity id is not a non-negative integer."""

    code = "invalid-entity-id"


class EmptySynopsisError(IngestError):
    """The entity's synopsis is empty (no attribute bit set).

    Cinderella's rating and pruning are defined over attribute sets; an
    entity without attributes can never be rated against a partition.
    """

    code = "empty-synopsis"


class InvalidEntitySizeError(IngestError):
    """SIZE(e) is negative or not a number.

    Definition 2's capacity constraint only makes sense for
    non-negative sizes; a negative payload would corrupt partition
    size accounting.
    """

    code = "invalid-entity-size"


class UnknownAttributeError(IngestError):
    """The synopsis sets bits outside the declared attribute universe."""

    code = "unknown-attribute"


class DuplicateEntityError(IngestError):
    """An insert (or load row) reuses an entity id already stored."""

    code = "duplicate-entity"


class QuarantinedEntityError(IngestError):
    """An update/delete addresses an entity held in quarantine.

    The entity never made it into the catalog, so mutating it would
    silently target nothing; the request must wait until the original
    row is repaired and requeued.
    """

    code = "quarantined-entity"


class UnknownEntityError(IngestError):
    """An update/delete addresses an entity id that was never stored."""

    code = "unknown-entity"


class OverloadedError(IngestError):
    """Backpressure: the pending queue is at its admission bound.

    This is the *explicit* overload outcome — the caller must back off
    and resubmit; nothing was enqueued, quarantined, or dropped.
    """

    code = "overloaded"
