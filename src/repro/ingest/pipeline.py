"""The hardened ingest pipeline: validate → admit → apply.

Sits in front of a partitioner (or a distributed store — any *sink*
with the ``insert``/``update``/``delete`` outcome contract) and turns
raw modification requests into admitted catalog operations:

* **validation** — every request is checked before it touches the
  catalog: entity ids must be non-negative integers, synopses must be
  non-empty and inside the declared attribute universe, SIZE(e) inputs
  must be non-negative, inserts must not reuse stored ids, and
  updates/deletes must address live (non-quarantined) entities.  Each
  failure is a typed :class:`~repro.ingest.errors.IngestError`.
* **quarantine** — failed requests are dead-lettered to a
  :class:`~repro.ingest.quarantine.QuarantineStore` (with the error
  attached) instead of being dropped or poisoning the catalog;
  :meth:`IngestPipeline.requeue` feeds repaired rows back in.
* **backpressure** — admission is bounded: when ``max_pending``
  requests are queued, further submissions get the explicit
  ``OVERLOADED`` outcome (nothing enqueued) until :meth:`process`
  drains the queue.
* **idempotent retry** — requests may carry a client-chosen ``op_id``;
  a request whose op id was already applied is acknowledged as
  ``REPLAYED`` without touching the catalog, so at-least-once senders
  cannot double-apply.
"""

from __future__ import annotations

import inspect
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.catalog.catalog import EntityNotFoundError
from repro.ingest.errors import (
    DuplicateEntityError,
    EmptySynopsisError,
    IngestError,
    InvalidEntityIdError,
    InvalidEntitySizeError,
    OverloadedError,
    QuarantinedEntityError,
    UnknownAttributeError,
    UnknownEntityError,
)
from repro.ingest.quarantine import QuarantineStore
from repro.metrics.telemetry import RobustnessCounters
from repro.obs import runtime as obs

#: admission outcomes
QUEUED = "queued"
APPLIED = "applied"
REPLAYED = "replayed"
OVERLOADED = "overloaded"
QUARANTINED = "quarantined"
#: refused but not quarantinable (the entity id itself is unusable as a
#: dead-letter key)
REJECTED = "rejected"

_KINDS = ("insert", "update", "delete")


@dataclass(frozen=True)
class IngestRequest:
    """One raw modification request, as received from a client."""

    kind: str
    eid: Any
    mask: Optional[int] = None
    payload_bytes: Any = 0
    #: client-chosen idempotency key (avoid the journal's ``op-<n>``
    #: namespace); None opts out of replay detection
    op_id: Optional[str] = None


@dataclass(frozen=True)
class IngestResult:
    """What the pipeline decided about one request."""

    status: str
    request: IngestRequest
    error: Optional[IngestError] = None
    #: the sink's ModificationOutcome (APPLIED only)
    outcome: Any = None

    @property
    def accepted(self) -> bool:
        return self.status in (QUEUED, APPLIED, REPLAYED)


class IngestPipeline:
    """Bounded, validating, dead-lettering front door of a sink.

    Args:
        sink: object with ``insert(eid, mask, ...)``, ``update``,
            ``delete`` and a ``.catalog`` — a
            :class:`~repro.core.partitioner.CinderellaPartitioner` or a
            :class:`~repro.distributed.store.DistributedUniversalStore`.
        attribute_universe: optional synopsis mask of all declared
            attributes; requests setting bits outside it are refused
            with :class:`UnknownAttributeError`.
        max_pending: admission bound — the backpressure threshold.
        strict: raise the typed error instead of quarantining (the
            fail-fast mode used by tests and batch loaders that want
            the first bad row to abort the load).
    """

    def __init__(
        self,
        sink,
        *,
        attribute_universe: Optional[int] = None,
        max_pending: int = 256,
        quarantine: Optional[QuarantineStore] = None,
        counters: Optional[RobustnessCounters] = None,
        strict: bool = False,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.sink = sink
        self.attribute_universe = attribute_universe
        self.max_pending = max_pending
        self.quarantine = quarantine if quarantine is not None else QuarantineStore()
        if counters is None:
            # share the sink's counters when it keeps its own (the
            # distributed store does), so one dashboard sees both halves
            counters = getattr(sink, "robustness", None) or RobustnessCounters()
        self.counters = counters
        self.strict = strict
        self._pending: deque[IngestRequest] = deque()
        self._applied_op_ids: set[str] = set()
        self._pending_op_ids: set[str] = set()
        parameters = inspect.signature(sink.insert).parameters
        self._sink_takes_payload = "payload_bytes" in parameters
        self._sink_takes_op_id = "op_id" in parameters

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def submit(self, request: IngestRequest) -> IngestResult:
        """Validate and enqueue one request (the bounded front door)."""
        if request.op_id is not None and (
            request.op_id in self._applied_op_ids
            or request.op_id in self._pending_op_ids
        ):
            self.counters.ingest_replayed += 1
            return IngestResult(REPLAYED, request)
        if len(self._pending) >= self.max_pending:
            self.counters.ingest_overloaded += 1
            obs.event(
                "ingest.overloaded", kind=request.kind,
                pending=len(self._pending),
            )
            error = OverloadedError(
                f"ingest queue full ({self.max_pending} pending); back off "
                f"and resubmit"
            )
            if self.strict:
                raise error
            return IngestResult(OVERLOADED, request, error=error)
        try:
            self._validate(request)
        except IngestError as error:
            return self._refuse(request, error)
        self._pending.append(request)
        if request.op_id is not None:
            self._pending_op_ids.add(request.op_id)
        self.counters.observe_queue_depth(len(self._pending))
        return IngestResult(QUEUED, request)

    def process(self, limit: Optional[int] = None) -> list[IngestResult]:
        """Drain (up to *limit*) queued requests into the sink."""
        results: list[IngestResult] = []
        while self._pending and (limit is None or len(results) < limit):
            request = self._pending.popleft()
            if request.op_id is not None:
                self._pending_op_ids.discard(request.op_id)
            results.append(self._apply(request))
        return results

    def ingest(self, request: IngestRequest) -> IngestResult:
        """Submit and, if admitted, immediately apply one request."""
        result = self.submit(request)
        if result.status != QUEUED:
            return result
        return self.process(limit=1)[0]

    def load(self, rows: Iterable[tuple]) -> list[IngestResult]:
        """Bulk-insert ``(eid, mask)`` or ``(eid, mask, payload_bytes)``
        rows through full validation; one result per row, in order."""
        results = []
        for row in rows:
            eid, mask = row[0], row[1]
            payload_bytes = row[2] if len(row) > 2 else 0
            results.append(
                self.ingest(IngestRequest("insert", eid, mask, payload_bytes))
            )
        return results

    def requeue(self, eid: int) -> IngestResult:
        """Resubmit a (repaired) quarantined request.

        The entry is removed from quarantine first; if it fails again
        it lands back there with its attempt count incremented.
        """
        entry = self.quarantine.take(eid)
        self.counters.ingest_requeued += 1
        result = self.submit(entry.request)
        if result.status == OVERLOADED:
            # nothing was admitted — keep the entry dead-lettered
            self.quarantine.restore(entry)
        elif result.status == QUARANTINED:
            # failed again: carry the attempt history forward (take()
            # removed the entry, so add() restarted the count at 1)
            self.quarantine.get(eid).attempts = entry.attempts + 1
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _refuse(self, request: IngestRequest, error: IngestError) -> IngestResult:
        self.counters.ingest_rejected += 1
        if self.strict:
            raise error
        if isinstance(request.eid, int) and not isinstance(request.eid, bool):
            self.quarantine.add(request, error)
            self.counters.ingest_quarantined += 1
            obs.event(
                "ingest.quarantined", eid=request.eid, kind=request.kind,
                code=type(error).__name__,
            )
            return IngestResult(QUARANTINED, request, error=error)
        obs.event(
            "ingest.rejected", kind=request.kind, code=type(error).__name__
        )
        return IngestResult(REJECTED, request, error=error)

    def _validate(self, request: IngestRequest) -> None:
        if request.kind not in _KINDS:
            raise IngestError(f"unknown request kind {request.kind!r}")
        eid = request.eid
        if isinstance(eid, bool) or not isinstance(eid, int) or eid < 0:
            raise InvalidEntityIdError(
                f"entity id must be a non-negative integer, got {eid!r}"
            )
        if request.kind in ("update", "delete"):
            if eid in self.quarantine:
                raise QuarantinedEntityError(
                    f"entity {eid} is quarantined "
                    f"({self.quarantine.get(eid).code}); repair and requeue "
                    f"it before mutating"
                )
            if not self.sink.catalog.has_entity(eid):
                raise UnknownEntityError(f"entity {eid} is not stored")
        if request.kind == "insert":
            if self.sink.catalog.has_entity(eid) or any(
                queued.kind == "insert" and queued.eid == eid
                for queued in self._pending
            ):
                raise DuplicateEntityError(f"entity id {eid} already stored")
        if request.kind in ("insert", "update"):
            mask = request.mask
            if not isinstance(mask, int) or isinstance(mask, bool) or mask < 0:
                raise EmptySynopsisError(
                    f"synopsis must be a non-negative integer mask, got {mask!r}"
                )
            if mask == 0:
                raise EmptySynopsisError(
                    f"entity {eid} has an empty synopsis; Cinderella cannot "
                    f"rate an entity without attributes"
                )
            if self.attribute_universe is not None and mask & ~self.attribute_universe:
                unknown = mask & ~self.attribute_universe
                raise UnknownAttributeError(
                    f"entity {eid} sets undeclared attribute bits {unknown:#x}"
                )
            size = request.payload_bytes
            if isinstance(size, bool) or not isinstance(size, (int, float)):
                raise InvalidEntitySizeError(
                    f"payload size must be a number, got {size!r}"
                )
            if size < 0:
                raise InvalidEntitySizeError(
                    f"entity {eid} has negative payload size {size}"
                )

    def _apply(self, request: IngestRequest) -> IngestResult:
        """Apply one admitted request to the sink."""
        with obs.span(
            "ingest.apply", kind=request.kind, eid=request.eid
        ) as span:
            result = self._apply_to_sink(request)
            if span.is_recording:
                span.set("status", result.status)
        return result

    def _apply_to_sink(self, request: IngestRequest) -> IngestResult:
        kwargs: dict[str, Any] = {}
        if self._sink_takes_op_id and request.op_id is not None:
            kwargs["op_id"] = request.op_id
        try:
            if request.kind == "insert":
                if self._sink_takes_payload:
                    kwargs["payload_bytes"] = int(request.payload_bytes)
                outcome = self.sink.insert(request.eid, request.mask, **kwargs)
            elif request.kind == "update":
                if self._sink_takes_payload:
                    kwargs["payload_bytes"] = int(request.payload_bytes)
                outcome = self.sink.update(request.eid, request.mask, **kwargs)
            else:
                outcome = self.sink.delete(request.eid, **kwargs)
        except IngestError as error:
            return self._refuse(request, error)
        except EntityNotFoundError as error:
            return self._refuse(
                request, UnknownEntityError(f"entity {request.eid}: {error}")
            )
        except ValueError as error:
            # the sink's own integrity refusals (e.g. duplicate ids that
            # raced past validation) are dead-lettered, not propagated
            return self._refuse(request, IngestError(str(error)))
        if request.op_id is not None:
            self._applied_op_ids.add(request.op_id)
        self.counters.ingest_accepted += 1
        return IngestResult(APPLIED, request, outcome=outcome)
