"""Quarantine (dead-letter) store for rejected ingest requests.

A hardened ingest path must not silently drop malformed input: the
pipeline diverts every request that fails validation or application
into this store, together with the typed error that refused it.  An
operator (or a repair job) inspects the entries, fixes the rows, and
:meth:`~repro.ingest.pipeline.IngestPipeline.requeue`\\ s them — the
quarantine keeps the per-entity attempt count so repeated failures are
visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.ingest.errors import IngestError
    from repro.ingest.pipeline import IngestRequest


@dataclass
class QuarantinedEntity:
    """One dead-lettered request and why it was refused."""

    request: "IngestRequest"
    #: stable error code of the refusing :class:`IngestError`
    code: str
    #: human-readable reason (the error message)
    reason: str
    #: how many times this entity has been quarantined (requeue + fail
    #: again increments it)
    attempts: int = 1


class QuarantineStore:
    """Dead-letter storage, addressable by entity id.

    One entry per entity id: a second failure for the same id replaces
    the stored request and bumps ``attempts`` (the newest version of a
    row is the one worth repairing).
    """

    def __init__(self) -> None:
        self._entries: dict[int, QuarantinedEntity] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, eid: int) -> bool:
        return eid in self._entries

    def __iter__(self) -> Iterator[QuarantinedEntity]:
        return iter(self._entries.values())

    def add(self, request: "IngestRequest", error: "IngestError") -> QuarantinedEntity:
        """Dead-letter a request; returns the (new or updated) entry."""
        previous = self._entries.get(request.eid)
        entry = QuarantinedEntity(
            request=request,
            code=error.code,
            reason=str(error),
            attempts=previous.attempts + 1 if previous is not None else 1,
        )
        self._entries[request.eid] = entry
        return entry

    def get(self, eid: int) -> Optional[QuarantinedEntity]:
        return self._entries.get(eid)

    def take(self, eid: int) -> QuarantinedEntity:
        """Remove and return an entry (the requeue path)."""
        try:
            return self._entries.pop(eid)
        except KeyError:
            raise KeyError(f"entity {eid} is not quarantined") from None

    def restore(self, entry: QuarantinedEntity) -> None:
        """Put a taken entry back unchanged (requeue bounced on overload)."""
        self._entries[entry.request.eid] = entry

    def entity_ids(self) -> tuple[int, ...]:
        return tuple(self._entries)

    def summary(self) -> dict[str, int]:
        """Entry count per error code, for reports and the CLI."""
        counts: dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.code] = counts.get(entry.code, 0) + 1
        return counts
