"""Hardened ingest: validation, quarantine, backpressure, idempotency.

See :mod:`repro.ingest.pipeline` for the admission flow and
``docs/ROBUST_INGEST.md`` for the operator-level story.
"""

from repro.ingest.errors import (
    DuplicateEntityError,
    EmptySynopsisError,
    IngestError,
    InvalidEntityIdError,
    InvalidEntitySizeError,
    OverloadedError,
    QuarantinedEntityError,
    UnknownAttributeError,
    UnknownEntityError,
)
from repro.ingest.pipeline import (
    APPLIED,
    IngestPipeline,
    IngestRequest,
    IngestResult,
    OVERLOADED,
    QUARANTINED,
    QUEUED,
    REJECTED,
    REPLAYED,
)
from repro.ingest.quarantine import QuarantinedEntity, QuarantineStore

__all__ = [
    "APPLIED",
    "DuplicateEntityError",
    "EmptySynopsisError",
    "IngestError",
    "IngestPipeline",
    "IngestRequest",
    "IngestResult",
    "InvalidEntityIdError",
    "InvalidEntitySizeError",
    "OVERLOADED",
    "OverloadedError",
    "QUARANTINED",
    "QUEUED",
    "REJECTED",
    "QuarantineStore",
    "QuarantinedEntity",
    "QuarantinedEntityError",
    "REPLAYED",
    "UnknownAttributeError",
    "UnknownEntityError",
]
