"""An asyncio reader–writer lock for the catalog and table.

The serving layer runs queries concurrently (each scan is dispatched to
a worker thread) while mutations stay serialized on the event loop.
Nothing below :mod:`repro.server` was ever built for concurrent access,
so the server brackets every catalog/table touch with this lock:

* **readers** (queries, SQL, stats snapshots) share the lock — any
  number may hold it at once, and the pure-read guarantee means a
  partition scan can never observe a half-applied mutation;
* **writers** (modification batches, merge passes, reorganizations)
  hold it exclusively — no reader runs while the catalog, the heap
  files, or the version clock are mid-change.

The lock is **writer-preferring**: once a writer is waiting, new
readers queue behind it.  A modification burst therefore cannot starve
maintenance, and a query storm cannot starve modifications — the
trade-off Cinderella's online setting needs (queries are frequent and
cheap, mutations rare and structural).

The implementation is a single :class:`asyncio.Condition`; all state
transitions happen on the event loop, so no thread synchronization is
needed even though read *work* runs in worker threads — the loop
acquires on behalf of the thread before dispatching and releases after
joining the result.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager


class AsyncReadWriteLock:
    """Shared/exclusive lock with writer preference (asyncio, not threads).

    >>> lock = AsyncReadWriteLock()
    >>> async def reader():
    ...     async with lock.read_locked():
    ...         ...
    >>> async def writer():
    ...     async with lock.write_locked():
    ...         ...
    """

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        #: telemetry: peak concurrent readers and total acquisitions
        self.max_concurrent_readers = 0
        self.read_acquisitions = 0
        self.write_acquisitions = 0

    # ------------------------------------------------------------------
    # introspection (tests and the stats op read these)
    # ------------------------------------------------------------------
    @property
    def readers(self) -> int:
        """Readers currently holding the lock."""
        return self._readers

    @property
    def writer_active(self) -> bool:
        return self._writer_active

    @property
    def writers_waiting(self) -> int:
        return self._writers_waiting

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    async def acquire_read(self) -> None:
        """Acquire shared; blocks while a writer holds *or waits for* it."""
        async with self._cond:
            while self._writer_active or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
            self.read_acquisitions += 1
            if self._readers > self.max_concurrent_readers:
                self.max_concurrent_readers = self._readers

    async def release_read(self) -> None:
        async with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    async def acquire_write(self) -> None:
        """Acquire exclusive; blocks until all readers have drained."""
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.write_acquisitions += 1

    async def release_write(self) -> None:
        async with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()

    @asynccontextmanager
    async def read_locked(self):
        await self.acquire_read()
        try:
            yield self
        finally:
            await self.release_read()

    @asynccontextmanager
    async def write_locked(self):
        await self.acquire_write()
        try:
            yield self
        finally:
            await self.release_write()
