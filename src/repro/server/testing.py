"""In-process server harness for tests and load generators.

:class:`ServerThread` runs a :class:`~repro.server.server.CinderellaServer`
on a dedicated event loop in a daemon thread, so blocking test code (and
the benchmark's worker threads) can drive it through real sockets:

>>> with ServerThread() as harness:                    # doctest: +SKIP
...     with ServerClient(*harness.address) as client:
...         client.ping()

``stop()`` (also run by ``__exit__``) performs the server's graceful
drain and then joins the loop thread, so by the time the context block
exits the table is quiescent and safe to inspect from the test thread —
the soak suite runs its invariant and cache-coherence checks exactly
there.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.server.server import CinderellaServer, ServerConfig


class ServerThread:
    """Run one server on its own event loop in a background thread."""

    def __init__(
        self,
        server: Optional[CinderellaServer] = None,
        config: Optional[ServerConfig] = None,
        startup_timeout_s: float = 10.0,
    ) -> None:
        self.server = server if server is not None else CinderellaServer(
            config=config
        )
        self._startup_timeout_s = startup_timeout_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: tuple[str, int] = ("", 0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("harness already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(self._startup_timeout_s):
            raise TimeoutError("server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("server startup failed") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        try:
            self.address = await self.server.start()
        except BaseException as err:  # surface bind errors to the caller
            self._startup_error = err
            self._started.set()
            return
        self._started.set()
        await self.server.serve_until_stopped()

    def stop(self, timeout_s: float = 30.0) -> None:
        """Graceful drain, then join the loop thread."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive() and self._startup_error is None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            future.result(timeout=timeout_s)
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():  # pragma: no cover - debugging aid
            raise TimeoutError("server loop thread did not exit")
        self._thread = None
        self._loop = None

    def kill(self, timeout_s: float = 10.0) -> None:
        """Crash the node: no drain, connections get RSTs, queued writes
        die unacknowledged.  The chaos suite uses this to test the
        durability contract — only the WAL survives a :meth:`kill`."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive() and self._startup_error is None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.abort(), self._loop
            )
            future.result(timeout=timeout_s)
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():  # pragma: no cover - debugging aid
            raise TimeoutError("server loop thread did not exit after kill")
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()
