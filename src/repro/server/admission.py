"""Adaptive write admission: queue-based load leveling.

The fixed ``max_pending`` bound the serving layer shipped with was a
blunt instrument — at concurrency 16 it shed 43% of writes while the
batcher was perfectly able to keep up.  This module replaces it with
the *queue-based load leveling* pattern: the admission window tracks
the batcher's measured drain rate, sized so that a full queue drains
within a target latency.  A fast batcher opens the window wide (no
needless shedding); a slow one closes it (queueing cannot hide an
overload — clients are told to back off while the queue still drains
inside the latency target).

``max_pending`` survives as the hard ceiling — a safety bound on queue
memory and on worst-case latency if the rate estimate is ever wrong —
and ``min_window`` keeps the window from collapsing entirely during a
transient stall.  ``max_pending == 0`` still means "admit nothing"
(used by tests to force the shed path deterministically).
"""

from __future__ import annotations


class AdaptiveAdmission:
    """Target-latency-driven admission window over the write queue.

    The batcher reports each flushed batch via :meth:`observe_batch`;
    the drain rate is smoothed with an EWMA and the window becomes::

        window = min(max_pending, max(min_window, rate * target_latency))

    Before any batch has been observed the window sits at
    ``max_pending`` — admission starts permissive and tightens only on
    evidence the batcher cannot keep up.
    """

    def __init__(
        self,
        max_pending: int,
        target_latency_s: float = 0.05,
        min_window: int = 8,
        alpha: float = 0.3,
    ) -> None:
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        if target_latency_s <= 0:
            raise ValueError(
                f"target_latency_s must be positive, got {target_latency_s}"
            )
        if min_window < 1:
            raise ValueError(f"min_window must be >= 1, got {min_window}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.max_pending = max_pending
        self.target_latency_s = target_latency_s
        self.min_window = min(min_window, max_pending) if max_pending else 0
        self.alpha = alpha
        self.rate_ewma = 0.0  # writes/second the batcher drains
        self.window = max_pending
        self.batches_observed = 0

    def admit(self, queued: int) -> bool:
        """Admit one write given the current queue depth?"""
        return queued < self.window

    def observe_batch(self, size: int, duration_s: float) -> None:
        """Fold one flushed batch into the drain-rate estimate."""
        if size <= 0:
            return
        # floor the duration: a sub-microsecond measurement would spike
        # the rate estimate to nonsense
        rate = size / max(duration_s, 1e-6)
        if self.batches_observed == 0:
            self.rate_ewma = rate
        else:
            self.rate_ewma += self.alpha * (rate - self.rate_ewma)
        self.batches_observed += 1
        if self.max_pending == 0:
            self.window = 0
            return
        self.window = min(
            self.max_pending,
            max(self.min_window, int(self.rate_ewma * self.target_latency_s)),
        )
