"""A small blocking client for the serving layer.

Used by the test batteries, the soak suite, and the load generator in
``benchmarks/bench_server.py`` — each worker thread owns one
:class:`ServerClient` (one TCP connection, one session on the server)
and drives it synchronously.  The client is deliberately plain sockets
so it exercises the real wire protocol rather than any asyncio
internals the server happens to share.

>>> with ServerClient(host, port) as client:          # doctest: +SKIP
...     client.insert({"name": "Canon S120", "resolution": 12.1})
...     rows = client.query(["resolution"])
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Iterable, Optional

from repro.obs.runtime import wire_trace
from repro.server.protocol import (
    MAX_LINE_BYTES,
    Response,
    decode_response,
    encode_request,
)


class ServerError(RuntimeError):
    """A response the caller asked to be raised (non-ok, non-retryable)."""

    def __init__(self, response: Response) -> None:
        error = response.error or {}
        super().__init__(
            f"{response.status}: "
            f"[{error.get('code', '?')}] {error.get('message', 'no message')}"
        )
        self.response = response
        self.status = response.status
        self.code = error.get("code")


class ServerClient:
    """One blocking connection speaking the line-delimited JSON protocol.

    Args:
        host, port: where the server listens.
        timeout: per-request socket timeout in seconds.
        check: when True (default) non-ok responses raise
            :class:`ServerError`; when False they are returned like any
            other response, which is what retry loops and the shed-rate
            measurement want.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        check: bool = True,
    ) -> None:
        self.check = check
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> Response:
        """Send one request and block for its response.

        With trace propagation enabled (``obs.enable(propagate=True)``)
        every frame is stamped with a ``trace`` context — the current
        span's position when the caller is inside one, else a fresh
        trace rooted at this request — so the receiving tier's spans
        correlate back to this call site.  Disabled, this is one global
        read.
        """
        self._next_id += 1
        request_id = self._next_id
        if "trace" not in fields:
            trace = wire_trace()
            if trace is not None:
                fields["trace"] = trace
        self._sock.sendall(encode_request(op, request_id, **fields))
        line = self._file.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_response(line)
        if response.id not in (request_id, 0):
            raise ConnectionError(
                f"response id {response.id} does not match request "
                f"id {request_id}"
            )
        if self.check and not response.ok and not response.degraded:
            # degraded responses carry a usable partial result; raising
            # would throw away the rows the router did gather
            raise ServerError(response)
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ping(self, payload: Any = None) -> Response:
        return self.request("ping", payload=payload)

    def insert(
        self, attributes: dict[str, Any], eid: Optional[int] = None
    ) -> Response:
        fields: dict[str, Any] = {"attributes": attributes}
        if eid is not None:
            fields["eid"] = eid
        return self.request("insert", **fields)

    def update(self, eid: int, attributes: dict[str, Any]) -> Response:
        return self.request("update", eid=eid, attributes=attributes)

    def delete(self, eid: int) -> Response:
        return self.request("delete", eid=eid)

    def query(
        self, attributes: Iterable[str], mode: str = "any"
    ) -> list[dict[str, Any]]:
        response = self.request(
            "query", attributes=list(attributes), mode=mode
        )
        if not response.ok and not response.degraded:
            return []  # check=False: shed/refused → no rows
        return response.get("rows", [])

    def query_response(
        self, attributes: Iterable[str], mode: str = "any"
    ) -> Response:
        """Like :meth:`query` but returns the full response (stats etc.)."""
        return self.request("query", attributes=list(attributes), mode=mode)

    def sql(self, text: str) -> Response:
        return self.request("sql", sql=text)

    def stats(self) -> dict[str, Any]:
        return self.request("stats").fields

    def obs(self) -> dict[str, Any]:
        """The observability snapshot (per-node, or federated from a
        router — see ``docs/OBSERVABILITY.md``)."""
        return self.request("obs").fields

    def maintain(self, checkpoint: bool = False) -> Response:
        if checkpoint:
            return self.request("maintain", checkpoint=True)
        return self.request("maintain")

    def shutdown(self) -> Response:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    # retry wrapper (the backpressure contract from the client's side)
    # ------------------------------------------------------------------
    def retrying(
        self,
        op: str,
        *,
        attempts: int = 8,
        base_delay_s: float = 0.005,
        max_delay_s: float = 0.25,
        budget_s: float = 30.0,
        rng: Optional[random.Random] = None,
        **fields: Any,
    ) -> Response:
        """Issue *op*, retrying every retryable status with backoff.

        The uniform client half of the backpressure/failover contract:
        any response whose status is retryable (``overloaded`` shedding,
        ``node_unavailable`` from the router while a shard has no
        reachable replica) is retried with jittered exponential backoff
        — delay ``min(max_delay_s, base_delay_s * 2^(attempt-1))``
        scaled by a uniform factor in ``[0.5, 1.0)`` so synchronized
        clients do not stampede in lockstep — until it succeeds, the
        attempt budget runs out, or ``budget_s`` of wall time has been
        spent (the retry budget: a client stuck behind a long outage
        gives up loudly instead of spinning forever).

        Returns the final response, which may still be retryable when
        every attempt bounced; ``check`` raising is suspended during the
        retries and re-applied (retryable and degraded statuses exempt)
        to the final response.
        """
        if rng is None:
            rng = random
        check_before = self.check
        self.check = False
        deadline = time.monotonic() + budget_s
        try:
            response = self.request(op, **fields)
            attempt = 1
            while response.retryable and attempt < attempts:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                delay = min(max_delay_s, base_delay_s * (2 ** (attempt - 1)))
                delay *= 0.5 + rng.random() * 0.5
                time.sleep(min(delay, remaining))
                response = self.request(op, **fields)
                attempt += 1
        finally:
            self.check = check_before
        if (
            self.check and not response.ok
            and not response.retryable and not response.degraded
        ):
            raise ServerError(response)
        return response
