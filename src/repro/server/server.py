"""The asyncio serving layer: Cinderella answering live traffic.

One :class:`CinderellaServer` owns one
:class:`~repro.table.partitioned.CinderellaTable` and exposes it over
TCP with the line-delimited JSON protocol of
:mod:`repro.server.protocol`.  The concurrency architecture, in one
paragraph:

* every **connection** gets a :class:`Session` and an independent
  request loop; requests on one connection are answered in order,
  requests on different connections interleave freely;
* every **query** (attribute query or SQL) is served from the latest
  :class:`~repro.query.snapshot.TableSnapshot` — an immutable MVCC view
  the writer publishes after every committed batch — directly on the
  event loop, with *no locking at all*: a read can never block on a
  writer and never observes a half-applied batch (snapshot isolation);
* every **modification** goes through *adaptive admission* first
  (:class:`~repro.server.admission.AdaptiveAdmission` — queue-based
  load leveling: the window tracks the batcher's measured drain rate
  under a target latency, bounded by ``max_pending``); submissions past
  the window are shed with the explicit ``overloaded`` status (the
  ingest pipeline's backpressure semantics) instead of queueing
  unboundedly — admitted writes are applied by the single **batcher**
  task, which drains up to ``batch_max`` queued writes and **group
  commits** them on a worker thread: one
  :class:`~repro.txn.transaction.CatalogTransaction` for the whole
  batch (per-op savepoints roll a refused write back exactly while the
  rest proceed), one WAL fsync covering every record, one snapshot
  publish before any ack leaves the server (read-your-writes);
* **maintenance** (merge passes, optional reorganizations) runs as a
  cooperative background task between batches, under the exclusive
  side of the :class:`~repro.server.locks.AsyncReadWriteLock` that
  serializes it against the batcher, so the catalog keeps adapting
  while traffic flows — the paper's online setting made literal;
* **shutdown** is a drain: stop accepting, shed new work with
  ``shutting_down``, flush the write queue, then close every
  connection (reads are non-blocking, so there is nothing to quiesce).

The result cache stays coherent under all of this because snapshots are
published only after a batch's transaction commits (every mutation has
bumped its partition versions by then), and snapshot match caches are
keyed by the immutable per-snapshot record-count prefix;
``tests/test_server_soak.py`` and ``tests/test_isolation.py`` check
exactly that after a concurrent mixed workload.
"""

from __future__ import annotations

import asyncio
import json
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.adapt.controller import AdaptationConfig, AdaptationController
from repro.backup import BackupArchive, apply_record, checkpoint_node
from repro.core.config import CinderellaConfig
from repro.metrics.telemetry import ServerCounters
from repro.obs import runtime as obs
from repro.obs.federation import local_obs_document
from repro.obs.registry import SERVER_LATENCY_BUCKETS
from repro.obs.shims import flush_mirrors
from repro.obs.tracing import TraceContext
from repro.query.cache import QueryResultCache
from repro.query.query import AttributeQuery
from repro.query.snapshot import SnapshotManager, TableSnapshot
from repro.server import protocol
from repro.server.admission import AdaptiveAdmission
from repro.server.locks import AsyncReadWriteLock
from repro.server.protocol import ProtocolError, Request
from repro.storage.snapshot import (
    SnapshotFormatError,
    _decode_value,
    _encode_value,
    load_node_checkpoint,
)
from repro.storage.wal import WriteAheadLog
from repro.table.partitioned import CinderellaTable

# NOTE on spans: the tracer's span stack is per *thread*; concurrent
# tasks on the event loop would interleave enter/exit and mis-parent
# each other's spans if one were held across an ``await``.  Request
# latency is therefore measured directly into a histogram, and spans
# are only opened around purely synchronous regions (batch application,
# maintenance passes) or inside worker threads (query scans).
_REQUEST_SECONDS = "repro_server_request_seconds"
_REQUESTS_TOTAL = "repro_server_requests_total"

# the batch-apply and group-commit (WAL fsync) spans double as latency
# histograms on the server-latency bucket preset — the default bounds
# leave the sub-10ms band where both live almost entirely in one bucket
obs.bind_span_histogram(
    "server.batch", "repro_server_batch_seconds",
    "Group-commit batch apply latency", buckets=SERVER_LATENCY_BUCKETS,
)
obs.bind_span_histogram(
    "server.group_commit", "repro_server_fsync_seconds",
    "Group-commit WAL fsync latency", buckets=SERVER_LATENCY_BUCKETS,
)


def _request_trace_context(request: Request) -> Optional[TraceContext]:
    """The adopted trace context _dispatch stashed on the request (the
    isinstance check also drops a wire-supplied impostor field)."""
    context = request.fields.get("_trace_context")
    return context if isinstance(context, TraceContext) else None


@dataclass
class ServerConfig:
    """Tunables of one serving instance (not the partitioning itself)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests, benchmarks)
    port: int = 0
    #: node name — labels metrics/events when several servers share a
    #: process (one per cluster node behind the router)
    name: str = "node"
    #: write-admission hard ceiling: the adaptive window never exceeds
    #: this many queued modifications (0 = admit nothing)
    max_pending: int = 256
    #: adaptive admission: the window is sized so a full queue drains
    #: within this latency at the batcher's measured rate
    admission_target_latency_s: float = 0.05
    #: adaptive admission: the window never shrinks below this (keeps a
    #: transient stall from collapsing admission entirely)
    admission_min_window: int = 8
    #: modifications applied per group commit
    batch_max: int = 32
    #: how long the batcher lingers for a batch to fill (seconds)
    batch_linger_s: float = 0.002
    #: MVCC snapshots retained beyond the latest (pinned snapshots are
    #: always kept regardless)
    snapshot_retain: int = 8
    #: unused since reads went lock-free via snapshots; kept so existing
    #: deployment configs keep constructing
    max_parallel_reads: int = 8
    #: cooperative maintenance cadence (seconds; 0 disables the task)
    maintenance_interval_s: float = 0.25
    #: merge threshold handed to the maintenance pass
    merge_min_fill: float = 0.25
    #: every Nth maintenance pass also reorganizes (0 = never)
    reorganize_every: int = 0
    #: graceful-drain bound: seconds after which :meth:`stop` gives up
    #: waiting on queued writes and stalled connections and force-closes
    #: whatever survives with a typed ``shutting_down`` status
    drain_deadline_s: float = 5.0
    #: durability journal: when set, every acknowledged write is in this
    #: WAL (group-committed per batch) before its ack leaves the server,
    #: and :meth:`start` replays the log so a restarted node rejoins
    #: with every acknowledged write intact
    wal_path: Optional[Union[str, Path]] = None
    #: node checkpoint file: when set (with ``wal_path``), checkpoints
    #: snapshot the table here and reset the WAL, so restart replay is
    #: bounded by the writes since the last checkpoint instead of the
    #: node's whole history
    snapshot_path: Optional[Union[str, Path]] = None
    #: checkpoint cadence: after this many journaled writes the next
    #: maintenance pass checkpoints (0 = only on ``maintain`` requests
    #: with ``checkpoint: true`` and at the end of a resync)
    checkpoint_every: int = 0
    #: backup archive root: when set, every checkpoint first archives
    #: the WAL segment it is about to truncate (and a copy of the
    #: snapshot), enabling point-in-time recovery via ``repro recover``
    archive_dir: Optional[Union[str, Path]] = None
    #: every Nth maintenance pass also consults the adaptation
    #: controller (0 disables the closed loop entirely)
    adapt_every: int = 0
    #: decision-pipeline tunables of the controller (defaults apply
    #: when ``adapt_every`` is set and this is left ``None``)
    adaptation: Optional[AdaptationConfig] = None


@dataclass
class Session:
    """Per-connection bookkeeping."""

    sid: int
    peer: str
    opened_monotonic: float
    requests: int = 0
    errors: int = 0
    ops: dict[str, int] = field(default_factory=dict)
    closing: bool = False

    def observe(self, op: str, ok: bool) -> None:
        self.requests += 1
        self.ops[op] = self.ops.get(op, 0) + 1
        if not ok:
            self.errors += 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "sid": self.sid,
            "peer": self.peer,
            "age_s": round(time.monotonic() - self.opened_monotonic, 3),
            "requests": self.requests,
            "errors": self.errors,
            "ops": dict(self.ops),
        }


class _OpRefused(Exception):
    """A request the server answers with a non-ok status (no traceback)."""

    def __init__(self, status: str, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass
class _PendingWrite:
    """One admitted modification waiting for the batcher."""

    request: Request
    future: asyncio.Future


class _Raw:
    """A pre-serialized response fragment from the snapshot fast path.

    Holds everything of the wire line after the request id; the
    dispatcher splices ``{"id":N`` in front instead of re-encoding the
    rows through ``json.dumps`` — repeat queries cost no serialization.
    """

    __slots__ = ("status", "fragment")

    def __init__(self, status: str, fragment: bytes) -> None:
        self.status = status
        self.fragment = fragment


class CinderellaServer:
    """A Cinderella table behind a TCP socket (see the module docstring)."""

    def __init__(
        self,
        table: Optional[CinderellaTable] = None,
        config: Optional[ServerConfig] = None,
        table_config: Optional[CinderellaConfig] = None,
    ) -> None:
        if table is None:
            if table_config is None:
                table_config = CinderellaConfig(
                    max_partition_size=500.0, weight=0.3,
                    use_synopsis_index=True,
                )
            table = CinderellaTable(
                table_config, result_cache=QueryResultCache(thread_safe=True)
            )
        self.table = table
        self.config = config if config is not None else ServerConfig()
        self.counters = ServerCounters()
        #: the closed adaptation loop, consulted from the maintenance
        #: slot every ``adapt_every`` passes (None while disabled)
        self.adapt: Optional[AdaptationController] = None
        if self.config.adapt_every > 0:
            self.adapt = AdaptationController(self.config.adaptation)
            self.adapt.bind_table(self.table)
        self.lock = AsyncReadWriteLock()
        self.sessions: dict[int, Session] = {}
        self._next_sid = 1
        self._write_queue: asyncio.Queue[_PendingWrite] = asyncio.Queue()
        self._snapshots = SnapshotManager(retain=self.config.snapshot_retain)
        self._admission = AdaptiveAdmission(
            self.config.max_pending,
            target_latency_s=self.config.admission_target_latency_s,
            min_window=self.config.admission_min_window,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._maintenance_task: Optional[asyncio.Task] = None
        self._stop_task: Optional[asyncio.Task] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._draining = False
        self._aborted = False
        self._stopped = asyncio.Event()
        self._writes_since_maintenance = 0
        self._maintenance_passes = 0
        self._started_monotonic = 0.0
        self._wal: Optional[WriteAheadLog] = None
        self._archive: Optional[BackupArchive] = (
            BackupArchive(self.config.archive_dir)
            if self.config.archive_dir is not None else None
        )
        self._wal_writes_since_checkpoint = 0
        self._last_checkpoint_seq = 0
        # per-dispatch metric children, pre-resolved per (op)/(op, status)
        # and keyed on the registry's identity so an obs.enable() cycle
        # (which swaps the registry) invalidates the cache.  _dispatch
        # runs for every request; going through the runtime facade there
        # costs a label-key build per call that this skips entirely
        self._dispatch_metrics: Optional[
            tuple[Any, dict[str, Any], dict[tuple[str, str], Any]]
        ] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — useful after an ephemeral bind."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind, start the background tasks, and begin accepting.

        With ``wal_path`` configured the journal is opened — and any
        existing records replayed into the table — *before* the socket
        binds, so a restarted node never serves a request against a
        state missing writes it acknowledged in a previous life.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._recover_state()
        # first snapshot before the socket binds: a query can never find
        # no published state to serve from
        self._publish()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._batcher_task = asyncio.create_task(
            self._batcher(), name="repro-server-batcher"
        )
        if self.config.maintenance_interval_s > 0:
            self._maintenance_task = asyncio.create_task(
                self._maintenance_loop(), name="repro-server-maintenance"
            )
        self._started_monotonic = time.monotonic()
        host, port = self.address
        obs.event("server.started", host=host, port=port)
        return host, port

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` op) completes."""
        await self._stopped.wait()

    def _recover_state(self) -> None:
        """Restore durable state before binding: checkpoint, then WAL tail.

        With a checkpoint on disk the table is rebuilt from it and only
        WAL records *after* the covered sequence replay on top — the
        sequence skip is what makes recovery exact (a record is never
        applied twice).  A checkpoint that fails its integrity check is
        ignored in favor of full WAL replay, which is always correct as
        long as the journal reaches back to sequence zero.
        """
        checkpoint_seq = 0
        snapshot_path = self.config.snapshot_path
        if snapshot_path is not None and Path(snapshot_path).exists():
            try:
                cache = self.table.result_cache
                if cache is not None:
                    cache.clear()
                    cache.counters = None  # rewired by the fresh table
                self.table, checkpoint_seq = load_node_checkpoint(
                    snapshot_path, result_cache=cache
                )
            except SnapshotFormatError as err:
                checkpoint_seq = 0
                obs.event(
                    "server.checkpoint_rejected", node=self.config.name,
                    path=str(snapshot_path), error=str(err),
                )
            else:
                self._last_checkpoint_seq = checkpoint_seq
                obs.event(
                    "server.checkpoint_loaded", node=self.config.name,
                    path=str(snapshot_path), wal_seq=checkpoint_seq,
                )
        if self.config.wal_path is not None:
            self._open_and_replay_wal(after_seq=checkpoint_seq)
        if self.adapt is not None:
            # checkpoint load may have replaced the table object
            self.adapt.bind_table(self.table)

    def _open_and_replay_wal(self, after_seq: int = 0) -> None:
        """Open the durability journal and re-apply its records, skipping
        everything a loaded checkpoint already covers."""
        assert self.config.wal_path is not None
        self._wal = WriteAheadLog(self.config.wal_path)
        replayed = 0
        for record in self._wal.records():
            if record.seq <= after_seq:
                continue  # the checkpoint already holds this write
            if apply_record(self.table, record):
                replayed += 1
            else:
                obs.event(
                    "server.wal_replay_skip", node=self.config.name,
                    seq=record.seq, op=record.op,
                )
        self.counters.wal_records_replayed += replayed
        if replayed:
            obs.event(
                "server.wal_replayed", node=self.config.name,
                records=replayed, path=str(self.config.wal_path),
            )

    async def stop(self) -> None:
        """Graceful drain, bounded: flush queued writes and finish
        in-flight work, but only until ``drain_deadline_s`` — past the
        deadline, still-queued writes are refused with a typed
        ``shutting_down`` status and surviving connections are
        force-closed, so one stalled client can never hang shutdown."""
        if self._server is None:  # never started: nothing to drain
            self._stopped.set()
            return
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        deadline = time.monotonic() + self.config.drain_deadline_s
        forced = False
        obs.event("server.draining", queued=self._write_queue.qsize())
        self._server.close()  # stop accepting
        await self._server.wait_closed()
        # flush: the batcher keeps applying while the queue drains
        try:
            await asyncio.wait_for(
                self._write_queue.join(),
                timeout=max(0.0, deadline - time.monotonic()),
            )
        except asyncio.TimeoutError:
            forced = True
        if self._batcher_task is not None:
            self._batcher_task.cancel()
            await asyncio.gather(self._batcher_task, return_exceptions=True)
        if forced:
            # past the deadline with writes still queued: answer each
            # with a typed refusal instead of leaving futures hanging
            while not self._write_queue.empty():
                pending = self._write_queue.get_nowait()
                self._resolve(pending, refusal=_OpRefused(
                    protocol.SHUTTING_DOWN, "drain_deadline",
                    "drain deadline reached before this write was applied",
                ))
                self._write_queue.task_done()
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            await asyncio.gather(self._maintenance_task, return_exceptions=True)
        # reads never block: they serve from an immutable snapshot on
        # the event loop, so there is no in-flight scan to quiesce
        for session in self.sessions.values():
            session.closing = True
        # handler tasks blocked in readline() only notice `closing` on
        # the next frame; yield once so finished dispatches flush their
        # responses, then force EOF on every remaining stream
        await asyncio.sleep(0)
        for writer in list(self._writers.values()):
            writer.close()
        if self._conn_tasks:
            _done, survivors = await asyncio.wait(
                list(self._conn_tasks),
                timeout=max(0.05, deadline - time.monotonic()),
            )
            if survivors:
                # a close() is graceful — it still waits for the kernel
                # buffer to drain, which a client that stopped reading
                # can stall forever.  The deadline's teeth: abort.
                forced = True
                self._force_close_connections()
                await asyncio.wait(list(survivors), timeout=1.0)
        if self._wal is not None:
            self._wal.close()
        obs.event(
            "server.stopped", node=self.config.name,
            sessions=len(self.sessions), forced=forced,
        )
        self._stopped.set()

    def _force_close_connections(self) -> None:
        """Abort every surviving connection with a best-effort typed frame."""
        for sid, writer in list(self._writers.items()):
            try:
                writer.write(protocol.encode_response(
                    0, protocol.SHUTTING_DOWN,
                    error=protocol.error_body(
                        "drain_deadline",
                        "connection force-closed at the drain deadline",
                    ),
                ))
            except Exception:
                pass  # transport already dying; the abort below settles it
            transport = writer.transport
            if transport is not None:
                transport.abort()
            self.counters.connections_force_closed += 1
            obs.event(
                "server.force_close", sid=sid, node=self.config.name
            )
        for task in list(self._conn_tasks):
            task.cancel()

    async def abort(self) -> None:
        """Crash the node: RST every connection, cancel every task, drop
        queued-but-unacknowledged writes, keep only what the WAL already
        holds.  The chaos suite's kill switch — the durability contract
        is that acknowledged writes survive exactly this plus a restart
        (:meth:`start` replays the journal before binding)."""
        self._aborted = True
        self._draining = True
        if self._server is not None:
            self._server.close()
        for task in (self._batcher_task, self._maintenance_task):
            if task is not None:
                task.cancel()
        for writer in list(self._writers.values()):
            transport = writer.transport
            if transport is not None:
                transport.abort()  # RST, no drain: the crash on the wire
        for task in list(self._conn_tasks):
            task.cancel()
        # writes admitted but never applied die silently, like a crash
        while not self._write_queue.empty():
            pending = self._write_queue.get_nowait()
            if not pending.future.done():
                pending.future.cancel()
            self._write_queue.task_done()
        if self._wal is not None:
            self._wal.close()
        obs.event("server.aborted", node=self.config.name)
        self._stopped.set()
        await asyncio.sleep(0)  # let cancellations propagate

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        session = Session(
            sid=self._next_sid, peer=peer, opened_monotonic=time.monotonic()
        )
        self._next_sid += 1
        self.sessions[session.sid] = session
        self._writers[session.sid] = writer
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.counters.connections_opened += 1
        obs.event("server.connect", sid=session.sid, peer=peer)
        out: list[bytes] = []  # responses accumulated for one flush
        try:
            while not session.closing:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # an over-long frame: answer once, then give up on the
                    # stream (framing can no longer be trusted)
                    self.counters.bad_requests += 1
                    out.append(protocol.encode_response(
                        0, protocol.BAD_REQUEST,
                        error=protocol.error_body(
                            "frame_too_long",
                            f"frame exceeds {protocol.MAX_LINE_BYTES} bytes",
                        ),
                    ))
                    writer.write(b"".join(out))
                    out.clear()
                    await writer.drain()
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                out.append(await self._dispatch(line.strip(), session))
                # pipelined clients batch many requests per segment;
                # answering each with its own send syscall dominates the
                # loop at high concurrency, so hold responses until the
                # read buffer has no complete frame left (or the batch
                # grows past a bound), then flush them in one write
                if (
                    len(out) < 128
                    and not session.closing
                    and b"\n" in getattr(reader, "_buffer", b"")
                ):
                    continue
                writer.write(out[0] if len(out) == 1 else b"".join(out))
                out.clear()
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-response
        except asyncio.CancelledError:
            pass  # force-close/abort cancelled us: end the task quietly
        finally:
            self.sessions.pop(session.sid, None)
            self._writers.pop(session.sid, None)
            if task is not None:
                self._conn_tasks.discard(task)
            self.counters.connections_closed += 1
            obs.event(
                "server.disconnect", sid=session.sid,
                requests=session.requests,
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes, session: Session) -> bytes:
        """Decode, route, and encode one request; never raises."""
        try:
            request = protocol.decode_request(line)
        except ProtocolError as err:
            self.counters.bad_requests += 1
            session.observe("?", ok=False)
            return protocol.encode_response(
                0, protocol.BAD_REQUEST,
                error=protocol.error_body("protocol", str(err)),
            )
        self.counters.requests_total += 1
        started = time.perf_counter()
        trace_context: Optional[TraceContext] = None
        wire = request.fields.pop("trace", None)
        if wire is not None:
            # adopt the caller's trace context: this request's span
            # becomes a child of the caller's span.  The context rides
            # on the request object because handlers run concurrently
            # on the loop — a thread-local would bleed across tasks
            trace_context = obs.adopt_wire_trace(wire)
            if trace_context is not None:
                request.fields["_trace_context"] = trace_context
        raw: Optional[_Raw] = None
        try:
            outcome = await self._route(request, session)
            if isinstance(outcome, _Raw):
                raw = outcome
                status = outcome.status
                fields = {}
            else:
                status, fields = outcome
            error = None
        except _OpRefused as refusal:
            status = refusal.status
            fields = {}
            error = protocol.error_body(refusal.code, str(refusal))
        except Exception as err:  # a handler bug must not kill the loop
            status = protocol.ERROR
            fields = {}
            error = protocol.error_body(
                "internal", f"{type(err).__name__}: {err}"
            )
        ended = time.perf_counter()
        registry = obs.registry()
        if registry is not None:
            cache = self._dispatch_metrics
            if cache is None or cache[0] is not registry:
                cache = self._dispatch_metrics = (registry, {}, {})
            op = request.op
            histogram = cache[1].get(op)
            if histogram is None:
                histogram = cache[1][op] = registry.histogram(
                    _REQUEST_SECONDS,
                    "Server request latency by op "
                    "(admission wait included)",
                    ("op",), buckets=SERVER_LATENCY_BUCKETS,
                ).labels(op=op)
            histogram.observe(ended - started)
            counter = cache[2].get((op, status))
            if counter is None:
                counter = cache[2][(op, status)] = registry.counter(
                    _REQUESTS_TOTAL,
                    "Server requests by op and status",
                    ("op", "status"),
                ).labels(op=op, status=status)
            counter.inc()
        ok = status in protocol.SUCCESS_STATUSES
        session.observe(request.op, ok=ok)
        if not ok:
            self.counters.requests_failed += 1
        if trace_context is not None:
            # the node's hop in the distributed trace.  Recorded after
            # the fact (record_remote_span) because this coroutine
            # awaited — a stack-held span would mis-parent interleaved
            # tasks; synchronous children (query execution) already
            # nested under this context via trace_scope
            obs.record_remote_span(
                "node.request", started, ended, trace_context,
                error=None if ok else status,
                op=request.op, node=self.config.name, status=status,
            )
        if raw is not None:
            return b'{"id":' + str(request.id).encode() + raw.fragment
        return protocol.encode_response(
            request.id, status, error=error, **fields
        )

    async def _route(
        self, request: Request, session: Session
    ) -> tuple[str, dict[str, Any]]:
        op = request.op
        if op == "ping":
            return protocol.OK, {"payload": request.get("payload")}
        if op in ("insert", "update", "delete"):
            return await self._handle_write(request)
        if op == "query":
            return await self._handle_query(request)
        if op == "sql":
            return await self._handle_sql(request)
        if op == "stats":
            return protocol.OK, self._stats_snapshot()
        if op == "obs":
            return protocol.OK, self._obs_snapshot()
        if op == "maintain":
            return await self._handle_maintain(request)
        if op == "sync_snapshot":
            return await self._handle_sync_snapshot(request)
        if op == "sync_delta":
            return await self._handle_sync_delta(request)
        if op == "shutdown":
            session.closing = True
            self._stop_task = asyncio.get_running_loop().create_task(self.stop())
            return protocol.OK, {"draining": True}
        raise _OpRefused(  # unreachable: decode_request validates ops
            protocol.BAD_REQUEST, "unknown_op", f"unhandled op {op!r}"
        )

    # ------------------------------------------------------------------
    # writes: admission → queue → batcher
    # ------------------------------------------------------------------
    async def _handle_write(self, request: Request) -> "_Raw":
        if self._draining:
            self.counters.writes_shed_shutdown += 1
            raise _OpRefused(
                protocol.SHUTTING_DOWN, "draining",
                "server is draining; no new modifications",
            )
        self._validate_write(request)
        if not self._admission.admit(self._write_queue.qsize()):
            # explicit shedding, the ingest pipeline's OVERLOADED contract:
            # nothing is enqueued, the client backs off and resubmits
            self.counters.writes_shed_overloaded += 1
            obs.event(
                "server.shed", op=request.op,
                pending=self._write_queue.qsize(),
                window=self._admission.window,
            )
            raise _OpRefused(
                protocol.OVERLOADED, "overloaded",
                f"write queue full ({self._write_queue.qsize()} pending, "
                f"window {self._admission.window}); back off and resubmit",
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._write_queue.put_nowait(_PendingWrite(request, future))
        depth = self._write_queue.qsize()
        if depth > self.counters.queue_high_watermark:
            self.counters.queue_high_watermark = depth
        obs.gauge_set(
            "repro_server_queue_depth", depth,
            "Modifications queued behind the batcher",
        )
        return await future

    def _validate_write(self, request: Request) -> None:
        """Shape checks before admission (the ingest pipeline's spirit:
        refuse before anything is enqueued)."""
        op = request.op
        if op in ("insert", "update"):
            attributes = request.get("attributes")
            if not isinstance(attributes, dict) or not attributes:
                raise _OpRefused(
                    protocol.REJECTED, "empty_synopsis",
                    f"{op} needs a non-empty 'attributes' object; Cinderella "
                    f"cannot rate an entity without attributes",
                )
            if not all(isinstance(name, str) for name in attributes):
                raise _OpRefused(
                    protocol.REJECTED, "bad_attributes",
                    "attribute names must be strings",
                )
        eid = request.get("eid")
        if op == "insert":
            if eid is not None and (
                isinstance(eid, bool) or not isinstance(eid, int) or eid < 0
            ):
                raise _OpRefused(
                    protocol.REJECTED, "invalid_entity_id",
                    f"entity id must be a non-negative integer, got {eid!r}",
                )
        else:
            if isinstance(eid, bool) or not isinstance(eid, int) or eid < 0:
                raise _OpRefused(
                    protocol.REJECTED, "invalid_entity_id",
                    f"{op} needs a non-negative integer 'eid', got {eid!r}",
                )

    async def _batcher(self) -> None:
        """Drain queued writes in group-committed batches."""
        while True:
            first = await self._write_queue.get()
            if self.config.batch_linger_s > 0 and (
                self._write_queue.qsize() + 1 < self.config.batch_max
            ):
                await asyncio.sleep(self.config.batch_linger_s)
            batch = [first]
            while (
                len(batch) < self.config.batch_max
                and not self._write_queue.empty()
            ):
                batch.append(self._write_queue.get_nowait())
            started = time.perf_counter()
            # the write lock only serializes against maintenance and
            # sync deltas now — readers never take it
            async with self.lock.write_locked():
                acked, refused = await asyncio.to_thread(
                    self._apply_batch, batch
                )
            # asyncio futures are not thread-safe: verdicts come back
            # from the worker thread and resolve here, on the loop —
            # and only after the publish inside _apply_batch, so every
            # acked client immediately reads its own write
            for pending, refusal in refused:
                self._resolve(pending, refusal=refusal)
            for pending, _fields, raw in acked:
                self._resolve(pending, raw=raw)
            self._admission.observe_batch(
                len(batch), time.perf_counter() - started
            )
            self.counters.admission_window = self._admission.window
            obs.gauge_set(
                "repro_server_admission_window", self._admission.window,
                "Adaptive write-admission window",
            )
            obs.observe(
                "repro_server_batch_size", len(batch),
                "Writes drained per group commit",
            )
            self.counters.batches_flushed += 1
            self._writes_since_maintenance += len(batch)
            for _ in batch:
                self._write_queue.task_done()
            obs.gauge_set(
                "repro_server_queue_depth", self._write_queue.qsize(),
                "Modifications queued behind the batcher",
            )

    def _apply_batch(
        self, batch: list[_PendingWrite]
    ) -> tuple[
        list[tuple[_PendingWrite, dict[str, Any]]],
        list[tuple[_PendingWrite, _OpRefused]],
    ]:
        """Group-commit one batch on a worker thread.

        One undo-log transaction covers the whole batch; a savepoint
        before each operation rolls a refused write back exactly while
        the batch's earlier successes stand.  After the commit the new
        state is published as a snapshot, every success is journaled,
        and one fsync — the group commit — makes them all durable.
        Nothing here touches futures (asyncio futures are not
        thread-safe): verdicts return to the batcher for resolution.
        """
        acked: list[tuple[_PendingWrite, dict[str, Any], _Raw]] = []
        refused: list[tuple[_PendingWrite, _OpRefused]] = []
        txn = self.table.catalog.begin_transaction()
        try:
            with obs.span("server.batch", size=len(batch)):
                for pending in batch:
                    request = pending.request
                    savepoint = txn.savepoint()
                    try:
                        fields = self._apply_to_table(request)
                    except _OpRefused as refusal:
                        txn.rollback_to(savepoint)
                        self.counters.writes_rejected += 1
                        refused.append((pending, refusal))
                    except Exception as err:
                        # unexpected — the savepoint restores the exact
                        # pre-op catalog, so one poisoned request cannot
                        # corrupt the batch
                        txn.rollback_to(savepoint)
                        self.counters.writes_rejected += 1
                        obs.event(
                            "server.write_rollback", op=request.op,
                            error=f"{type(err).__name__}: {err}",
                        )
                        refused.append((pending, _OpRefused(
                            protocol.ERROR, "internal",
                            f"{type(err).__name__}: {err}",
                        )))
                    else:
                        self.counters.writes_applied += 1
                        # pre-serialize the ack on the worker thread:
                        # the loop splices the request id in front of
                        # this fragment instead of re-encoding JSON
                        acked.append((pending, fields, _Raw(
                            protocol.APPLIED,
                            (
                                f',"ok":true,"status":"applied"'
                                f',"eid":{fields["eid"]}'
                                ',"partition":'
                                f'{json.dumps(fields["partition"])}'
                                f',"splits":{fields["splits"]}'
                                f',"moves":{fields["moves"]}'
                                f',"in_place":'
                                f'{"true" if fields["in_place"] else "false"}'
                                "}\n"
                            ).encode(),
                        )))
        except BaseException:
            txn.rollback()
            raise
        txn.commit()
        if acked:
            self._publish()
        if self._wal is not None and acked:
            for pending, fields, _raw in acked:
                request = pending.request
                payload: dict[str, Any] = {"eid": fields["eid"]}
                if request.op in ("insert", "update"):
                    payload["attributes"] = request.get("attributes")
                self._wal.append(request.op, payload, sync=False)
                self.counters.wal_writes_logged += 1
                self._wal_writes_since_checkpoint += 1
            try:
                with obs.span("server.group_commit", records=len(acked)):
                    self._wal.sync()
            except (OSError, ValueError):
                # the journal vanished under us (abort mid-batch): a
                # write that is not durable must not be acked — every
                # would-be ack becomes a typed refusal so no client
                # hangs on an unresolved future
                refused.extend(
                    (pending, _OpRefused(
                        protocol.ERROR, "not_durable",
                        "write applied but could not be made durable",
                    ))
                    for pending, _fields, _raw in acked
                )
                return [], refused
        return acked, refused

    def _apply_to_table(self, request: Request) -> dict[str, Any]:
        table = self.table
        if request.op == "insert":
            eid = request.get("eid")
            try:
                outcome = table.insert(request.get("attributes"), entity_id=eid)
            except ValueError as err:
                raise _OpRefused(
                    protocol.REJECTED, "duplicate_entity", str(err)
                ) from None
        elif request.op == "update":
            try:
                outcome = table.update(
                    request.get("eid"), request.get("attributes")
                )
            except KeyError as err:
                raise _OpRefused(
                    protocol.REJECTED, "unknown_entity", str(err)
                ) from None
        else:
            try:
                outcome = table.delete(request.get("eid"))
            except KeyError as err:
                raise _OpRefused(
                    protocol.REJECTED, "unknown_entity", str(err)
                ) from None
        return {
            "eid": outcome.entity_id,
            "partition": outcome.partition_id,
            "splits": outcome.splits,
            "moves": len(outcome.moves),
            "in_place": outcome.in_place,
        }

    def _resolve(
        self,
        pending: _PendingWrite,
        raw: Optional[_Raw] = None,
        refusal: Optional[_OpRefused] = None,
    ) -> None:
        """Hand the batcher's verdict back to the waiting connection."""
        if pending.future.cancelled():  # the connection died while queued
            return
        if refusal is not None:
            pending.future.set_exception(refusal)
        else:
            pending.future.set_result(raw)

    # ------------------------------------------------------------------
    # reads: lock-free, from the latest MVCC snapshot
    # ------------------------------------------------------------------
    def _publish(self) -> TableSnapshot:
        """Publish the table's committed state as the latest snapshot.

        Called by every writer after its transaction commits (batch
        apply and sync deltas on the worker thread, maintenance after a
        merge/reorganize, :meth:`start` after recovery); the manager's
        own lock makes it safe from any thread.
        """
        snapshot = self._snapshots.publish(self.table)
        self.counters.snapshots_published = self._snapshots.published
        self.counters.snapshots_retired = self._snapshots.retired
        obs.gauge_set(
            "repro_server_snapshot_age_seconds", 0.0,
            "Seconds since the latest snapshot was published",
        )
        obs.gauge_set(
            "repro_server_snapshots_retained",
            self._snapshots.retained_count(),
            "MVCC snapshots currently retained",
        )
        return snapshot

    def _latest_snapshot(self) -> TableSnapshot:
        """The snapshot reads serve from; never ``None`` once started.

        No pin is needed on the event-loop read path: there is no await
        between grabbing the snapshot and serving from it, and the
        manager never collects the latest snapshot.
        """
        snapshot = self._snapshots.latest
        if snapshot is None:  # handler exercised without start() (tests)
            snapshot = self._publish()
        return snapshot

    async def _handle_query(
        self, request: Request
    ) -> Union[_Raw, tuple[str, dict[str, Any]]]:
        attributes = request.get("attributes")
        mode = request.get("mode", "any")
        if (
            not isinstance(attributes, (list, tuple))
            or not attributes
            or not all(isinstance(name, str) for name in attributes)
        ):
            raise _OpRefused(
                protocol.BAD_REQUEST, "bad_query",
                "query needs a non-empty 'attributes' list of strings",
            )
        try:
            query = AttributeQuery(tuple(attributes), mode)
        except ValueError as err:
            raise _OpRefused(
                protocol.BAD_REQUEST, "bad_query", str(err)
            ) from None
        eid_filter = self._shard_filter(request)
        snapshot = self._latest_snapshot()
        self.counters.queries_served += 1
        self.counters.snapshot_reads += 1
        if self.adapt is not None:
            # feed the workload trace from the serve path: the mask, the
            # partitions this shape would scan (shared plan cache), and
            # an exemplar so the calibrator can replay the shape
            self.adapt.observe_query(
                query.synopsis_mask(snapshot.dictionary),
                snapshot.surviving_pids(query),
                version=snapshot.version_clock,
                exemplar=(query.attributes, query.mode),
            )
        context = _request_trace_context(request)
        if eid_filter is None:
            # the hot path: a pre-serialized fragment straight from the
            # snapshot's response cache (or built once and cached).
            # trace_scope is safe here — serve_query is synchronous —
            # and parents any execution spans (index prune, scan) under
            # this request's hop in the distributed trace
            with obs.trace_scope(context):
                fragment, _row_count, from_cache = snapshot.serve_query(query)
            if from_cache:
                self.counters.snapshot_response_cache_hits += 1
            return _Raw(protocol.OK, fragment)
        with obs.trace_scope(context):
            result = snapshot.execute(query, eid_filter=eid_filter)
        stats = result.stats
        return protocol.OK, {
            "rows": result.rows,
            "row_count": len(result.rows),
            "stats": {
                "partitions_total": stats.partitions_total,
                "partitions_scanned": stats.partitions_scanned,
                "partitions_pruned": stats.partitions_pruned,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
            },
        }

    async def _handle_sql(self, request: Request) -> tuple[str, dict[str, Any]]:
        text = request.get("sql")
        if not isinstance(text, str) or not text.strip():
            raise _OpRefused(
                protocol.BAD_REQUEST, "bad_sql", "sql op needs a 'sql' string"
            )
        from repro.sql import SqlSyntaxError, execute

        eid_filter = self._shard_filter(request)
        snapshot = self._latest_snapshot()
        try:
            with obs.trace_scope(_request_trace_context(request)):
                result = execute(text, snapshot, eid_filter=eid_filter)
        except SqlSyntaxError as err:
            raise _OpRefused(
                protocol.BAD_REQUEST, "sql_syntax", str(err)
            ) from None
        self.counters.sql_served += 1
        self.counters.snapshot_reads += 1
        return protocol.OK, {
            "rows": result.rows,
            "row_count": len(result.rows),
            "pruned_partitions": len(result.pruned_pids),
        }

    @staticmethod
    def _shard_filter(request: Request):
        """Compile an optional ``shard_filter`` field into an eid filter.

        The routing tier's shard-scoped reads: a node holding replicas
        of several shards must answer for exactly the subset the router
        assigned it, or scatter-gather over a replicated placement would
        double-count rows.
        """
        spec = request.get("shard_filter")
        if spec is None:
            return None
        if (
            not isinstance(spec, dict)
            or not isinstance(spec.get("n_shards"), int)
            or isinstance(spec.get("n_shards"), bool)
            or spec["n_shards"] <= 0
            or not isinstance(spec.get("shards"), list)
            or not all(
                isinstance(s, int) and not isinstance(s, bool)
                for s in spec["shards"]
            )
        ):
            raise _OpRefused(
                protocol.BAD_REQUEST, "bad_shard_filter",
                "shard_filter needs {'n_shards': int > 0, 'shards': [int]}",
            )
        n_shards = spec["n_shards"]
        shards = frozenset(spec["shards"])
        return lambda eid: eid % n_shards in shards

    # ------------------------------------------------------------------
    # maintenance: cooperative, between batches
    # ------------------------------------------------------------------
    async def _maintenance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.maintenance_interval_s)
            if self._writes_since_maintenance == 0:
                continue  # nothing changed; stay off the write lock
            await self._maintenance_pass()

    async def _maintenance_pass(
        self, force_checkpoint: bool = False
    ) -> dict[str, Any]:
        """One merge pass (and every Nth time a reorganization); also
        takes the periodic node checkpoint when one is due."""
        async with self.lock.write_locked():
            # all catalog mutation runs on a worker thread; readers keep
            # serving the pre-maintenance snapshot until the publish
            merged, reorganized = await asyncio.to_thread(
                self._maintain_locked
            )
            # checkpoint inside the write lock (the table is quiesced)
            # but outside the span (fsyncs run on a worker thread and a
            # span must not cross an await)
            checkpoint = None
            if force_checkpoint or self._checkpoint_due():
                checkpoint = await asyncio.to_thread(self._checkpoint_locked)
        obs.event("server.maintenance", merged=merged, reorganized=reorganized)
        result = {"merged": merged, "reorganized": reorganized}
        if checkpoint is not None:
            result["checkpoint"] = checkpoint
        return result

    def _maintain_locked(self) -> tuple[int, bool]:
        """Merge (and maybe reorganize) on a worker thread; publishes a
        fresh snapshot when anything moved.  Caller holds the write lock."""
        with obs.span("server.maintenance") as span:
            self._writes_since_maintenance = 0
            report = self.table.merge_small_partitions(
                min_fill=self.config.merge_min_fill
            )
            merged = report.merge_count
            self._maintenance_passes += 1
            self.counters.maintenance_passes += 1
            self.counters.partitions_merged += merged
            reorganized = False
            if (
                self.config.reorganize_every > 0
                and self._maintenance_passes % self.config.reorganize_every == 0
            ):
                self.table.reorganize()
                self.counters.reorganizations += 1
                reorganized = True
            if (
                self.adapt is not None
                and self._maintenance_passes % self.config.adapt_every == 0
            ):
                decision = self.adapt.maybe_adapt(self.table)
                self.counters.adapt_decisions += 1
                if decision.acted:
                    self.counters.adapt_actions += 1
                    if decision.action == "reorganize":
                        self.counters.reorganizations += 1
                    reorganized = True
            if span.is_recording:
                span.set("merged", merged)
                span.set("reorganized", reorganized)
        if merged or reorganized:
            self._publish()
        return merged, reorganized

    def _checkpoint_due(self) -> bool:
        return (
            self.config.checkpoint_every > 0
            and self._wal is not None
            and self.config.snapshot_path is not None
            and self._wal_writes_since_checkpoint >= self.config.checkpoint_every
        )

    def _checkpoint_locked(self) -> Optional[dict[str, Any]]:
        """Take one node checkpoint; caller must hold the write lock.

        Runs the crash-safe ordering of :func:`repro.backup.checkpoint_node`:
        archive the WAL segment, write the snapshot durably, archive a
        copy, and only then truncate the journal.
        """
        if self._wal is None or self.config.snapshot_path is None:
            return None
        report = checkpoint_node(
            self.table, self._wal, self.config.snapshot_path,
            archive=self._archive,
        )
        self._wal_writes_since_checkpoint = 0
        self._last_checkpoint_seq = report["wal_seq"]
        self.counters.checkpoints_taken += 1
        self.counters.checkpoint_records_truncated += report["records_truncated"]
        return report

    async def _handle_maintain(self, request: Request) -> tuple[str, dict[str, Any]]:
        force_checkpoint = bool(request.get("checkpoint"))
        if force_checkpoint and (
            self._wal is None or self.config.snapshot_path is None
        ):
            raise _OpRefused(
                protocol.REJECTED, "checkpoint_unconfigured",
                "this node has no wal_path/snapshot_path configured; "
                "nothing to checkpoint",
            )
        return protocol.OK, await self._maintenance_pass(
            force_checkpoint=force_checkpoint
        )

    # ------------------------------------------------------------------
    # replica repair: sync_snapshot (read side) / sync_delta (write side)
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_shard_spec(request: Request) -> tuple[int, frozenset[int]]:
        """Validate the ``n_shards``/``shards`` pair both sync ops carry."""
        n_shards = request.get("n_shards")
        shards = request.get("shards")
        if (
            isinstance(n_shards, bool)
            or not isinstance(n_shards, int)
            or n_shards <= 0
            or not isinstance(shards, list)
            or not shards
            or not all(
                isinstance(s, int) and not isinstance(s, bool) for s in shards
            )
        ):
            raise _OpRefused(
                protocol.BAD_REQUEST, "bad_shard_spec",
                "sync ops need {'n_shards': int > 0, 'shards': [int, ...]}",
            )
        return n_shards, frozenset(shards)

    async def _handle_sync_snapshot(
        self, request: Request
    ) -> tuple[str, dict[str, Any]]:
        """Serve one page of this node's entities for a set of shards.

        The router pages a resync from a healthy peer with this op.  The
        read serves from the latest MVCC snapshot like any query, so
        each page is a consistent cut; cross-page drift is the router's
        problem (it replays the delta it buffered while copying).
        """
        n_shards, shards = self._parse_shard_spec(request)
        after_eid = request.get("after_eid", -1)
        limit = request.get("limit", 200)
        if (
            isinstance(after_eid, bool) or not isinstance(after_eid, int)
            or isinstance(limit, bool) or not isinstance(limit, int)
            or limit <= 0
        ):
            raise _OpRefused(
                protocol.BAD_REQUEST, "bad_sync_page",
                "'after_eid' must be an int and 'limit' a positive int",
            )
        count_only = bool(request.get("count_only"))
        fields = self._collect_sync_page(
            self._latest_snapshot(), n_shards, shards, after_eid, limit,
            count_only,
        )
        self.counters.sync_pages_served += 1
        return protocol.OK, fields

    @staticmethod
    def _collect_sync_page(
        snapshot: TableSnapshot,
        n_shards: int,
        shards: frozenset[int],
        after_eid: int,
        limit: int,
        count_only: bool,
    ) -> dict[str, Any]:
        eids = [
            eid for eid in snapshot.entity_ids() if eid % n_shards in shards
        ]
        if count_only:
            # order-independent identity of the shard contents: the
            # router compares count+digest across replicas to decide a
            # resynced node agrees with its healthy peer
            digest = zlib.crc32(",".join(map(str, eids)).encode())
            return {
                "count": len(eids),
                "digest": f"{digest:08x}",
                "version_clock": snapshot.version_clock,
            }
        page = [eid for eid in eids if eid > after_eid][:limit]
        wanted = set(page)
        attributes_of: dict[int, dict[str, Any]] = {}
        for eid, attributes in snapshot.entities():
            if eid in wanted:
                attributes_of[eid] = attributes
        entities = [
            {
                "eid": eid,
                "attributes": {
                    name: _encode_value(value)
                    for name, value in attributes_of[eid].items()
                },
            }
            for eid in page
        ]
        done = not page or page[-1] == eids[-1]
        return {
            "entities": entities,
            "next_after": page[-1] if page else after_eid,
            "done": done,
            "count": len(eids),
        }

    async def _handle_sync_delta(
        self, request: Request
    ) -> tuple[str, dict[str, Any]]:
        """Bulk-apply copied entities on this (resyncing) node.

        Deliberately bypasses the admission queue: this op is
        router-driven repair traffic, rare and must not be shed by the
        same backpressure that protects against client floods.  It still
        takes the exclusive lock and journals + fsyncs before acking, so
        a crash mid-resync replays exactly what was acknowledged.
        """
        if self._draining:
            raise _OpRefused(
                protocol.SHUTTING_DOWN, "draining",
                "server is draining; no new modifications",
            )
        entities = request.get("entities", [])
        if not isinstance(entities, list) or not all(
            isinstance(e, dict)
            and isinstance(e.get("eid"), int)
            and not isinstance(e.get("eid"), bool)
            and isinstance(e.get("attributes"), dict)
            for e in entities
        ):
            raise _OpRefused(
                protocol.BAD_REQUEST, "bad_sync_delta",
                "'entities' must be a list of {'eid': int, 'attributes': {}}",
            )
        reset = None
        if request.get("reset") is not None:
            spec = request.get("reset")
            if not isinstance(spec, dict):
                raise _OpRefused(
                    protocol.BAD_REQUEST, "bad_sync_delta",
                    "'reset' must be a {'n_shards', 'shards'} object",
                )
            reset = self._parse_shard_spec(
                Request(op=request.op, id=request.id, fields=spec)
            )
        async with self.lock.write_locked():
            outcome = await asyncio.to_thread(
                self._apply_sync_delta, reset, entities
            )
            if self._wal is not None:
                try:
                    await asyncio.to_thread(self._wal.sync)
                except OSError as err:
                    raise _OpRefused(
                        protocol.ERROR, "wal_sync_failed",
                        f"could not make the sync delta durable: {err}",
                    ) from None
            if bool(request.get("final")) and (
                self._wal is not None
                and self.config.snapshot_path is not None
            ):
                checkpoint = await asyncio.to_thread(self._checkpoint_locked)
                if checkpoint is not None:
                    outcome["checkpoint_seq"] = checkpoint["wal_seq"]
        self.counters.sync_deltas_applied += 1
        self.counters.sync_entities_received += len(entities)
        obs.event(
            "server.sync_delta", entities=len(entities),
            removed=outcome["removed"], reset=reset is not None,
            final=bool(request.get("final")),
        )
        return protocol.OK, outcome

    def _apply_sync_delta(
        self,
        reset: Optional[tuple[int, frozenset[int]]],
        entities: list[dict[str, Any]],
    ) -> dict[str, Any]:
        """Apply a reset + upsert batch in one transaction (worker thread).

        Journal entries are collected during application but appended to
        the WAL only after the transaction commits — a rollback must not
        leave journal records describing writes that never happened.
        """
        table = self.table
        journal: list[tuple[str, dict[str, Any]]] = []
        removed = 0
        txn = table.catalog.begin_transaction()
        try:
            if reset is not None:
                n_shards, shards = reset
                doomed = [
                    eid for eid in table.entity_ids()
                    if eid % n_shards in shards
                ]
                for eid in doomed:
                    table.delete(eid)
                removed = len(doomed)
                journal.append((
                    "sync_reset",
                    {"n_shards": n_shards, "shards": sorted(shards)},
                ))
            for entity in entities:
                eid = entity["eid"]
                attributes = {
                    name: _decode_value(value)
                    for name, value in entity["attributes"].items()
                }
                if eid in table:
                    table.update(eid, attributes)
                else:
                    table.insert(attributes, entity_id=eid)
                journal.append(("sync_put", {
                    "eid": eid, "attributes": entity["attributes"],
                }))
        except Exception as err:
            txn.rollback()
            raise _OpRefused(
                protocol.ERROR, "sync_delta_failed",
                f"{type(err).__name__}: {err}",
            ) from None
        txn.commit()
        self._publish()
        if self._wal is not None:
            for op, payload in journal:
                self._wal.append(op, payload, sync=False)
                self.counters.wal_writes_logged += 1
                self._wal_writes_since_checkpoint += 1
        return {
            "applied": len(entities),
            "removed": removed,
            "entities": table.catalog.entity_count,
            "version_clock": table.catalog.version_clock,
        }

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _obs_snapshot(self) -> dict[str, Any]:
        """The ``obs`` verb: this node's observability document —
        flushed registry exposition plus trace digests — for the router
        (or any client) to federate."""
        return local_obs_document(self.config.name, tier="node")

    def _stats_snapshot(self) -> dict[str, Any]:
        """A point-in-time view (no await; table state comes from the
        latest MVCC snapshot — the live table belongs to the batcher's
        worker thread)."""
        # wire-visible counters mirrored from the legacy *Counters
        # dataclasses are flushed lazily; without this a stats reader
        # would see registry values stale by up to one flush interval
        flush_mirrors()
        snapshot = self._latest_snapshot()
        age_s = round(time.monotonic() - snapshot.created_monotonic, 3)
        obs.gauge_set(
            "repro_server_snapshot_age_seconds", age_s,
            "Seconds since the latest snapshot was published",
        )
        return {
            "node": self.config.name,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "draining": self._draining,
            "wal": (
                None if self._wal is None else {
                    "path": str(self._wal.path),
                    "basis_seq": self._wal.basis_seq,
                    "last_seq": self._wal.last_seq,
                    "syncs": self._wal.syncs,
                    "size_bytes": self._wal.size_bytes(),
                }
            ),
            "checkpoint": (
                None if self.config.snapshot_path is None else {
                    "snapshot_path": str(self.config.snapshot_path),
                    "last_checkpoint_seq": self._last_checkpoint_seq,
                    "wal_writes_since_checkpoint": (
                        self._wal_writes_since_checkpoint
                    ),
                    "archive": (
                        None if self._archive is None
                        else str(self._archive.root)
                    ),
                }
            ),
            "partitions": snapshot.partition_count,
            "entities": snapshot.entity_count,
            "version_clock": snapshot.version_clock,
            "split_count": self.table.partitioner.split_count,
            "queue_depth": self._write_queue.qsize(),
            "sessions": [s.as_dict() for s in self.sessions.values()],
            "counters": self.counters.as_dict(),
            "snapshots": {
                "latest_id": snapshot.snapshot_id,
                "version_clock": snapshot.version_clock,
                "age_s": age_s,
                "retained": self._snapshots.retained_count(),
                "pins": snapshot.pins,
                "published": self._snapshots.published,
                "retired": self._snapshots.retired,
            },
            "admission": {
                "window": self._admission.window,
                "max_pending": self.config.max_pending,
                "rate_ewma": round(self._admission.rate_ewma, 1),
                "target_latency_s": self._admission.target_latency_s,
            },
            "lock": {
                "readers": self.lock.readers,
                "writer_active": self.lock.writer_active,
                "max_concurrent_readers": self.lock.max_concurrent_readers,
                "read_acquisitions": self.lock.read_acquisitions,
                "write_acquisitions": self.lock.write_acquisitions,
            },
            "query_counters": self.table.query_counters.as_dict(),
            "heat": (
                None if self.adapt is None
                else self.adapt.trace.heat_as_dict()
            ),
            "adaptation": (
                None if self.adapt is None else self.adapt.status()
            ),
        }
