"""The wire protocol: one JSON object per line, UTF-8, ``\\n``-framed.

Every request is a JSON object with an ``op`` and a client-chosen
``id`` (echoed verbatim in the response, so a pipelining client can
match answers to questions).  Every response carries ``id``, ``ok``,
and a ``status`` string; failures add an ``error`` object with a typed
``code``.  Write outcomes reuse the ingest pipeline's admission
vocabulary (``applied`` / ``overloaded`` / ``rejected``), so a client
that already speaks backpressure against :mod:`repro.ingest` needs no
new states.

Supported operations:

========== ============================================================
``ping``       liveness probe, echoes ``payload``
``insert``     ``{"attributes": {...}, "eid": optional int}``
``update``     ``{"eid": int, "attributes": {...}}``
``delete``     ``{"eid": int}``
``query``      ``{"attributes": [...], "mode": "any"|"all"}``
``sql``        ``{"sql": "SELECT ..."}`` — the SQL passthrough
``stats``      server/catalog/session statistics snapshot
``obs``        observability snapshot: the node's metric registry (JSON
               exposition) plus finished-trace / slow-op digests; the
               router federates these into the cluster view
``maintain``   admin: run one maintenance pass now; ``{"checkpoint":
               true}`` also forces a node checkpoint
``shutdown``   admin: drain and stop the server
========== ============================================================

Any request may additionally carry a ``trace`` field — a W3C
traceparent string, ``00-<32 hex trace id>-<16 hex span id>-<2 hex
flags>`` — the distributed-trace context
(:class:`repro.obs.tracing.TraceContext`).  Receivers with trace
propagation enabled record their spans under it (the sender's
``span_id`` becomes the parent) and stamp fresh child contexts on any
upstream requests the op fans out to; everyone else ignores the field.
A malformed ``trace`` is dropped, never an error: telemetry must not
fail the request it rode in on.

Two further operations speak the replica-repair protocol between the
router and its serving nodes (clients may use them too — they are
ordinary requests — but the router drives them during resync):

``sync_snapshot``
    read a consistent page of a node's entities for a set of shards:
    ``{"n_shards": int, "shards": [int], "after_eid": int, "limit":
    int}``; with ``"count_only": true`` it returns just the entity
    count and an order-independent digest for end-of-resync agreement.
``sync_delta``
    bulk-apply copied entities on a resyncing node: ``{"entities":
    [{"eid", "attributes"}], "reset": {"n_shards", "shards"}?,
    "final": bool}``.  ``reset`` first clears the node's local copy of
    the named shards (the diverged state being replaced); ``final``
    asks the node to checkpoint so the resynced state is durable.

The framing is deliberately trivial — ``readline()`` on both ends — so
any language (or ``nc``) can speak it.  A line longer than
:data:`MAX_LINE_BYTES` is a protocol error: the server answers
``bad_request`` and closes, instead of buffering unboundedly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

#: framing bound — longer lines are refused, not buffered
MAX_LINE_BYTES = 1 << 20

#: response statuses (write outcomes reuse the ingest vocabulary)
OK = "ok"
APPLIED = "applied"
ERROR = "error"
OVERLOADED = "overloaded"
REJECTED = "rejected"
BAD_REQUEST = "bad_request"
SHUTTING_DOWN = "shutting_down"
#: router tier: every replica of a needed shard is unreachable right now
NODE_UNAVAILABLE = "node_unavailable"
#: router tier: a partial result — some shards answered, some did not.
#: The ``distributed`` failover vocabulary on the wire: the response
#: carries the rows that *were* gathered plus ``unreachable_shards``.
DEGRADED = "degraded"

#: the operations a server understands (order = docs order)
OPS = (
    "ping", "insert", "update", "delete", "query", "sql", "stats", "obs",
    "maintain", "shutdown", "sync_snapshot", "sync_delta",
)

#: statuses a client should treat as success
SUCCESS_STATUSES = frozenset({OK, APPLIED})
#: statuses that mean "back off and retry later"
RETRYABLE_STATUSES = frozenset({OVERLOADED, NODE_UNAVAILABLE})
#: statuses carrying a usable but explicitly incomplete result
PARTIAL_STATUSES = frozenset({DEGRADED})


class ProtocolError(ValueError):
    """A malformed frame: not JSON, not an object, or not a known op."""


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    op: str
    id: int
    fields: dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)


@dataclass(frozen=True)
class Response:
    """One decoded server response."""

    id: int
    status: str
    fields: dict[str, Any] = field(default_factory=dict)
    error: Optional[dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status in SUCCESS_STATUSES

    @property
    def retryable(self) -> bool:
        return self.status in RETRYABLE_STATUSES

    @property
    def degraded(self) -> bool:
        """True for a partial result (some shards unreachable)."""
        return self.status in PARTIAL_STATUSES

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------
def encode_request(op: str, request_id: int, **fields: Any) -> bytes:
    """Serialize one request to its wire line (including the ``\\n``)."""
    document = {"op": op, "id": request_id, **fields}
    return json.dumps(document, separators=(",", ":")).encode() + b"\n"


def encode_response(
    request_id: int,
    status: str,
    error: Optional[dict[str, Any]] = None,
    **fields: Any,
) -> bytes:
    """Serialize one response to its wire line (including the ``\\n``)."""
    document: dict[str, Any] = {
        "id": request_id,
        "ok": status in SUCCESS_STATUSES,
        "status": status,
        **fields,
    }
    if error is not None:
        document["error"] = error
    return json.dumps(document, separators=(",", ":")).encode() + b"\n"


def error_body(code: str, message: str) -> dict[str, Any]:
    """The ``error`` object attached to failure responses."""
    return {"code": code, "message": message}


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------
def _decode_object(line: bytes) -> dict[str, Any]:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte bound"
        )
    try:
        document = json.loads(line)
    except ValueError as err:
        raise ProtocolError(f"frame is not valid JSON: {err}") from None
    if not isinstance(document, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(document).__name__}"
        )
    return document


def decode_request(line: bytes) -> Request:
    """Parse one request line; raises :class:`ProtocolError` when malformed."""
    document = _decode_object(line)
    op = document.pop("op", None)
    if not isinstance(op, str):
        raise ProtocolError("request has no 'op' string")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (known: {', '.join(OPS)})")
    request_id = document.pop("id", 0)
    if isinstance(request_id, bool) or not isinstance(request_id, int):
        raise ProtocolError(f"request id must be an integer, got {request_id!r}")
    return Request(op=op, id=request_id, fields=document)


def decode_response(line: bytes) -> Response:
    """Parse one response line; raises :class:`ProtocolError` when malformed."""
    document = _decode_object(line)
    status = document.pop("status", None)
    if not isinstance(status, str):
        raise ProtocolError("response has no 'status' string")
    request_id = document.pop("id", 0)
    if isinstance(request_id, bool) or not isinstance(request_id, int):
        raise ProtocolError(f"response id must be an integer, got {request_id!r}")
    document.pop("ok", None)  # derived from status on re-decode
    error = document.pop("error", None)
    if error is not None and not isinstance(error, dict):
        raise ProtocolError(f"response error must be an object, got {error!r}")
    return Response(id=request_id, status=status, fields=document, error=error)
