"""The online serving layer: Cinderella behind a TCP socket.

The paper's point is *online* partitioning — the catalog adapts while
modifications and queries keep arriving (Definition 2).  Everything
below this package is a single-threaded library; this package is the
concurrent front door that makes "online" literal:

* :mod:`repro.server.server` — an asyncio TCP server speaking the
  line-delimited JSON protocol of :mod:`repro.server.protocol`:
  per-connection sessions, lock-free snapshot-isolated reads (queries
  serve from the latest :class:`~repro.query.snapshot.TableSnapshot`,
  never blocking on writers), an adaptive write-admission window with
  explicit ``OVERLOADED`` shedding
  (:mod:`repro.server.admission` — queue-based load leveling), write
  batching group-committed through one :mod:`repro.txn` undo-log
  transaction (per-op savepoints) and one WAL fsync per batch, and
  cooperative background maintenance (merge / reorganize) running
  between batches;
* :mod:`repro.server.locks` — the reader–writer lock that serializes
  the batcher, maintenance, and sync deltas against each other (reads
  no longer take it);
* :mod:`repro.server.client` — the small blocking client used by the
  tests, the soak suite, and ``benchmarks/bench_server.py``;
* :mod:`repro.server.testing` — :class:`ServerThread`, an in-process
  server harness for tests and load generators.

Start one with ``python -m repro serve``; see ``docs/SERVER.md``.
"""

from repro.server.admission import AdaptiveAdmission
from repro.server.client import ServerClient, ServerError
from repro.server.locks import AsyncReadWriteLock
from repro.server.protocol import (
    DEGRADED,
    MAX_LINE_BYTES,
    NODE_UNAVAILABLE,
    PARTIAL_STATUSES,
    RETRYABLE_STATUSES,
    ProtocolError,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.server.server import CinderellaServer, ServerConfig
from repro.server.testing import ServerThread

__all__ = [
    "AdaptiveAdmission",
    "AsyncReadWriteLock",
    "CinderellaServer",
    "DEGRADED",
    "MAX_LINE_BYTES",
    "NODE_UNAVAILABLE",
    "PARTIAL_STATUSES",
    "ProtocolError",
    "RETRYABLE_STATUSES",
    "Request",
    "Response",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "ServerThread",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
]
