"""Cost model translating I/O accounting into simulated execution time.

:mod:`repro.cost.model` defines the constants; :mod:`repro.cost.calibrate`
fits the scan-side ones to latencies observed on the running host, so
the adaptation loop ranks candidate layouts with a model that matches
this machine instead of the paper prototype's.
"""

from repro.cost.calibrate import (
    CalibrationReport,
    CalibrationSample,
    OnlineCalibrator,
    fit_cost_model,
)
from repro.cost.model import CostModel

__all__ = [
    "CalibrationReport",
    "CalibrationSample",
    "CostModel",
    "OnlineCalibrator",
    "fit_cost_model",
]
