"""Cost model translating I/O accounting into simulated execution time."""

from repro.cost.model import CostModel

__all__ = ["CostModel"]
