"""Execution-time cost model — the stand-in for the paper's wall clock.

The paper measures query and insert times on a PostgreSQL prototype.  Our
substrate is a Python storage simulator, so raw wall-clock numbers would
reflect interpreter overheads rather than the effects the paper studies.
Instead, the benchmarks report a *simulated* execution time computed from
the exact I/O accounting of the executor.  The model captures the three
effects the paper's discussion identifies:

1. **Scan volume.**  Reading pages and evaluating tuples dominates; the
   universal table always pays for everything, partitioned execution only
   for the surviving partitions (Definition 1's "data actually read").
2. **UNION ALL overhead.**  "During the union operation, the database
   system has to project all tuples of every involved partition to the
   common schema" (Section V-B) — a per-tuple surcharge that only
   partitioned execution pays, which is why low-selectivity queries run
   *slower* with Cinderella than on the plain universal table.
3. **Per-branch overhead.**  Each UNION branch is an extra relation to
   open and plan; many small partitions make unselective queries pay for
   it (the B = 500 curve in Figure 5 crossing above the others on the
   right).

The default coefficients are loosely calibrated to the prototype's
hardware class (a few-ms queries on ~100 k entities) — absolute values are
irrelevant to the reproduction; orderings and crossovers are what the
benchmarks assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.executor import ExecutionStats


@dataclass(frozen=True)
class CostModel:
    """Linear cost model over execution statistics (milliseconds)."""

    #: per physical page read (sequential I/O + page interpretation)
    page_read_ms: float = 0.05
    #: per record deserialized and tested against the predicate
    record_scan_ms: float = 0.001
    #: per row placed in the result set
    row_output_ms: float = 0.0005
    #: per UNION ALL branch (open the partition relation, plan overhead)
    branch_overhead_ms: float = 0.1
    #: per record read inside a UNION ALL (projection to the common schema)
    union_project_ms: float = 0.0008
    #: fixed per-insert cost (trigger dispatch, record serialization)
    insert_base_ms: float = 0.8
    #: per partition rating computed during the catalog scan
    rating_ms: float = 0.002
    #: per record physically moved between partitions
    record_move_ms: float = 0.05
    #: per byte physically moved
    byte_move_ms: float = 0.00002
    #: per partition created (DDL in the prototype)
    partition_create_ms: float = 2.0
    #: per row consumed by downstream query processing (joins, grouping,
    #: sorting) — identical work on both access paths; see workload_time_ms
    engine_process_ms: float = 0.004

    def query_time_ms(self, stats: "ExecutionStats") -> float:
        """Simulated execution time of one query, in milliseconds."""
        time_ms = (
            self.page_read_ms * stats.pages_read
            + self.record_scan_ms * stats.entities_read
            + self.row_output_ms * stats.rows_returned
        )
        if stats.union_branches:
            time_ms += self.branch_overhead_ms * stats.union_branches
            time_ms += self.union_project_ms * stats.entities_read
        return time_ms

    def workload_time_ms(self, stats: "ExecutionStats") -> float:
        """Simulated time of a *full relational query*, in milliseconds.

        ``query_time_ms`` prices the access path only (scans, pruning,
        union overhead), which is the right lens for Figures 5 and 6 where
        the queries are pure projections.  The TPC-H workload of Table I
        additionally performs joins, grouping, and sorting on every row
        delivered by the access path — work that is identical on both
        access paths and that the paper's totals therefore include.  This
        method adds that engine-processing term.
        """
        return self.query_time_ms(stats) + self.engine_process_ms * (
            stats.rows_returned
        )

    def insert_time_ms(
        self,
        ratings_computed: int,
        records_moved: int,
        bytes_moved: int,
        partitions_created: int,
    ) -> float:
        """Simulated execution time of one insert, in milliseconds.

        Models Section III's cost discussion: finding the best partition
        is linear in the catalog (``ratings_computed``), while a split is
        dominated by physically moving entities between partitions.
        """
        return (
            self.rating_ms * ratings_computed
            + self.record_move_ms * records_moved
            + self.byte_move_ms * bytes_moved
            + self.partition_create_ms * partitions_created
            + self.insert_base_ms
        )
