"""Fitting the cost model's constants to observed execution latencies.

The default :class:`~repro.cost.model.CostModel` coefficients are loosely
calibrated to the paper prototype's hardware class; on any real host the
interpreter, the page size, and the attribute mix shift them.  The
adaptation loop (:mod:`repro.adapt`) needs the model to *rank* candidate
layouts correctly on the machine it is running on, so this module fits
the scan-side coefficients from ``(ExecutionStats, wall time)`` pairs the
executor already measures on every query.

The fit is a ridge-regularized least squares over the four observable
scan features — pages read, records scanned, UNION ALL branches, rows
returned — solved in pure Python (the feature matrix is 4x4; no numpy).
Regularization pulls toward the default coefficients, so a degenerate
sample set (all queries identical, too few points) degrades gracefully
into the priors instead of exploding.  Negative solutions are clamped to
zero: a scan term can speed a query up in a noisy sample, never in the
model.

:class:`OnlineCalibrator` wraps the fit for the controller: it keeps a
bounded window of recent observations, reports the model's current
relative prediction error over that window, and refits when the error
drifts past a threshold (host got slower, cache behaviour changed) or
when it has never fit at all (startup).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence, TYPE_CHECKING

from repro.cost.model import CostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.executor import ExecutionStats

#: fewer samples than this and the fit falls back to the prior model
MIN_FIT_SAMPLES = 8


@dataclass(frozen=True)
class CalibrationSample:
    """One observed execution: the scan features plus the measured time."""

    pages_read: int
    entities_read: int
    union_branches: int
    rows_returned: int
    wall_time_ms: float

    @classmethod
    def from_stats(cls, stats: "ExecutionStats") -> "CalibrationSample":
        return cls(
            pages_read=stats.pages_read,
            entities_read=stats.entities_read,
            union_branches=stats.union_branches,
            rows_returned=stats.rows_returned,
            wall_time_ms=stats.wall_time_s * 1000.0,
        )

    def features(self) -> tuple[float, float, float, float]:
        return (
            float(self.pages_read),
            float(self.entities_read),
            float(self.union_branches),
            float(self.rows_returned),
        )


@dataclass(frozen=True)
class CalibrationReport:
    """A fitted model plus how well it explains the samples."""

    model: CostModel
    samples: int
    fitted: bool
    mean_abs_error_ms: float
    r2: float

    def as_dict(self) -> dict[str, float]:
        return {
            "samples": self.samples,
            "fitted": self.fitted,
            "mean_abs_error_ms": round(self.mean_abs_error_ms, 4),
            "r2": round(self.r2, 4),
            "page_read_ms": self.model.page_read_ms,
            "record_scan_ms": self.model.record_scan_ms,
            "branch_overhead_ms": self.model.branch_overhead_ms,
            "row_output_ms": self.model.row_output_ms,
        }


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Solve a small dense linear system by Gaussian elimination."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            raise ArithmeticError("singular calibration system")
        a[col], a[pivot] = a[pivot], a[col]
        inv = 1.0 / a[col][col]
        for r in range(n):
            if r == col:
                continue
            factor = a[r][col] * inv
            if factor == 0.0:
                continue
            for c in range(col, n + 1):
                a[r][c] -= factor * a[col][c]
    return [a[i][n] / a[i][i] for i in range(n)]


def _predict_ms(model: CostModel, sample: CalibrationSample) -> float:
    """The model's scan-side prediction for one sample's features.

    Mirrors :meth:`CostModel.query_time_ms` over the calibration
    features (the union-projection term rides on ``record_scan_ms`` in
    the fit — the two are perfectly collinear per sample set).
    """
    time_ms = (
        model.page_read_ms * sample.pages_read
        + model.record_scan_ms * sample.entities_read
        + model.row_output_ms * sample.rows_returned
    )
    if sample.union_branches:
        time_ms += model.branch_overhead_ms * sample.union_branches
        time_ms += model.union_project_ms * sample.entities_read
    return time_ms


def fit_cost_model(
    samples: Sequence[CalibrationSample],
    base: Optional[CostModel] = None,
    ridge: float = 1.0,
) -> CalibrationReport:
    """Fit the scan coefficients of a :class:`CostModel` to observations.

    Args:
        samples: observed executions (features + measured milliseconds).
        base: the prior model; fitted coefficients replace only its
            ``page_read_ms`` / ``record_scan_ms`` / ``branch_overhead_ms``
            / ``row_output_ms`` — the write-side constants are untouched.
        ridge: regularization strength pulling the solution toward the
            prior's coefficients (stabilizes collinear feature sets).

    Returns:
        A :class:`CalibrationReport`; with fewer than
        :data:`MIN_FIT_SAMPLES` samples (or a singular system) the prior
        model is returned with ``fitted=False``.
    """
    if base is None:
        base = CostModel()
    prior = [
        base.page_read_ms,
        base.record_scan_ms,
        base.branch_overhead_ms,
        base.row_output_ms,
    ]
    if len(samples) < MIN_FIT_SAMPLES:
        return CalibrationReport(
            model=base,
            samples=len(samples),
            fitted=False,
            mean_abs_error_ms=_mean_abs_error(base, samples),
            r2=0.0,
        )
    # normal equations with ridge toward the prior:
    # (XᵀX + λI) c = Xᵀy + λ c₀
    xtx = [[ridge if r == c else 0.0 for c in range(4)] for r in range(4)]
    xty = [ridge * prior[i] for i in range(4)]
    for sample in samples:
        feats = sample.features()
        y = sample.wall_time_ms
        for r in range(4):
            xty[r] += feats[r] * y
            for c in range(r, 4):
                xtx[r][c] += feats[r] * feats[c]
    for r in range(4):
        for c in range(r):
            xtx[r][c] = xtx[c][r]
    try:
        coeffs = _solve(xtx, xty)
    except ArithmeticError:
        return CalibrationReport(
            model=base,
            samples=len(samples),
            fitted=False,
            mean_abs_error_ms=_mean_abs_error(base, samples),
            r2=0.0,
        )
    coeffs = [max(0.0, c) for c in coeffs]
    # the fitted record coefficient absorbs the union projection (the
    # two are collinear per sample), so the fitted model zeroes
    # union_project_ms — keeping it would double-count the term
    model = replace(
        base,
        page_read_ms=coeffs[0],
        record_scan_ms=coeffs[1],
        branch_overhead_ms=coeffs[2],
        row_output_ms=coeffs[3],
        union_project_ms=0.0,
    )
    return CalibrationReport(
        model=model,
        samples=len(samples),
        fitted=True,
        mean_abs_error_ms=_mean_abs_error(model, samples),
        r2=_r_squared(model, samples),
    )


def _mean_abs_error(
    model: CostModel, samples: Iterable[CalibrationSample]
) -> float:
    errors = [
        abs(_predict_ms(model, s) - s.wall_time_ms) for s in samples
    ]
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


def _r_squared(model: CostModel, samples: Sequence[CalibrationSample]) -> float:
    if not samples:
        return 0.0
    mean = sum(s.wall_time_ms for s in samples) / len(samples)
    ss_tot = sum((s.wall_time_ms - mean) ** 2 for s in samples)
    ss_res = sum(
        (s.wall_time_ms - _predict_ms(model, s)) ** 2 for s in samples
    )
    if ss_tot < 1e-12:
        return 1.0 if ss_res < 1e-12 else 0.0
    return 1.0 - ss_res / ss_tot


class OnlineCalibrator:
    """A bounded window of observations plus refit-on-drift policy.

    The controller feeds every measured execution in through
    :meth:`observe`; :meth:`maybe_refit` refits when the model has never
    been fitted (startup) or when the mean relative prediction error
    over the window exceeds ``refit_rel_error`` (drift — the host or the
    access pattern no longer looks like what the fit saw).
    """

    def __init__(
        self,
        base: Optional[CostModel] = None,
        window: int = 256,
        min_samples: int = 16,
        refit_rel_error: float = 0.5,
    ) -> None:
        self.model = base if base is not None else CostModel()
        self.report: Optional[CalibrationReport] = None
        self.min_samples = min_samples
        self.refit_rel_error = refit_rel_error
        self.refits = 0
        self._samples: deque[CalibrationSample] = deque(maxlen=window)

    def observe(self, stats: "ExecutionStats") -> None:
        """Record one measured execution (ignores zero-work cache hits)."""
        if stats.entities_read == 0 and stats.pages_read == 0:
            return  # a pure cache hit carries no scan signal
        self._samples.append(CalibrationSample.from_stats(stats))

    def observe_sample(self, sample: CalibrationSample) -> None:
        self._samples.append(sample)

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def prediction_error(self) -> float:
        """Mean relative error of the current model over the window."""
        if not self._samples:
            return 0.0
        total = 0.0
        for sample in self._samples:
            measured = max(sample.wall_time_ms, 1e-6)
            total += abs(_predict_ms(self.model, sample) - measured) / measured
        return total / len(self._samples)

    def needs_refit(self) -> bool:
        if len(self._samples) < self.min_samples:
            return False
        if self.report is None or not self.report.fitted:
            return True
        return self.prediction_error() > self.refit_rel_error

    def maybe_refit(self) -> bool:
        """Refit when due; returns whether a fit ran and was adopted."""
        if not self.needs_refit():
            return False
        report = fit_cost_model(list(self._samples), base=self.model)
        self.report = report
        if report.fitted:
            self.model = report.model
            self.refits += 1
        return report.fitted

    def status(self) -> dict[str, float]:
        return {
            "samples": len(self._samples),
            "refits": self.refits,
            "prediction_error": round(self.prediction_error(), 4),
            "fitted": self.report is not None and self.report.fitted,
        }
