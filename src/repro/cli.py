"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — partition the paper's Figure 1 product catalog and run a
  pruned query, narrating every step.
* ``dbpedia`` — generate the synthetic DBpedia person extract, load it
  through Cinderella, and print the partitioning statistics (optionally
  saving a snapshot).
* ``tpch`` — load TPC-H into a Cinderella universal table, verify the
  schema recovery, and optionally run one of the 22 queries.
* ``advise`` — recommend B and w for a generated data sample.
* ``adapt`` — run the closed adaptation loop on a scripted workload
  shift: a fine layout serves selective per-group queries (the
  controller blesses the baseline and quiesces), the mix shifts to
  broad scans, and the controller answers with one bounded
  reorganization to a coarser layout before quiescing again.
* ``inspect`` — print the partitioning statistics of a saved snapshot.
* ``chaos`` — run a mixed workload on the simulated cluster under a
  seeded node-failure schedule and report fault-tolerance counters.
* ``query-path`` — load DBpedia data with the inverted synopsis index
  and the query result cache enabled, run a repeated selective-query
  workload, and report the fast-path counters and speedup.
* ``verify-catalog`` — integrity-check a saved snapshot (table or
  distributed store): catalog invariants, and placement for stores.
* ``obs`` — run a built-in mixed workload (inserts with splits,
  queries, maintenance, WAL-backed distributed faults, ingest) under
  the observability layer and report metrics, top spans, slow ops, and
  events — as a summary, Prometheus text, or JSON.  With ``--cluster
  HOST:PORT`` it instead scrapes a running router's ``obs`` verb and
  renders the federated cluster view (``--listen`` serves it as a
  fleet-wide Prometheus endpoint).
* ``top`` — live terminal dashboard over a running router: request
  rates and latency quantiles per node and verb, shed rate, replica
  lifecycle states, catch-up depth, and SLO burn-rate alerts.
* ``serve`` — run the online serving layer: a TCP server speaking the
  line-delimited JSON protocol of :mod:`repro.server`, with admission
  control, write batching, and cooperative background maintenance.
  Stops gracefully (drain, then exit) on Ctrl-C or SIGTERM.
* ``route`` — run the partition-aware routing tier of
  :mod:`repro.router` in front of running ``serve`` nodes: shard-hash
  write routing, scatter-gather reads with explicit partial results,
  and per-node circuit-breaker failover.
* ``backup`` — archive a node's WAL segment (and its checkpoint, when
  one exists) into a :mod:`repro.backup` archive.
* ``recover`` — point-in-time recovery: rebuild node state as of an
  exact WAL sequence from the archive and write it as a checkpoint a
  fresh node can start from.
* ``scrub`` — verify the checksums of every archived checkpoint and
  WAL segment at rest (and optionally a node's live snapshot).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.config import CinderellaConfig


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.query.query import AttributeQuery
    from repro.table.partitioned import CinderellaTable

    products = [
        {"name": "Canon PowerShot S120", "resolution": 12.1, "aperture": 2.0},
        {"name": "Sony SLT-A99", "resolution": 24, "aperture": 1.8},
        {"name": "WD4000FYYZ", "storage": "4TB", "rotation": 7200},
        {"name": "WD2003FYYS", "storage": "2TB", "rotation": 7200},
        {"name": "LG 60LA7408", "screen": 40, "tuner": "DVB-T/C/S"},
    ]
    table = CinderellaTable(CinderellaConfig(max_partition_size=2, weight=0.3))
    for product in products:
        outcome = table.insert(product)
        print(f"insert {product['name']!r} -> partition {outcome.partition_id}")
    print(f"\n{table.partition_count()} partitions formed")
    query = AttributeQuery(("aperture", "resolution"))
    print(f"\n{query.sql()}")
    result = table.execute(query)
    print(result.plan.describe())
    for row in result.rows:
        print(f"  {row}")
    return 0


def _cmd_dbpedia(args: argparse.Namespace) -> int:
    from repro.metrics.partition_stats import summarize_catalog
    from repro.reporting.tables import format_kv_block
    from repro.table.partitioned import CinderellaTable
    from repro.workloads.dbpedia import generate_dbpedia_persons

    dataset = generate_dbpedia_persons(n_entities=args.entities, seed=args.seed)
    config = CinderellaConfig(
        max_partition_size=args.partition_size, weight=args.weight
    )
    table = CinderellaTable(config)
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    summary = summarize_catalog(table.catalog)
    print(format_kv_block(
        f"Cinderella over {args.entities} DBpedia persons "
        f"(B={args.partition_size:g}, w={args.weight})",
        [
            ("partitions", summary.partition_count),
            ("splits", table.partitioner.split_count),
            ("median entities/partition", summary.entities_summary.median),
            ("median attributes/partition", summary.attributes_summary.median),
            ("median sparseness/partition", summary.sparseness_summary.median),
            ("dataset sparseness", dataset.sparseness()),
        ],
    ))
    if args.snapshot:
        from repro.storage.snapshot import save_table

        save_table(table, args.snapshot)
        print(f"snapshot written to {args.snapshot}")
    return 0


def _cmd_tpch(args: argparse.Namespace) -> int:
    from repro.workloads.tpch.databases import CinderellaTPCHDatabase
    from repro.workloads.tpch.dbgen import generate_tpch
    from repro.workloads.tpch.queries import run_query

    data = generate_tpch(scale_factor=args.scale_factor, seed=args.seed)
    print(f"TPC-H SF {args.scale_factor}: {data.total_rows()} rows")
    db = CinderellaTPCHDatabase(
        data, CinderellaConfig(max_partition_size=args.partition_size, weight=0.5)
    )
    print(f"{db.partition_count()} partitions; "
          f"schema recovered exactly: {db.schema_is_exact()}")
    if args.query is not None:
        rows = run_query(args.query, db)
        print(f"\nQ{args.query}: {len(rows)} rows")
        for row in rows[:10]:
            print(f"  {row}")
        if len(rows) > 10:
            print(f"  ... ({len(rows) - 10} more)")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.adapt.advisor import advise
    from repro.reporting.tables import format_table
    from repro.workloads.dbpedia import generate_dbpedia_persons

    dataset = generate_dbpedia_persons(n_entities=args.entities, seed=args.seed)
    dictionary = dataset.dictionary()
    masks = [entity.synopsis_mask(dictionary) for entity in dataset.entities]
    report = advise(masks)
    print(format_table(
        ["w", "B", "efficiency", "partitions", "score"],
        [
            [t.weight, f"{t.max_partition_size:g}", t.efficiency,
             t.partition_count, t.score]
            for t in report.trials
        ],
        title=f"Advisor trials over {report.sample_size} entities",
    ))
    recommended = report.recommended
    print(f"\nrecommended: B={recommended.max_partition_size:g} "
          f"w={recommended.weight}")
    print(f"rationale: {report.rationale}")
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    """Run the closed adaptation loop on a scripted workload shift.

    Loads a grouped dataset under a deliberately fine layout, drives a
    selective per-group query phase (the controller blesses it as the
    baseline and quiesces), then shifts to broad scans of the shared
    attribute — the shift the controller must detect, answer with one
    bounded reorganization to a coarser layout, and then quiesce again.
    """
    from repro.adapt import AdaptationConfig, AdaptationController
    from repro.query.query import AttributeQuery
    from repro.table.partitioned import CinderellaTable

    groups = max(1, args.groups)
    table = CinderellaTable(CinderellaConfig(
        max_partition_size=args.partition_size,
        weight=args.weight,
        use_synopsis_index=True,
    ))
    controller = AdaptationController(config=AdaptationConfig(
        min_observations=args.min_observations,
        cooldown_s=0.0,  # the demo is seconds long; rounds gate actions
        horizon_queries=args.horizon,
    ))
    controller.bind_table(table)

    for i in range(args.entities):
        group = i % groups
        attributes = {"common": i}
        for suffix in ("a", "b", "c"):
            attributes[f"g{group}_{suffix}"] = i
        table.insert(attributes, entity_id=i)
    initial_partitions = table.partition_count()
    print(f"loaded {len(table)} entities in {groups} groups under "
          f"B={args.partition_size:g} w={args.weight} "
          f"-> {initial_partitions} partitions")

    selective = [
        AttributeQuery((f"g{group}_{suffix}",), "any")
        for group in range(groups) for suffix in ("a", "b", "c")
    ]
    broad = [AttributeQuery(("common",), "any")] * len(selective)
    phases = [("A selective per-group", selective),
              ("B broad shared-attribute", broad)]
    round_no = 0
    for phase_name, queries in phases:
        print(f"\nphase {phase_name} queries")
        for _ in range(args.rounds):
            round_no += 1
            for query in queries:
                table.execute(query)
            decision = (controller.evaluate(table) if args.dry_run
                        else controller.maybe_adapt(table))
            line = (f"  round {round_no}: {decision.action} "
                    f"({decision.reason})  shift={decision.shift:.2f}  "
                    f"queries={decision.queries_observed}")
            if decision.plan is not None:
                line += (f"  win={decision.plan.win_fraction:.0%}  "
                         f"B={decision.plan.config.max_partition_size:g} "
                         f"w={decision.plan.config.weight}")
            if decision.acted:
                line += f"  partitions -> {table.partition_count()}"
            print(line)

    status = controller.status()
    calibration = status["calibration"]
    print(f"\nactions taken: {controller.actions_taken} "
          f"(partitions {initial_partitions} -> {table.partition_count()})")
    print(f"calibration: {calibration['samples']} samples, "
          f"{calibration['refits']} refits")
    oracle = table.execute_naive(AttributeQuery(("common",), "any"))
    pruned = table.execute(AttributeQuery(("common",), "any"))

    def _canon(rows):
        return sorted(tuple(sorted(row.items())) for row in rows)

    rows_match = _canon(pruned.rows) == _canon(oracle.rows)
    problems = table.check_consistency()
    for problem in problems:
        print(f"integrity problem: {problem}", file=sys.stderr)
    if not rows_match:
        print("integrity problem: pruned rows diverge from naive scan",
              file=sys.stderr)
    closed = args.dry_run or controller.actions_taken >= 1
    if not closed:
        print("loop did not close: no adaptation action taken",
              file=sys.stderr)
    return 0 if (closed and rows_match and not problems) else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.metrics.partition_stats import summarize_catalog
    from repro.reporting.tables import format_kv_block
    from repro.storage.snapshot import SnapshotFormatError, load_table

    try:
        table = load_table(args.snapshot)
    except SnapshotFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    summary = summarize_catalog(table.catalog)
    print(format_kv_block(
        f"Snapshot {args.snapshot}",
        [
            ("entities", summary.entity_count),
            ("partitions", summary.partition_count),
            ("B", f"{table.config.max_partition_size:g}"),
            ("w", table.config.weight),
            ("median entities/partition", summary.entities_summary.median),
            ("median attributes/partition", summary.attributes_summary.median),
        ],
    ))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import random

    from repro.core.partitioner import CinderellaPartitioner
    from repro.distributed.failures import FailureSchedule
    from repro.distributed.replication import replication_report
    from repro.distributed.store import DistributedUniversalStore
    from repro.reporting.tables import format_kv_block

    schedule = FailureSchedule.random(
        args.nodes,
        args.ops,
        seed=args.seed,
        crash_rate=args.crash_rate,
        degrade_rate=args.crash_rate / 3,
    )
    store = DistributedUniversalStore(
        args.nodes,
        CinderellaPartitioner(CinderellaConfig(
            max_partition_size=args.partition_size, weight=args.weight
        )),
        replication_factor=args.replication_factor,
    )
    rng = random.Random(args.seed)
    live: list[int] = []
    next_eid = 0
    for op_index in range(args.ops):
        for event in schedule.events_at(op_index):
            store.apply_event(event)
        kind = rng.choice(("insert", "insert", "insert", "delete", "update"))
        if kind == "insert" or not live:
            store.insert(next_eid, rng.getrandbits(14) | 0b1)
            live.append(next_eid)
            next_eid += 1
        elif kind == "delete":
            store.delete(live.pop(rng.randrange(len(live))))
        else:
            store.update(rng.choice(live), rng.getrandbits(14) | 0b1)
        if op_index % 10 == 3:
            store.route_query(rng.getrandbits(14) | 0b1)
        if op_index % 25 == 24:
            store.re_replicate()
    store.re_replicate()
    counters = store.counters.as_dict()
    report = replication_report(store.cluster)
    print(format_kv_block(
        f"Chaos run: {args.ops} ops, {args.nodes} nodes, "
        f"rf={args.replication_factor}, seed={args.seed}",
        [
            ("partitions", store.cluster.partition_count),
            ("node crashes", counters["node_crashes"]),
            ("node recoveries", counters["node_recoveries"]),
            ("queries", counters["queries_total"]),
            ("degraded queries", counters["queries_degraded"]),
            ("availability", f"{counters['availability']:.4f}"),
            ("retries", counters["retries"]),
            ("failovers", counters["failovers"]),
            ("repair passes", counters["re_replication_passes"]),
            ("replicas created", counters["replicas_created"]),
            ("replication healthy", report.healthy),
        ],
    ))
    problems = store.check_placement() + store.partitioner.check_invariants()
    for problem in problems:
        print(f"integrity problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_query_path(args: argparse.Namespace) -> int:
    """Demonstrate the read-side fast path on a DBpedia workload."""
    import time

    from repro.query.cache import QueryResultCache
    from repro.reporting.tables import format_kv_block
    from repro.table.partitioned import CinderellaTable
    from repro.workloads.dbpedia import generate_dbpedia_persons
    from repro.workloads.querygen import (
        build_query_workload,
        representative_queries,
    )

    dataset = generate_dbpedia_persons(n_entities=args.entities, seed=args.seed)
    config = CinderellaConfig(
        max_partition_size=args.partition_size,
        weight=args.weight,
        use_synopsis_index=True,
    )
    table = CinderellaTable(config, result_cache=QueryResultCache())
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)

    masks = [
        entity.synopsis_mask(table.dictionary) for entity in dataset.entities
    ]
    specs = build_query_workload(masks, table.dictionary, max_triples=50)
    queries = [
        spec.query
        for spec in representative_queries(specs, per_bucket=2)
        if spec.selectivity < 0.5
    ][: args.queries]

    started = time.perf_counter()
    for _round in range(args.rounds):
        for query in queries:
            table.execute(query)
    fast_s = time.perf_counter() - started

    started = time.perf_counter()
    for _round in range(args.rounds):
        for query in queries:
            table.execute_naive(query)
    naive_s = time.perf_counter() - started

    counters = table.query_counters.as_dict()
    executed = args.rounds * len(queries)
    print(format_kv_block(
        f"Query fast path: {executed} queries ({args.rounds} rounds x "
        f"{len(queries)}) over {args.entities} entities",
        [
            ("partitions", table.partition_count()),
            ("queries executed", counters["queries_total"]),
            ("index resolutions", counters["index_resolutions"]),
            ("partitions pruned", counters["partitions_pruned"]),
            ("pruning ratio", f"{counters['pruning_ratio']:.3f}"),
            ("cache hits", counters["cache_hits"]),
            ("cache misses", counters["cache_misses"]),
            ("cache hit rate", f"{counters['cache_hit_rate']:.3f}"),
            ("cache stale drops", counters["cache_stale_drops"]),
            ("rows served from cache", counters["rows_served_from_cache"]),
            ("fast path", f"{executed / fast_s:.0f} queries/s"),
            ("naive full scan", f"{executed / naive_s:.0f} queries/s"),
            ("speedup", f"{naive_s / fast_s:.1f}x"),
        ],
    ))
    problems = table.check_consistency()
    for problem in problems:
        print(f"integrity problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _run_obs_workload(args: argparse.Namespace) -> None:
    """The built-in mixed workload ``repro obs`` instruments.

    Touches every instrumented subsystem so the exposition covers all
    metric families: table inserts with splits and repeated queries
    (partitioner + query + cache), a merge and a reorganization through
    the transactional layer (maintenance + txn), a WAL-backed
    distributed store with injected faults and repair (distributed +
    WAL), and an ingest pipeline fed some malformed rows (ingest).
    """
    import random

    from repro.core.partitioner import CinderellaPartitioner
    from repro.distributed.store import DistributedUniversalStore
    from repro.ingest.pipeline import IngestPipeline, IngestRequest
    from repro.query.cache import QueryResultCache
    from repro.storage.scratch import scratch_dir
    from repro.storage.wal import WriteAheadLog
    from repro.table.partitioned import CinderellaTable
    from repro.txn.ops import atomic_merge, atomic_reorganize
    from repro.workloads.dbpedia import generate_dbpedia_persons
    from repro.workloads.querygen import (
        build_query_workload,
        representative_queries,
    )

    # table + query fast path ------------------------------------------
    dataset = generate_dbpedia_persons(n_entities=args.entities, seed=args.seed)
    table = CinderellaTable(
        CinderellaConfig(
            max_partition_size=args.partition_size,
            weight=args.weight,
            use_synopsis_index=True,
        ),
        result_cache=QueryResultCache(),
    )
    for entity in dataset.entities:
        table.insert(entity.attributes, entity_id=entity.entity_id)
    masks = [
        entity.synopsis_mask(table.dictionary) for entity in dataset.entities
    ]
    specs = build_query_workload(masks, table.dictionary, max_triples=30)
    queries = [
        spec.query for spec in representative_queries(specs, per_bucket=2)
    ][:10]
    for _round in range(2):
        for query in queries:
            table.execute(query)

    # maintenance through the transactional layer ----------------------
    atomic_merge(table.partitioner, min_fill=0.5)
    atomic_reorganize(table.partitioner)

    # WAL-backed distributed store under faults ------------------------
    rng = random.Random(args.seed)
    with scratch_dir(prefix="repro-obs-") as tmp:
        wal = WriteAheadLog(tmp / "coordinator.wal")
        store = DistributedUniversalStore(
            4,
            CinderellaPartitioner(
                CinderellaConfig(max_partition_size=10.0, weight=0.4)
            ),
            replication_factor=2,
            wal=wal,
        )
        for eid in range(60):
            store.insert(eid, rng.getrandbits(12) | 0b1)
        store.crash_node(1)
        store.degrade_node(2, slowdown=3.0, drop_every=2)
        for _ in range(10):
            store.route_query(rng.getrandbits(12) | 0b1)
        store.recover_node(1)
        store.re_replicate()
        wal.append("noop", {}, sync=True)
        wal.compact()
        wal.close()

    # ingest pipeline with malformed rows ------------------------------
    pipeline = IngestPipeline(
        CinderellaPartitioner(
            CinderellaConfig(max_partition_size=50.0, weight=0.4)
        ),
        max_pending=8,
    )
    for eid in range(20):
        pipeline.ingest(IngestRequest("insert", eid, rng.getrandbits(8) | 0b1))
    pipeline.ingest(IngestRequest("insert", 5, 0b1))      # duplicate id
    pipeline.ingest(IngestRequest("insert", 100, 0))      # empty synopsis
    pipeline.ingest(IngestRequest("update", 999, 0b1))    # unknown entity


def _parse_address(address: str) -> tuple[str, int]:
    """Parse a ``host:port`` argument (for --cluster and ``top``)."""
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not 0 < port < 65536:
        raise SystemExit(f"error: bad address {address!r} (want host:port)")
    return host, port


def _scrape_cluster_view(address: str, stale_after_s: float):
    """One federated scrape through a running router's ``obs`` verb."""
    from repro.obs.federation import FederatedView
    from repro.server.client import ServerClient

    host, port = _parse_address(address)
    client = ServerClient(host, port)
    try:
        document = client.request("obs").fields.get("cluster")
    finally:
        client.close()
    if not isinstance(document, dict):
        raise SystemExit(
            f"error: {address} answered the obs verb without a cluster "
            f"document (is it a router?)"
        )
    return FederatedView.from_json_obj(document, stale_after_s=stale_after_s)


def _format_cluster_summary(view, address: str) -> str:
    """Human summary of a federated view: sources, verbs, objectives."""
    from repro.obs.slo import DEFAULT_OBJECTIVES
    from repro.reporting.tables import format_table

    blocks: list[str] = []
    source_rows = []
    for source in view.sources:
        if source["unreachable"]:
            status = "UNREACHABLE"
        elif source["stale"]:
            status = "STALE"
        elif not source["enabled"]:
            status = "obs disabled"
        else:
            status = "up"
        source_rows.append([
            source["name"], source["tier"], status,
            "-" if source["age_s"] is None else f"{source['age_s']:.1f}s",
            source.get("error", ""),
        ])
    blocks.append(format_table(
        ["node", "tier", "status", "age", "error"], source_rows,
        title=f"Cluster observability via {address}",
    ))

    for family, title in (
        ("repro_server_request_seconds", "Node request latency by verb"),
        ("repro_router_request_seconds", "Router request latency by verb"),
    ):
        ops = sorted({
            sample["labels"].get("op")
            for sample in view.families.get(family, {}).get("samples", ())
            if sample["labels"].get("op")
        })
        rows = []
        for op in ops:
            merged = view.merged_histogram(family, op=op)
            if merged is None or not merged["count"]:
                continue
            p50 = view.quantile(family, 0.5, op=op)
            p99 = view.quantile(family, 0.99, op=op)
            rows.append([
                op, int(merged["count"]),
                f"{p50 * 1e3:.2f}" if p50 is not None else "-",
                f"{p99 * 1e3:.2f}" if p99 is not None else "-",
            ])
        if rows:
            blocks.append(format_table(
                ["verb", "requests", "p50 ms", "p99 ms"], rows, title=title,
            ))

    slo_rows = []
    for objective in DEFAULT_OBJECTIVES:
        good, total = objective.counts(view)
        if total <= 0:
            continue
        compliance = good / total
        slo_rows.append([
            objective.name, f"{objective.objective:.3f}",
            f"{compliance:.4f}",
            "MET" if compliance >= objective.objective else "VIOLATED",
        ])
    if slo_rows:
        blocks.append(format_table(
            ["objective", "target", "compliance", "status"], slo_rows,
            title="Service-level objectives (lifetime compliance)",
        ))
    if view.mixed_bucket_families:
        blocks.append(
            "note: sources disagree on bucket bounds for: "
            + ", ".join(sorted(view.mixed_bucket_families))
        )
    return "\n\n".join(blocks)


def _serve_cluster_prometheus(args: argparse.Namespace) -> int:
    """Serve the federated Prometheus exposition over HTTP.

    Every GET triggers a fresh scrape through the router, so the answer
    is always current; scrape failures surface as HTTP 503, never as a
    stale page.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    address = args.cluster

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                view = _scrape_cluster_view(address, args.stale_after)
                body = view.to_prometheus().encode()
                code = 200
            except (SystemExit, OSError) as err:
                body = f"# scrape of {address} failed: {err}\n".encode()
                code = 503
            self.send_response(code)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *_args: object) -> None:
            pass

    class _Server(ThreadingHTTPServer):
        # handle_request() returns once the handler *thread* is
        # dispatched; with daemon threads a bounded --max-requests run
        # would exit the process mid-response. Non-daemon threads make
        # server_close() join in-flight responses first.
        daemon_threads = False

    server = _Server(("127.0.0.1", args.listen), _Handler)
    host, port = server.server_address[:2]
    print(f"cluster Prometheus endpoint on http://{host}:{port}/metrics "
          f"(federating {address})", flush=True)
    try:
        if args.max_requests > 0:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_obs_cluster(args: argparse.Namespace) -> int:
    """Scrape a running router and render the federated view."""
    import json

    if args.listen is not None:
        return _serve_cluster_prometheus(args)
    view = _scrape_cluster_view(args.cluster, args.stale_after)
    if args.format == "prometheus":
        print(view.to_prometheus(), end="")
    elif args.format == "json":
        print(json.dumps(view.to_json_obj(), indent=2))
    else:
        print(_format_cluster_summary(view, args.cluster))
    return 1 if view.unreachable else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Run the built-in workload under observability and report it."""
    import json

    from repro import obs
    from repro.reporting.obs_summary import (
        format_run_summary,
        format_span_tree,
    )

    if args.cluster:
        return _cmd_obs_cluster(args)

    state = obs.enable(
        slow_op_threshold_s=args.slow_ms / 1e3,
        trace_jsonl_path=args.trace_jsonl,
    )
    try:
        _run_obs_workload(args)
    finally:
        # flush the deferred legacy-counter mirrors while the state is
        # still enabled — the exposition below reads the registry, and
        # an unflushed mirror would understate every shimmed counter
        obs.flush_mirrors()
        obs.disable()

    if args.format == "prometheus":
        print(state.registry.to_prometheus(), end="")
    elif args.format == "json":
        document = state.registry.to_json_obj()
        if state.tracer is not None:
            document["top_spans"] = [
                {"name": name, "calls": count, "total_s": total}
                for name, count, total in state.tracer.top_spans(args.top)
            ]
            document["slow_ops"] = list(state.tracer.slow_ops)
        document["events"] = [
            event.to_dict() for event in state.events.events()
        ]
        print(json.dumps(document, indent=2))
    else:
        print(format_run_summary(
            state, top=args.top, traces=args.traces
        ))
        if args.traces == 0 and state.tracer is not None:
            split_trace = state.tracer.find_trace("partitioner.insert")
            if split_trace is not None:
                print("\nMost recent insert trace:")
                print(format_span_tree(split_trace))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live cluster dashboard over the router's obs + stats verbs.

    Each tick scrapes the federation once and differences the cumulative
    counters against the previous tick for rates; quantiles come from
    the per-node latency histograms.  ``--iterations`` bounds the run
    (CI smoke); the default runs until Ctrl-C.
    """
    import time as _time

    from repro.obs.federation import quantile_from_buckets
    from repro.obs.slo import SloMonitor
    from repro.reporting.tables import format_table
    from repro.server.client import ServerClient

    host, port = _parse_address(args.router)
    monitor = SloMonitor()
    previous: dict[tuple[str, str], float] = {}
    previous_at: Optional[float] = None
    iteration = 0
    try:
        while args.iterations <= 0 or iteration < args.iterations:
            iteration += 1
            now = _time.monotonic()
            try:
                view = _scrape_cluster_view(args.router, args.stale_after)
                client = ServerClient(host, port)
                try:
                    stats = client.request("stats", heat=True).fields
                finally:
                    client.close()
            except (SystemExit, OSError) as err:
                print(f"scrape failed: {err}", file=sys.stderr)
                _time.sleep(args.interval)
                continue
            monitor.observe(view)
            statuses = monitor.evaluate()

            blocks: list[str] = []
            up = sum(1 for s in view.sources if not s["unreachable"])
            blocks.append(
                f"repro top — {args.router} — tick {iteration} — "
                f"{up}/{len(view.sources)} sources up"
                + (f", unreachable: {', '.join(view.unreachable)}"
                   if view.unreachable else "")
            )

            # per-node per-verb rates and latency quantiles ------------
            family = view.families.get("repro_server_request_seconds")
            rows = []
            current: dict[tuple[str, str], float] = {}
            elapsed = (
                now - previous_at if previous_at is not None else None
            )
            for sample in (family or {}).get("samples", ()):
                labels = sample["labels"]
                op, node = labels.get("op"), labels.get("node")
                if not op or not node or "buckets" not in sample:
                    continue
                count = float(sample.get("count", 0))
                current[(node, op)] = count
                if elapsed and elapsed > 0:
                    rps = (count - previous.get((node, op), 0.0)) / elapsed
                    rps_text = f"{max(0.0, rps):.1f}"
                else:
                    rps_text = "-"
                pairs = [
                    (float("inf") if le in ("+Inf", None) else float(le), c)
                    for le, c in sample["buckets"]
                ]
                p50 = quantile_from_buckets(pairs, 0.5)
                p99 = quantile_from_buckets(pairs, 0.99)
                rows.append([
                    node, op, int(count), rps_text,
                    f"{p50 * 1e3:.2f}" if p50 is not None else "-",
                    f"{p99 * 1e3:.2f}" if p99 is not None else "-",
                ])
            previous, previous_at = current, now
            if rows:
                rows.sort(key=lambda row: (row[0], row[1]))
                blocks.append(format_table(
                    ["node", "verb", "requests", "rps", "p50 ms", "p99 ms"],
                    rows, title="Requests by node and verb",
                ))

            # shed rate across the fleet -------------------------------
            shed = (
                view.counter_total(
                    "repro_server_writes_shed_overloaded_total"
                )
                + view.counter_total(
                    "repro_server_writes_shed_shutdown_total"
                )
            )
            handled = view.counter_total(
                "repro_server_requests_handled_total"
            )
            shed_rate = shed / handled if handled else 0.0
            blocks.append(
                f"writes shed: {int(shed)} "
                f"(shed rate {shed_rate:.4f} over {int(handled)} requests)"
            )

            # replica lifecycle + catch-up from the router's stats -----
            replicas = stats.get("replicas") or {}
            health = stats.get("health") or {}
            catchup = stats.get("catchup_buffered") or {}
            if replicas or health:
                names = sorted(set(replicas) | set(health))
                blocks.append(format_table(
                    ["node", "breaker", "replica", "catch-up depth"],
                    [
                        [
                            name,
                            (health.get(name) or {}).get("state", "-"),
                            (replicas.get(name) or {}).get("state", "-"),
                            catchup.get(name, 0),
                        ]
                        for name in names
                    ],
                    title="Replica health",
                ))

            # partition heat (serve nodes expose it when adapting) -----
            heat = stats.get("heat") or {}
            if heat:
                hottest = sorted(
                    heat.items(),
                    key=lambda kv: kv[1]["reads"] + kv[1]["writes"],
                    reverse=True,
                )[:args.heat_rows]
                blocks.append(format_table(
                    ["partition", "reads", "writes", "last version"],
                    [
                        [pid, h["reads"], h["writes"], h["last_version"]]
                        for pid, h in hottest
                    ],
                    title=f"Partition heat (top {len(hottest)} "
                          f"of {len(heat)})",
                ))

            # SLO burn-rate alerts -------------------------------------
            alert_rows = []
            for status in statuses:
                compliance = status.compliance
                if compliance is None:
                    continue
                if status.firing:
                    for alert in status.alerts:
                        alert_rows.append([
                            status.objective.name, alert["severity"],
                            f"{alert['long_burn']:.1f}x",
                            f"{alert['short_burn']:.1f}x",
                            f"{compliance:.4f}",
                        ])
                else:
                    alert_rows.append([
                        status.objective.name, "ok", "-", "-",
                        f"{compliance:.4f}",
                    ])
            if alert_rows:
                blocks.append(format_table(
                    ["objective", "alert", "long burn", "short burn",
                     "compliance"],
                    alert_rows, title="SLO burn rates",
                ))

            output = "\n\n".join(blocks)
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(output, flush=True)
            if args.iterations <= 0 or iteration < args.iterations:
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving layer until interrupted, then drain gracefully."""
    import asyncio
    import signal

    from repro import obs as obs_runtime
    from repro.adapt.controller import AdaptationConfig
    from repro.server.server import CinderellaServer, ServerConfig

    adaptation = (
        AdaptationConfig(cooldown_s=args.adapt_cooldown)
        if args.adapt_every > 0 else None
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        name=args.name,
        max_pending=args.max_pending,
        batch_max=args.batch_max,
        max_parallel_reads=args.parallel_reads,
        maintenance_interval_s=args.maintenance_interval,
        merge_min_fill=args.merge_min_fill,
        reorganize_every=args.reorganize_every,
        adapt_every=args.adapt_every,
        adaptation=adaptation,
        wal_path=args.wal,
        snapshot_path=args.snapshot,
        checkpoint_every=args.checkpoint_every,
        archive_dir=args.archive_dir,
    )
    table_config = CinderellaConfig(
        max_partition_size=args.partition_size,
        weight=args.weight,
        use_synopsis_index=True,
    )

    async def _serve() -> int:
        server = CinderellaServer(config=config, table_config=table_config)
        host, port = await server.start()
        print(f"repro server listening on {host}:{port} "
              f"(B={args.partition_size:g}, w={args.weight}, "
              f"max_pending={args.max_pending})", flush=True)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stopping.set)
        stopped = asyncio.ensure_future(server.serve_until_stopped())
        interrupted = asyncio.ensure_future(stopping.wait())
        await asyncio.wait(
            (stopped, interrupted), return_when=asyncio.FIRST_COMPLETED
        )
        if not stopped.done():
            print("draining...", file=sys.stderr)
            await server.stop()
            await stopped
        interrupted.cancel()
        snapshot = server._stats_snapshot()
        counters = snapshot["counters"]
        print(f"served {counters['requests_total']} requests "
              f"({counters['writes_applied']} writes applied, "
              f"{counters['queries_served']} queries, "
              f"shed rate {counters['shed_rate']:.4f}); "
              f"{snapshot['partitions']} partitions, "
              f"{snapshot['entities']} entities")
        problems = server.table.check_consistency()
        for problem in problems:
            print(f"integrity problem: {problem}", file=sys.stderr)
        return 1 if problems else 0

    if args.obs:
        # propagate=True: accept and emit wire trace contexts so this
        # process's spans join cluster-wide traces
        obs_runtime.enable(propagate=True)
    try:
        return asyncio.run(_serve())
    finally:
        if args.obs:
            obs_runtime.disable()


def _parse_node_spec(spec: str, index: int) -> "NodeAddress":
    """Parse one ``route`` node argument: ``host:port`` or ``name=host:port``."""
    from repro.router.placement import NodeAddress

    name, _, rest = spec.rpartition("=")
    if not name:
        name, rest = f"node{index}", spec
    host, _, port_text = rest.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not 0 < port < 65536:
        raise SystemExit(
            f"error: bad node spec {spec!r} (want host:port or name=host:port)"
        )
    return NodeAddress(name=name, host=host, port=port)


def _cmd_route(args: argparse.Namespace) -> int:
    """Run the routing tier in front of already-running serve nodes."""
    import asyncio
    import signal

    from repro import obs as obs_runtime
    from repro.router.placement import PlacementMap
    from repro.router.router import CinderellaRouter, RouterConfig

    nodes = [_parse_node_spec(spec, i) for i, spec in enumerate(args.nodes)]
    placement = PlacementMap(
        nodes,
        n_shards=args.shards,
        replication_factor=args.replication_factor,
    )
    config = RouterConfig(
        host=args.host,
        port=args.port,
        name=args.name,
        upstream_timeout_s=args.upstream_timeout,
        failure_threshold=args.failure_threshold,
    )

    async def _route() -> int:
        router = CinderellaRouter(placement, config=config)
        host, port = await router.start()
        print(f"repro router listening on {host}:{port} "
              f"({len(nodes)} nodes, {placement.n_shards} shards, "
              f"rf={placement.replication_factor})", flush=True)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stopping.set)
        stopped = asyncio.ensure_future(router.serve_until_stopped())
        interrupted = asyncio.ensure_future(stopping.wait())
        await asyncio.wait(
            (stopped, interrupted), return_when=asyncio.FIRST_COMPLETED
        )
        if not stopped.done():
            print("draining...", file=sys.stderr)
            await router.stop()
            await stopped
        interrupted.cancel()
        counters = router.counters.as_dict()
        print(f"routed {counters['requests_total']} requests "
              f"({counters['writes_routed']} writes, "
              f"{counters['queries_scattered']} scatters, "
              f"{counters['failovers']} failovers, "
              f"availability {counters['availability']:.4f})")
        return 0

    if args.obs:
        # propagate=True: accept and emit wire trace contexts so this
        # process's spans join cluster-wide traces
        obs_runtime.enable(propagate=True)
    try:
        return asyncio.run(_route())
    finally:
        if args.obs:
            obs_runtime.disable()


def _cmd_verify_catalog(args: argparse.Namespace) -> int:
    """Offline integrity check of a snapshot file (table or store)."""
    import json

    from repro.storage.snapshot import (
        SnapshotFormatError,
        load_store,
        load_table,
    )

    try:
        document = json.loads(open(args.snapshot, encoding="utf-8").read())
        snapshot_format = document.get("format") if isinstance(document, dict) else None
    except (OSError, ValueError) as error:
        print(f"error: cannot read {args.snapshot}: {error}", file=sys.stderr)
        return 1
    problems: list[str] = []
    try:
        if snapshot_format == "repro-cinderella-store-snapshot":
            store, wal_seq = load_store(args.snapshot)
            problems = store.partitioner.check_invariants() + store.check_placement()
            print(f"store snapshot: {len(store.catalog)} partitions, "
                  f"{store.catalog.entity_count} entities, "
                  f"{len(store.cluster)} nodes, wal_seq={wal_seq}")
        elif snapshot_format == "repro-cinderella-snapshot":
            table = load_table(args.snapshot)
            problems = table.partitioner.check_invariants()
            print(f"table snapshot: {table.partition_count()} partitions, "
                  f"{table.catalog.entity_count} entities")
        else:
            print(f"error: {args.snapshot} is not a repro snapshot "
                  f"(format {snapshot_format!r})", file=sys.stderr)
            return 1
    except SnapshotFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for problem in problems:
        print(f"invariant violation: {problem}", file=sys.stderr)
    print("catalog integrity: " + ("FAILED" if problems else "OK"))
    return 1 if problems else 0


def _cmd_backup(args: argparse.Namespace) -> int:
    """Archive a node's WAL (and checkpoint, when present) offline."""
    import json

    from repro.backup import BackupArchive
    from repro.storage.wal import WALFormatError, read_wal

    archive = BackupArchive(args.archive)
    try:
        basis_seq, records, torn = read_wal(args.wal)
    except (OSError, WALFormatError) as error:
        print(f"error: cannot read WAL {args.wal}: {error}", file=sys.stderr)
        return 1
    if torn:
        print(f"note: {args.wal} has a torn tail (ignored, as replay "
              f"would)", file=sys.stderr)
    segment_path = archive.archive_segment(basis_seq, records)
    if segment_path is None:
        print(f"WAL {args.wal} holds no records past its basis "
              f"(seq {basis_seq}); nothing to archive")
    else:
        print(f"archived segment [{records[0].seq}, {records[-1].seq}] "
              f"-> {segment_path}")
    if args.snapshot:
        try:
            with open(args.snapshot, encoding="utf-8") as handle:
                wal_seq = json.load(handle).get("wal_seq")
        except (OSError, ValueError) as error:
            print(f"error: cannot read snapshot {args.snapshot}: {error}",
                  file=sys.stderr)
            return 1
        if not isinstance(wal_seq, int) or isinstance(wal_seq, bool):
            print(f"error: {args.snapshot} is not a node checkpoint "
                  f"(no wal_seq)", file=sys.stderr)
            return 1
        checkpoint_path = archive.archive_checkpoint(args.snapshot, wal_seq)
        print(f"archived checkpoint wal_seq={wal_seq} -> {checkpoint_path}")
    print(f"archive now reaches seq {archive.last_archived_seq()}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Point-in-time recovery: rebuild node state as of --to-seq."""
    from repro.backup import BackupArchive, BackupError, restore_to_seq
    from repro.storage.snapshot import save_node_checkpoint
    from repro.storage.wal import WALFormatError

    archive = BackupArchive(args.archive)
    try:
        table, restored_seq = restore_to_seq(archive, to_seq=args.to_seq)
    except (BackupError, WALFormatError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    save_node_checkpoint(table, restored_seq, args.out)
    print(f"restored state as of seq {restored_seq}: "
          f"{table.catalog.entity_count} entities, "
          f"{table.partition_count()} partitions")
    print(f"checkpoint written to {args.out}")
    print(f"start the node with --wal <fresh or matching WAL> "
          f"--snapshot {args.out} to serve this state")
    problems = table.check_consistency()
    for problem in problems:
        print(f"integrity problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    """Verify every archived checkpoint and WAL segment at rest."""
    from repro.backup import BackupArchive
    from repro.storage.snapshot import SnapshotFormatError, load_node_checkpoint

    archive = BackupArchive(args.archive)
    report = archive.scrub()
    print(f"scrub of {report['root']}: "
          f"{report['checkpoints_verified']} checkpoints, "
          f"{report['segments_verified']} segments, "
          f"{report['records_verified']} records verified")
    problems = list(report["problems"])
    if args.snapshot:
        try:
            _table, wal_seq = load_node_checkpoint(args.snapshot)
            print(f"live snapshot {args.snapshot}: OK (wal_seq={wal_seq})")
        except (OSError, SnapshotFormatError) as error:
            problems.append(f"live snapshot {args.snapshot}: {error}")
    for problem in problems:
        print(f"scrub problem: {problem}", file=sys.stderr)
    print("backup integrity: " + ("FAILED" if problems else "OK"))
    return 1 if problems else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cinderella online partitioning — paper reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="partition the Figure 1 product catalog")

    dbpedia = commands.add_parser("dbpedia", help="run the DBpedia scenario")
    dbpedia.add_argument("--entities", type=int, default=10_000)
    dbpedia.add_argument("--partition-size", type=float, default=500.0)
    dbpedia.add_argument("--weight", type=float, default=0.2)
    dbpedia.add_argument("--seed", type=int, default=42)
    dbpedia.add_argument("--snapshot", help="save the loaded table here")

    tpch = commands.add_parser("tpch", help="run the TPC-H scenario")
    tpch.add_argument("--scale-factor", type=float, default=0.002)
    tpch.add_argument("--partition-size", type=float, default=500.0)
    tpch.add_argument("--seed", type=int, default=7)
    tpch.add_argument("--query", type=int, choices=range(1, 23),
                      metavar="1-22", help="also run this TPC-H query")

    advise = commands.add_parser("advise", help="recommend B and w")
    advise.add_argument("--entities", type=int, default=2_000)
    advise.add_argument("--seed", type=int, default=42)

    adapt = commands.add_parser(
        "adapt",
        help="run the closed adaptation loop on a scripted workload shift",
    )
    adapt.add_argument("--entities", type=int, default=900)
    adapt.add_argument("--groups", type=int, default=6,
                       help="disjoint attribute groups in the dataset")
    adapt.add_argument("--partition-size", type=float, default=30.0,
                       help="initial B (deliberately fine)")
    adapt.add_argument("--weight", type=float, default=0.3,
                       help="initial w")
    adapt.add_argument("--rounds", type=int, default=4,
                       help="query rounds per phase (one decision each)")
    adapt.add_argument("--min-observations", type=int, default=32,
                       help="controller traffic gate before any decision")
    adapt.add_argument("--horizon", type=float, default=500.0,
                       help="queries the action cost is amortized over")
    adapt.add_argument("--dry-run", action="store_true",
                       help="evaluate decisions without acting")

    inspect = commands.add_parser("inspect", help="inspect a snapshot file")
    inspect.add_argument("snapshot")

    chaos = commands.add_parser(
        "chaos", help="run a workload under injected node failures"
    )
    chaos.add_argument("--ops", type=int, default=1_000)
    chaos.add_argument("--nodes", type=int, default=6)
    chaos.add_argument("--replication-factor", type=int, default=2)
    chaos.add_argument("--crash-rate", type=float, default=0.01)
    chaos.add_argument("--partition-size", type=float, default=10.0)
    chaos.add_argument("--weight", type=float, default=0.4)
    chaos.add_argument("--seed", type=int, default=42)

    query_path = commands.add_parser(
        "query-path",
        help="run the pruning-index + result-cache fast path demo",
    )
    query_path.add_argument("--entities", type=int, default=5_000)
    query_path.add_argument("--partition-size", type=float, default=500.0)
    query_path.add_argument("--weight", type=float, default=0.3)
    query_path.add_argument("--rounds", type=int, default=5)
    query_path.add_argument("--queries", type=int, default=20)
    query_path.add_argument("--seed", type=int, default=42)

    verify = commands.add_parser(
        "verify-catalog",
        help="integrity-check a saved snapshot (catalog + placement)",
    )
    verify.add_argument("snapshot")

    obs = commands.add_parser(
        "obs",
        help="run a mixed workload under observability and report it",
    )
    obs.add_argument(
        "--format", choices=("summary", "prometheus", "json"),
        default="summary", help="output format (default: summary)",
    )
    obs.add_argument("--entities", type=int, default=1_000)
    obs.add_argument("--partition-size", type=float, default=200.0)
    obs.add_argument("--weight", type=float, default=0.3)
    obs.add_argument("--seed", type=int, default=42)
    obs.add_argument("--top", type=int, default=10,
                     help="span names in the top-spans table")
    obs.add_argument("--traces", type=int, default=0,
                     help="also print this many recent span trees")
    obs.add_argument("--slow-ms", type=float, default=50.0,
                     help="slow-op log threshold in milliseconds")
    obs.add_argument("--trace-jsonl", metavar="PATH",
                     help="also export finished traces as JSON lines")
    obs.add_argument("--cluster", metavar="HOST:PORT",
                     help="instead of the built-in workload, scrape a "
                          "running router's obs verb and render the "
                          "federated cluster view")
    obs.add_argument("--listen", type=int, metavar="PORT",
                     help="with --cluster: serve the fleet Prometheus "
                          "exposition on this HTTP port (0 picks one)")
    obs.add_argument("--max-requests", type=int, default=0,
                     help="with --listen: exit after this many scrapes "
                          "(0: serve until Ctrl-C)")
    obs.add_argument("--stale-after", type=float, default=60.0,
                     help="with --cluster: mark documents older than "
                          "this many seconds as stale")

    top = commands.add_parser(
        "top",
        help="live cluster dashboard (rates, latency quantiles, "
             "replica health, SLO burn rates)",
    )
    top.add_argument("router", metavar="HOST:PORT",
                     help="address of a running route tier")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between scrapes")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after this many ticks (0: until Ctrl-C)")
    top.add_argument("--stale-after", type=float, default=60.0,
                     help="staleness threshold for scraped documents")
    top.add_argument("--no-clear", action="store_true",
                     help="append ticks instead of clearing the screen "
                          "(CI, logs)")
    top.add_argument("--heat-rows", type=int, default=10,
                     help="partitions shown in the heat table (when the "
                          "scraped node reports adaptation heat)")

    serve = commands.add_parser(
        "serve",
        help="run the online serving layer (TCP, line-delimited JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7712,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--name", default="node",
                       help="node name reported in stats and metrics")
    serve.add_argument("--wal", metavar="PATH",
                       help="write-ahead log path: fsync acknowledged "
                            "writes and replay them on restart")
    serve.add_argument("--snapshot", metavar="PATH",
                       help="node checkpoint path: checkpoints snapshot "
                            "the table here and reset the WAL, bounding "
                            "restart replay")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="checkpoint after this many journaled writes "
                            "(0: only on 'maintain' with checkpoint:true)")
    serve.add_argument("--archive-dir", metavar="DIR",
                       help="backup archive root: archive WAL segments "
                            "and checkpoint copies for point-in-time "
                            "recovery")
    serve.add_argument("--partition-size", type=float, default=500.0)
    serve.add_argument("--weight", type=float, default=0.3)
    serve.add_argument("--max-pending", type=int, default=256,
                       help="write-queue depth before shedding")
    serve.add_argument("--batch-max", type=int, default=32,
                       help="max writes applied per exclusive-lock hold")
    serve.add_argument("--parallel-reads", type=int, default=8,
                       help="max queries scanning concurrently")
    serve.add_argument("--maintenance-interval", type=float, default=0.25,
                       help="seconds between background maintenance passes")
    serve.add_argument("--merge-min-fill", type=float, default=0.25,
                       help="fill threshold for background merges")
    serve.add_argument("--reorganize-every", type=int, default=0,
                       help="reorganize every Nth maintenance pass (0: never)")
    serve.add_argument("--adapt-every", type=int, default=0,
                       help="consult the adaptation controller every Nth "
                            "maintenance pass (0: disabled)")
    serve.add_argument("--adapt-cooldown", type=float, default=30.0,
                       help="seconds between adaptation actions")
    serve.add_argument("--obs", action="store_true",
                       help="enable the observability layer for the run")

    route = commands.add_parser(
        "route",
        help="run the routing tier in front of running serve nodes",
    )
    route.add_argument("nodes", nargs="+", metavar="NODE",
                       help="upstream node as host:port or name=host:port")
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=7711,
                       help="listen port (0 picks a free one)")
    route.add_argument("--name", default="router")
    route.add_argument("--shards", type=int, default=0,
                       help="shard count (0: 4x the node count)")
    route.add_argument("--replication-factor", type=int, default=2,
                       help="replicas per shard (capped at node count)")
    route.add_argument("--upstream-timeout", type=float, default=2.0,
                       help="per-exchange upstream timeout in seconds")
    route.add_argument("--failure-threshold", type=int, default=3,
                       help="consecutive failures before ejecting a node")
    route.add_argument("--obs", action="store_true",
                       help="enable the observability layer for the run")

    backup = commands.add_parser(
        "backup",
        help="archive a node's WAL (and checkpoint) for recovery",
    )
    backup.add_argument("--wal", required=True, metavar="PATH",
                        help="the node's write-ahead log to archive")
    backup.add_argument("--archive", required=True, metavar="DIR",
                        help="backup archive root")
    backup.add_argument("--snapshot", metavar="PATH",
                        help="also archive this node checkpoint")

    recover = commands.add_parser(
        "recover",
        help="point-in-time recovery from a backup archive",
    )
    recover.add_argument("--archive", required=True, metavar="DIR",
                         help="backup archive root")
    recover.add_argument("--to-seq", type=int, default=None, metavar="SEQ",
                         help="restore state as of this WAL sequence "
                              "(default: the newest archived)")
    recover.add_argument("--out", required=True, metavar="PATH",
                         help="write the restored node checkpoint here")

    scrub = commands.add_parser(
        "scrub",
        help="verify checksums of archived checkpoints and WAL segments",
    )
    scrub.add_argument("--archive", required=True, metavar="DIR",
                       help="backup archive root")
    scrub.add_argument("--snapshot", metavar="PATH",
                       help="also verify this live node checkpoint")

    return parser


_HANDLERS = {
    "demo": _cmd_demo,
    "dbpedia": _cmd_dbpedia,
    "tpch": _cmd_tpch,
    "advise": _cmd_advise,
    "adapt": _cmd_adapt,
    "inspect": _cmd_inspect,
    "chaos": _cmd_chaos,
    "query-path": _cmd_query_path,
    "verify-catalog": _cmd_verify_catalog,
    "obs": _cmd_obs,
    "top": _cmd_top,
    "serve": _cmd_serve,
    "route": _cmd_route,
    "backup": _cmd_backup,
    "recover": _cmd_recover,
    "scrub": _cmd_scrub,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)
