"""Configuration of the Cinderella partitioner.

Cinderella has two main parameters (Section V): the partition size limit
``B`` (``MAXSIZE`` in Algorithm 1) and the rating weight ``w`` balancing
positive against negative evidence (Section IV).  The remaining knobs
select the size model, the (optional) synopsis index extension mentioned in
the paper's conclusions, and two ablation switches used by the benchmark
harness (exact split starters, first-fit partition selection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.core.sizes import SizeModel, UniformSizeModel


@dataclass(frozen=True)
class CinderellaConfig:
    """Parameters controlling :class:`repro.core.partitioner.CinderellaPartitioner`.

    Attributes:
        max_partition_size: the paper's ``B`` / ``MAXSIZE`` — a partition is
            split when adding an entity would push its total size beyond
            this limit.  With the default :class:`UniformSizeModel` the limit
            is a number of entities, matching the paper's B = 500 … 50 000.
        weight: the paper's ``w`` in ``r' = w·h⁺ − (1−w)(hₑ⁻+hₚ⁻)``.
            ``w = 0`` only ever accepts perfectly homogeneous placements;
            the paper finds 0.2–0.5 reasonable.
        size_model: the ``SIZE()`` function used for ratings, capacity
            checks, and the efficiency metric.
        use_synopsis_index: enable the inverted attribute→partition index
            (Section VII future work).  Off by default so the reference
            behaviour is Algorithm 1's full catalog scan.
        exact_starters: ablation — maintain split starters by exhaustive
            pairwise search (quadratic) instead of the paper's incremental
            heuristic.
        selection: ablation — ``"best"`` scans the whole catalog for the
            best rating (Algorithm 1); ``"first"`` greedily takes the first
            non-negative rating.
        normalize_rating: ablation — when False, partitions are compared
            by the *local* rating ``r'`` instead of the global rating
            ``r``.  Section IV argues ``r'`` "is not comparable between
            partitions because the amount of data and size of the
            attribute set varies"; disabling the normalisation
            demonstrates why (large partitions dominate every comparison).
    """

    max_partition_size: float = 5000.0
    weight: float = 0.5
    size_model: SizeModel = field(default_factory=UniformSizeModel)
    use_synopsis_index: bool = False
    exact_starters: bool = False
    selection: Literal["best", "first"] = "best"
    normalize_rating: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(f"weight must lie in [0, 1], got {self.weight}")
        if self.max_partition_size <= 0:
            raise ValueError(
                f"max_partition_size must be positive, got {self.max_partition_size}"
            )
        if self.selection not in ("best", "first"):
            raise ValueError(f"selection must be 'best' or 'first', got {self.selection!r}")
