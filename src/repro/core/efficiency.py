"""Partitioning efficiency — Definition 1 of the paper.

Given a universal table ``T`` of entities, a query set ``W``, and a
partitioning ``P``::

    EFFICIENCY(P) = Σ_{q∈W, e∈T} sgn(|e ∧ q|) · SIZE(e)
                    ───────────────────────────────────
                    Σ_{q∈W, p∈P} sgn(|p ∧ q|) · SIZE(p)

The numerator is how much data is *relevant* to the workload; the
denominator how much data is *read* when every non-prunable partition is
scanned in full.  The value lies in ``[0, 1]``: 1 means every byte read was
needed, small values mean the partitioning forces queries over mostly
irrelevant entities.  The unpartitioned universal table is the special case
``P = {T}``: any query with at least one relevant entity scans everything.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.catalog import PartitionCatalog


def partitioning_efficiency(
    entities: Iterable[tuple[int, float]],
    queries: Sequence[int],
    partitions: Iterable[tuple[int, float]],
) -> float:
    """Compute EFFICIENCY(P) from raw synopses.

    Args:
        entities: ``(synopsis_mask, SIZE(e))`` per entity of the table.
        queries: query synopsis masks (the workload ``W``).
        partitions: ``(synopsis_mask, SIZE(p))`` per partition.

    Returns:
        The efficiency in ``[0, 1]``.  A workload that reads nothing (every
        partition prunable for every query) is vacuously perfect: 1.0.
    """
    relevant = 0.0
    for entity_mask, entity_size in entities:
        matched = sum(1 for q in queries if entity_mask & q)
        relevant += matched * entity_size
    read = 0.0
    for partition_mask, partition_size in partitions:
        touched = sum(1 for q in queries if partition_mask & q)
        read += touched * partition_size
    if read == 0.0:
        return 1.0
    return relevant / read


def catalog_efficiency(catalog: "PartitionCatalog", queries: Sequence[int]) -> float:
    """EFFICIENCY(P) for a live partition catalog.

    Entity sizes and partition sizes come from the catalog itself, so the
    metric automatically agrees with whatever :class:`~repro.core.sizes.SizeModel`
    the partitioner was configured with.
    """
    entities = (
        (mask, size)
        for partition in catalog
        for _eid, mask, size in partition.members()
    )
    partitions = ((p.mask, p.total_size) for p in catalog)
    return partitioning_efficiency(entities, queries, partitions)


def universal_table_efficiency(
    entities: Sequence[tuple[int, float]], queries: Sequence[int]
) -> float:
    """EFFICIENCY of the unpartitioned baseline (``P = {T}``).

    The whole table is one partition whose synopsis is the union of all
    entity synopses; every query that matches anything reads everything.
    """
    union_mask = 0
    total_size = 0.0
    for mask, size in entities:
        union_mask |= mask
        total_size += size
    return partitioning_efficiency(entities, queries, [(union_mask, total_size)])
