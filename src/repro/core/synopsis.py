"""Synopses: compact attribute-set summaries of entities, partitions, queries.

The paper (Section II) describes entities, partitions, and queries uniformly
through *synopses* — attribute sets on which the partitioning efficiency and
the Cinderella rating are defined.  This module provides both a thin
object-oriented wrapper (:class:`Synopsis`) and the raw mask-level functions
used on hot paths (rating scans touch every partition for every insert, so
the partitioner works on plain integers and calls these helpers).

All cardinality operators of the paper map to population counts of mask
combinations:

=====================  ==========================================
Paper notation         Mask expression
=====================  ==========================================
``|a ∧ b|``            ``(a & b).bit_count()``
``|a ∨ b|``            ``(a | b).bit_count()``
``|a ⊕ b|``            ``(a ^ b).bit_count()``
``|¬a ∧ b|``           ``(b & ~a).bit_count()`` == ``|b| - |a ∧ b|``
=====================  ==========================================
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.dictionary import AttributeDictionary


def overlap(a: int, b: int) -> int:
    """``|a ∧ b|`` — number of attributes shared by both synopses.

    >>> overlap(0b0110, 0b0011)
    1
    """
    return (a & b).bit_count()


def union_count(a: int, b: int) -> int:
    """``|a ∨ b|`` — number of distinct attributes across both synopses."""
    return (a | b).bit_count()


def difference(a: int, b: int) -> int:
    """``|a ⊕ b|`` — the DIFF measure used for split starters (Section III)."""
    return (a ^ b).bit_count()


def missing_from(a: int, b: int) -> int:
    """``|¬a ∧ b|`` — attributes present in *b* but absent from *a*."""
    return (b & ~a).bit_count()


def is_relevant(entity_or_partition: int, query: int) -> bool:
    """``sgn(|x ∧ q|) = 1`` — the pruning predicate of Definition 1."""
    return (entity_or_partition & query) != 0


class Synopsis:
    """An immutable attribute-set synopsis bound to a dictionary.

    ``Synopsis`` is the public, name-aware face of the integer masks the
    algorithm uses internally.  Set algebra is available through operators::

        s1 & s2    # intersection
        s1 | s2    # union
        s1 ^ s2    # symmetric difference
        len(s1)    # cardinality
    """

    __slots__ = ("_mask", "_dictionary")

    def __init__(self, mask: int, dictionary: "AttributeDictionary") -> None:
        if mask < 0:
            raise ValueError("synopsis masks are non-negative integers")
        self._mask = mask
        self._dictionary = dictionary

    @classmethod
    def of(
        cls, attributes: Iterable[str], dictionary: "AttributeDictionary"
    ) -> "Synopsis":
        """Build a synopsis from attribute names, interning new names."""
        return cls(dictionary.encode(attributes), dictionary)

    @property
    def mask(self) -> int:
        """The raw bitmask (what the partitioner's hot loop consumes)."""
        return self._mask

    @property
    def dictionary(self) -> "AttributeDictionary":
        return self._dictionary

    def attributes(self) -> tuple[str, ...]:
        """The attribute names this synopsis lists."""
        return self._dictionary.decode(self._mask)

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __bool__(self) -> bool:
        return self._mask != 0

    def __contains__(self, name: str) -> bool:
        if name not in self._dictionary:
            return False
        return bool(self._mask & (1 << self._dictionary.id_of(name)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Synopsis):
            return NotImplemented
        return self._mask == other._mask and self._dictionary is other._dictionary

    def __hash__(self) -> int:
        return hash((self._mask, id(self._dictionary)))

    def _check_compatible(self, other: "Synopsis") -> None:
        if self._dictionary is not other._dictionary:
            raise ValueError("synopses belong to different attribute dictionaries")

    def __and__(self, other: "Synopsis") -> "Synopsis":
        self._check_compatible(other)
        return Synopsis(self._mask & other._mask, self._dictionary)

    def __or__(self, other: "Synopsis") -> "Synopsis":
        self._check_compatible(other)
        return Synopsis(self._mask | other._mask, self._dictionary)

    def __xor__(self, other: "Synopsis") -> "Synopsis":
        self._check_compatible(other)
        return Synopsis(self._mask ^ other._mask, self._dictionary)

    def overlaps(self, other: "Synopsis") -> bool:
        """True when ``|self ∧ other| > 0`` (the query-relevance test)."""
        self._check_compatible(other)
        return (self._mask & other._mask) != 0

    def contains_all(self, other: "Synopsis") -> bool:
        """True when every attribute of *other* is present in *self*."""
        self._check_compatible(other)
        return (self._mask & other._mask) == other._mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Synopsis({', '.join(self.attributes())})"
