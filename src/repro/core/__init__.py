"""Core of the reproduction: the Cinderella algorithm and its metrics."""

from repro.core.config import CinderellaConfig
from repro.core.efficiency import (
    catalog_efficiency,
    partitioning_efficiency,
    universal_table_efficiency,
)
from repro.core.outcomes import ModificationOutcome, Move
from repro.core.partitioner import CinderellaPartitioner
from repro.core.rating import RatingBreakdown, rate, rate_fast
from repro.core.sizes import (
    AttributeCountSizeModel,
    ByteSizeModel,
    SizeModel,
    UniformSizeModel,
)
from repro.catalog.starters import SplitStarters
from repro.core.synopsis import Synopsis
from repro.core.workload_mode import WorkloadBasedPartitioner, WorkloadSynopsisEncoder

__all__ = [
    "AttributeCountSizeModel",
    "ByteSizeModel",
    "CinderellaConfig",
    "CinderellaPartitioner",
    "ModificationOutcome",
    "Move",
    "RatingBreakdown",
    "SizeModel",
    "SplitStarters",
    "Synopsis",
    "UniformSizeModel",
    "WorkloadBasedPartitioner",
    "WorkloadSynopsisEncoder",
    "catalog_efficiency",
    "partitioning_efficiency",
    "rate",
    "rate_fast",
    "universal_table_efficiency",
]
