"""Workload-based Cinderella (Section III, workload-based setup).

Cinderella can partition either on entity structure (the default: an entity
synopsis lists the attributes the entity instantiates) or on the workload:
"for a workload-based partitioning, an entity synopsis lists the queries an
entity is relevant to".  Entities relevant to the same queries then cluster
into the same partitions, tailoring the layout to the given query set.

This module translates attribute-space synopses into *workload space*: bit
``i`` of a workload-space synopsis means "relevant to query ``i``".  The
translated masks feed the unchanged Cinderella algorithm — the rating, the
starters, and the splits are completely agnostic to what the bits mean.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import CinderellaConfig
from repro.core.outcomes import ModificationOutcome
from repro.core.partitioner import CinderellaPartitioner


class WorkloadSynopsisEncoder:
    """Map attribute-space entity synopses to workload-space synopses.

    >>> encoder = WorkloadSynopsisEncoder([0b011, 0b100])
    >>> bin(encoder.encode(0b001))   # relevant to query 0 only
    '0b1'
    >>> bin(encoder.encode(0b101))   # relevant to both queries
    '0b11'
    """

    def __init__(self, query_masks: Sequence[int]) -> None:
        if not query_masks:
            raise ValueError("workload-based mode requires at least one query")
        self._query_masks = tuple(query_masks)

    @property
    def query_count(self) -> int:
        return len(self._query_masks)

    @property
    def query_masks(self) -> tuple[int, ...]:
        return self._query_masks

    def encode(self, entity_attr_mask: int) -> int:
        """Workload-space synopsis: bit i set iff ``|e ∧ q_i| > 0``."""
        workload_mask = 0
        for i, query_mask in enumerate(self._query_masks):
            if entity_attr_mask & query_mask:
                workload_mask |= 1 << i
        return workload_mask

    def query_synopsis(self, query_index: int) -> int:
        """The workload-space synopsis of query ``i`` (just bit ``i``)."""
        if not 0 <= query_index < len(self._query_masks):
            raise IndexError(query_index)
        return 1 << query_index


class WorkloadBasedPartitioner:
    """Cinderella driven by workload-space synopses.

    Wraps a :class:`CinderellaPartitioner` and an encoder; callers keep
    speaking attribute masks, the wrapper translates.  Pruning for query
    ``i`` tests bit ``i`` of the partition's workload-space synopsis.
    """

    def __init__(
        self,
        query_masks: Sequence[int],
        config: Optional[CinderellaConfig] = None,
    ) -> None:
        self.encoder = WorkloadSynopsisEncoder(query_masks)
        self.partitioner = CinderellaPartitioner(config)

    @property
    def catalog(self):
        return self.partitioner.catalog

    def insert(self, eid: int, attr_mask: int) -> ModificationOutcome:
        return self.partitioner.insert(eid, self.encoder.encode(attr_mask))

    def delete(self, eid: int) -> ModificationOutcome:
        return self.partitioner.delete(eid)

    def update(self, eid: int, attr_mask: int) -> ModificationOutcome:
        return self.partitioner.update(eid, self.encoder.encode(attr_mask))

    def partitions_for_query(self, query_index: int) -> list[int]:
        """Partition ids that survive pruning for workload query ``i``."""
        synopsis = self.encoder.query_synopsis(query_index)
        return [p.pid for p in self.catalog if p.mask & synopsis]
