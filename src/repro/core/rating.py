"""The Cinderella partition rating (Section IV of the paper).

The rating compares an entity synopsis with a partition synopsis to decide
how well the entity would fit into the partition.  It combines

* **positive evidence** — homogeneity, the amount of regularly structured
  data the partition will contain after the insert::

      h⁺ = (SIZE(p) + SIZE(e)) · |e ∧ p|

* **negative evidence** — heterogeneity introduced by the insert, split in
  two directions::

      hₑ⁻ = SIZE(e) · |¬e ∧ p|      (partition attributes the entity lacks)
      hₚ⁻ = SIZE(p) · |e ∧ ¬p|      (entity attributes the partition lacks)

into the *local* rating ``r' = w·h⁺ − (1−w)(hₑ⁻ + hₚ⁻)``, which is then
normalised into the *global* rating comparable across partitions::

      r = r' / ((SIZE(p) + SIZE(e)) · |e ∨ p|)

The hot path of the partitioner calls :func:`rate_fast`, which computes the
global rating from a single population count plus cached cardinalities;
the individual score functions exist as the documented, directly-testable
reference implementation of the formulas.
"""

from __future__ import annotations

from dataclasses import dataclass


def homogeneity_score(size_p: float, size_e: float, shared_attrs: int) -> float:
    """``h⁺ = (SIZE(p) + SIZE(e)) · |e ∧ p|`` — positive evidence."""
    return (size_p + size_e) * shared_attrs


def entity_heterogeneity_score(size_e: float, missing_in_entity: int) -> float:
    """``hₑ⁻ = SIZE(e) · |¬e ∧ p|`` — heterogeneity on the entity's side."""
    return size_e * missing_in_entity


def partition_heterogeneity_score(size_p: float, missing_in_partition: int) -> float:
    """``hₚ⁻ = SIZE(p) · |e ∧ ¬p|`` — heterogeneity on the partition's side."""
    return size_p * missing_in_partition


def local_rating(
    weight: float,
    homogeneity: float,
    entity_heterogeneity: float,
    partition_heterogeneity: float,
) -> float:
    """``r' = w·h⁺ − (1−w)(hₑ⁻ + hₚ⁻)`` — not comparable across partitions."""
    return weight * homogeneity - (1.0 - weight) * (
        entity_heterogeneity + partition_heterogeneity
    )


def global_rating(
    local: float, size_p: float, size_e: float, union_attrs: int
) -> float:
    """Normalise a local rating: ``r = r' / ((SIZE(p)+SIZE(e)) · |e ∨ p|)``.

    The denominator is zero only when both synopses are empty (an entity
    without attributes rated against a partition of attribute-less
    entities).  Such a pair is a perfect — trivially homogeneous — match,
    so the rating is defined as ``0.0``: non-negative, hence accepted,
    while any partition with attributes rates negative against an empty
    entity and vice versa.
    """
    denominator = (size_p + size_e) * union_attrs
    if denominator == 0:
        return 0.0
    return local / denominator


@dataclass(frozen=True)
class RatingBreakdown:
    """All intermediate scores of one entity/partition rating.

    Returned by :func:`rate` for inspection, debugging, and the worked
    examples in the documentation; the partitioner itself uses
    :func:`rate_fast`.
    """

    homogeneity: float
    entity_heterogeneity: float
    partition_heterogeneity: float
    local: float
    global_: float


def rate(
    entity_mask: int,
    partition_mask: int,
    size_e: float,
    size_p: float,
    weight: float,
) -> RatingBreakdown:
    """Rate an entity against a partition, returning every intermediate score."""
    shared = (entity_mask & partition_mask).bit_count()
    missing_in_entity = (partition_mask & ~entity_mask).bit_count()
    missing_in_partition = (entity_mask & ~partition_mask).bit_count()
    union_attrs = (entity_mask | partition_mask).bit_count()

    h_pos = homogeneity_score(size_p, size_e, shared)
    h_ent = entity_heterogeneity_score(size_e, missing_in_entity)
    h_par = partition_heterogeneity_score(size_p, missing_in_partition)
    local = local_rating(weight, h_pos, h_ent, h_par)
    return RatingBreakdown(
        homogeneity=h_pos,
        entity_heterogeneity=h_ent,
        partition_heterogeneity=h_par,
        local=local,
        global_=global_rating(local, size_p, size_e, union_attrs),
    )


def rate_fast(
    entity_mask: int,
    entity_attr_count: int,
    size_e: float,
    partition_mask: int,
    partition_attr_count: int,
    size_p: float,
    weight: float,
    normalize: bool = True,
) -> float:
    """Global rating with one population count (the insert-scan hot path).

    Equivalent to ``rate(...).global_``; derives all cardinalities from the
    overlap and the two cached attribute counts:

    * ``|¬e ∧ p| = |p| − |e ∧ p|``
    * ``|e ∧ ¬p| = |e| − |e ∧ p|``
    * ``|e ∨ p| = |e| + |p| − |e ∧ p|``

    With ``normalize=False`` the raw local rating ``r'`` is returned — the
    ablation of Section IV's normalisation argument.
    """
    shared = (entity_mask & partition_mask).bit_count()
    local = weight * (size_p + size_e) * shared - (1.0 - weight) * (
        size_e * (partition_attr_count - shared)
        + size_p * (entity_attr_count - shared)
    )
    if not normalize:
        return local
    denominator = (size_p + size_e) * (
        entity_attr_count + partition_attr_count - shared
    )
    if denominator == 0:
        return 0.0
    return local / denominator
