"""SIZE() models — how big is an entity, and therefore a partition?

The paper uses a single ``SIZE()`` function throughout: in the efficiency
metric (Definition 1), in the rating scores (Section IV), and in the
capacity check ``SIZE(p) + SIZE(e) > MAXSIZE`` of Algorithm 1.  The
evaluation counts partition capacity in *entities* (B = 500 … 50 000
entities), which corresponds to ``SIZE(e) = 1`` for every entity.  Other
deployments would count attributes or bytes.  We therefore make the size
model pluggable; :class:`UniformSizeModel` is the default and matches the
paper's configuration.

Size models see only what the partitioning algorithm sees: the entity's
synopsis mask and, optionally, its byte payload length as reported by the
storage layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class SizeModel(ABC):
    """Strategy for the paper's ``SIZE()`` function applied to entities.

    Partition sizes are always the sum of their member entity sizes, which
    the catalog maintains incrementally, so a model only has to price a
    single entity.
    """

    @abstractmethod
    def entity_size(self, mask: int, payload_bytes: int = 0) -> float:
        """Return ``SIZE(e)`` for an entity with synopsis *mask*.

        *payload_bytes* is the serialized record length when the entity is
        physically stored; models that do not price bytes ignore it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class UniformSizeModel(SizeModel):
    """``SIZE(e) = 1`` — capacity counted in entities (the paper's setup)."""

    def entity_size(self, mask: int, payload_bytes: int = 0) -> float:
        return 1.0


class AttributeCountSizeModel(SizeModel):
    """``SIZE(e) = |e|`` — capacity counted in instantiated attributes.

    A natural choice for sparse-record storage where the record width is
    proportional to the number of instantiated attributes.
    """

    def entity_size(self, mask: int, payload_bytes: int = 0) -> float:
        return float(mask.bit_count())


class ByteSizeModel(SizeModel):
    """``SIZE(e) = payload bytes`` — capacity counted in stored bytes.

    Falls back to the attribute count when no payload length is known
    (e.g. when the partitioner is exercised without a storage layer).
    """

    def entity_size(self, mask: int, payload_bytes: int = 0) -> float:
        if payload_bytes > 0:
            return float(payload_bytes)
        return float(mask.bit_count())
