"""Outcome records of Cinderella modification operations.

Cinderella is a *logical* partitioner: it decides placements on synopses.
The physical table layer (:mod:`repro.table.partitioned`) must mirror those
decisions by moving serialized records between heap files.  Every
modification therefore returns an outcome object describing exactly what
happened — which partitions were created or dropped, which entities moved
where, and how many splits occurred — in apply order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Move:
    """One physical relocation: entity *eid* goes to partition *to_pid*.

    ``from_pid`` is ``None`` when the entity enters the table for the first
    time (a fresh insert) — there is nothing to delete at the source.
    """

    eid: int
    from_pid: Optional[int]
    to_pid: int


@dataclass
class ModificationOutcome:
    """Everything a modification did to the partitioning.

    Attributes:
        entity_id: the entity the operation was about.
        partition_id: the entity's partition after the operation
            (``None`` after a delete).
        created_partitions: partition ids opened, in creation order.
        dropped_partitions: partition ids removed (split sources and
            partitions emptied by deletes).
        moves: physical relocations in the order they must be applied.
        splits: number of partition splits triggered (cascades count each).
        in_place: True when an update changed the entity without moving it.
    """

    entity_id: int
    partition_id: Optional[int] = None
    created_partitions: list[int] = field(default_factory=list)
    dropped_partitions: list[int] = field(default_factory=list)
    moves: list[Move] = field(default_factory=list)
    splits: int = 0
    in_place: bool = False

    @property
    def moved(self) -> bool:
        """True when any physical relocation is required."""
        return bool(self.moves)
