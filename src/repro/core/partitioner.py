"""Cinderella — the online horizontal partitioner (Algorithm 1).

This module implements the complete modification interface of Section III:

* :meth:`CinderellaPartitioner.insert` — Algorithm 1.  Scan the partition
  catalog for the best-rated partition; open a new partition when the best
  rating is negative; maintain the split-starter pair; split full
  partitions seeded by the starters, re-inserting the remaining entities
  restricted to the two new partitions (split cascades included).
* :meth:`CinderellaPartitioner.delete` — remove the entity, drop the
  partition when it becomes empty, leave the partitioning otherwise
  unchanged.
* :meth:`CinderellaPartitioner.update` — re-run the insert rating without
  inserting; move the entity only when a different partition wins,
  otherwise update it in place.

Two notes on fidelity to the published pseudocode:

1.  Algorithm 1's split branch (lines 26–33) drains the *current* members
    of the overfull partition into the two new partitions but never states
    where the triggering entity ``e`` itself lands (it was not yet added at
    line 31).  The only consistent reading — and the one that matches the
    prose "the remaining entities are assigned to the new partitions using
    the insert procedure itself" — is that ``e`` participates in the split
    like the drained entities do: if the starter maintenance of lines 15–24
    made ``e`` a starter it seeds one of the new partitions, otherwise it is
    re-inserted restricted to them.  We implement exactly that.
2.  The restricted recursive insert of line 32 can itself create a new
    partition (line 9–13 under restriction) or split one of the two new
    partitions (a cascade).  The restriction set is therefore maintained as
    a *live* list: partitions created during the drain join it, and a split
    target is replaced by its own split results.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Callable, Iterable, Optional, Sequence

from repro.catalog.catalog import PartitionCatalog
from repro.catalog.partition import Partition
from repro.catalog.synopsis_index import SynopsisIndex
from repro.core.config import CinderellaConfig
from repro.core.outcomes import ModificationOutcome, Move
from repro.core.rating import rate_fast
from repro.obs import runtime as obs

#: the insert span itself feeds the latency histogram — one clock, one
#: span, zero extra timing calls on the hottest path in the system
obs.bind_span_histogram(
    "partitioner.insert",
    "repro_insert_latency_seconds",
    "Latency of one insert, split cascades included",
)


class CinderellaPartitioner:
    """Online partitioner for one universal table.

    The partitioner is purely logical: it consumes entity ids and synopsis
    masks and maintains the partition catalog.  Physical record placement
    is the table layer's job, driven by the returned
    :class:`~repro.core.outcomes.ModificationOutcome`.

    >>> from repro.catalog.dictionary import AttributeDictionary
    >>> d = AttributeDictionary()
    >>> p = CinderellaPartitioner(CinderellaConfig(max_partition_size=2, weight=0.5))
    >>> camera = d.encode(["name", "resolution", "aperture"])
    >>> disk = d.encode(["name", "storage", "rotation"])
    >>> p.insert(1, camera).partition_id == p.insert(2, disk).partition_id
    False
    """

    def __init__(
        self,
        config: Optional[CinderellaConfig] = None,
        catalog: Optional[PartitionCatalog] = None,
    ) -> None:
        self.config = config if config is not None else CinderellaConfig()
        if catalog is None:
            index = SynopsisIndex() if self.config.use_synopsis_index else None
            catalog = PartitionCatalog(index=index)
        self.catalog = catalog
        #: cumulative number of splits performed (Figure 8 reports these)
        self.split_count = 0
        #: cumulative number of partition ratings computed (scan effort)
        self.ratings_computed = 0
        #: step-boundary hook for the transactional operation layer: when
        #: set, it is called with a label at every multi-step mutation
        #: boundary (split creation, starter moves, drain re-inserts).
        #: The fault-injection matrix uses it to crash operations
        #: mid-flight; ``repro.txn.ops`` uses it to journal progress.
        self.crash_hook: Optional[Callable[[str], None]] = None

    def _step(self, label: str) -> None:
        """Announce one step boundary to the installed hook, if any."""
        if self.crash_hook is not None:
            self.crash_hook(label)

    # ------------------------------------------------------------------
    # public modification interface
    # ------------------------------------------------------------------
    def insert(
        self, eid: int, mask: int, payload_bytes: int = 0
    ) -> ModificationOutcome:
        """Insert a new entity (Algorithm 1, ``INSERTENTITY``)."""
        if self.catalog.has_entity(eid):
            raise ValueError(f"entity {eid} already exists; use update()")
        size = self.config.size_model.entity_size(mask, payload_bytes)
        outcome = ModificationOutcome(entity_id=eid)
        # trace_stages=False: the non-split fast path records rating and
        # placement as attributes on this one span instead of two child
        # spans — tracing every stage of a ~50µs operation would alone
        # cost more than the benchmark's overhead budget.  Split cascades
        # re-enable stage spans (rare, and exactly the traces worth
        # reading in detail).  The latency histogram is span-timed (see
        # the bind_span_histogram call above) and its _count doubles as
        # the insert counter; a separate *_total would cost another
        # registry write on the hottest path for an already-exposed
        # number.
        span = obs.span("partitioner.insert")
        if span.is_recording:
            ratings_before = self.ratings_computed
            with span:
                final_pid = self._insert(
                    eid, mask, size, None, None, outcome, trace_stages=False
                )
                span.attributes = {
                    "eid": eid,
                    "partition_id": final_pid,
                    "splits": outcome.splits,
                    "ratings": self.ratings_computed - ratings_before,
                }
        elif obs.is_enabled():
            # metrics-only mode (enable(trace=False)): no span to borrow
            # a clock from, so time the insert explicitly
            start = perf_counter()
            final_pid = self._insert(
                eid, mask, size, None, None, outcome, trace_stages=False
            )
            obs.observe(
                "repro_insert_latency_seconds",
                perf_counter() - start,
                help_text="Latency of one insert, split cascades included",
            )
        else:
            final_pid = self._insert(
                eid, mask, size, None, None, outcome, trace_stages=False
            )
        outcome.partition_id = final_pid
        return outcome

    def delete(self, eid: int) -> ModificationOutcome:
        """Delete an entity; the partitioning itself remains unchanged.

        Empty partitions are dropped, per Section III.
        """
        with obs.span("partitioner.delete", eid=eid):
            pid, _mask, _size = self.catalog.remove_entity(eid)
            self._step("delete:removed")
            outcome = ModificationOutcome(entity_id=eid, partition_id=None)
            if self.catalog.get(pid).is_empty():
                self.catalog.drop_partition(pid)
                outcome.dropped_partitions.append(pid)
        obs.inc(
            "repro_partitioner_deletes_total",
            help_text="Entities deleted from the catalog",
        )
        return outcome

    def update(
        self, eid: int, mask: int, payload_bytes: int = 0
    ) -> ModificationOutcome:
        """Update an entity's attribute set.

        Runs the insert rating "without actually inserting" (Section III):
        when the entity's current partition still rates best, the entity is
        updated in place; otherwise it is removed and re-inserted through
        the normal insert routine (which may create or split partitions).
        """
        with obs.span("partitioner.update", eid=eid) as span:
            outcome = self._update(eid, mask, payload_bytes, span)
        obs.inc(
            "repro_partitioner_updates_total",
            help_text="Entity attribute-set updates",
        )
        return outcome

    def _update(
        self, eid: int, mask: int, payload_bytes: int, span
    ) -> ModificationOutcome:
        current_pid = self.catalog.partition_of(eid)
        current = self.catalog.get(current_pid)
        _, old_size = current.member(eid)
        size = self.config.size_model.entity_size(mask, payload_bytes)
        best, best_rating = self._find_best(mask, size, None)
        fits_in_place = current.total_size - old_size + size <= (
            self.config.max_partition_size
        ) or len(current) == 1
        stays = (
            best is not None
            and best.pid == current_pid
            and best_rating >= 0.0
            and fits_in_place
        )
        outcome = ModificationOutcome(entity_id=eid)
        if stays:
            self.catalog.update_entity(eid, mask, size)
            outcome.partition_id = current_pid
            outcome.in_place = True
            if span.is_recording:
                span.set("in_place", True)
            return outcome
        if span.is_recording:
            span.set("in_place", False)
        old_pid, _old_mask, _old_size = self.catalog.remove_entity(eid)
        self._step("update:removed")
        source_empty = self.catalog.get(old_pid).is_empty()
        if source_empty:
            self.catalog.drop_partition(old_pid)
            outcome.dropped_partitions.append(old_pid)
        final_pid = self._insert(eid, mask, size, None, old_pid, outcome)
        outcome.partition_id = final_pid
        return outcome

    def load(
        self, entities: Iterable[tuple[int, int]]
    ) -> list[ModificationOutcome]:
        """Bulk-insert ``(entity_id, mask)`` pairs; returns all outcomes."""
        return [self.insert(eid, mask) for eid, mask in entities]

    # ------------------------------------------------------------------
    # Algorithm 1 internals
    # ------------------------------------------------------------------
    def _find_best(
        self,
        mask: int,
        size: float,
        restricted: Optional[Sequence[Partition]],
        trace_stages: bool = True,
    ) -> tuple[Optional[Partition], float]:
        """Scan the catalog (lines 3–7) and return the best-rated partition.

        ``restricted`` limits the scan to an explicit partition list during
        splits (line 32).  Returns ``(None, -inf)`` when there is nothing to
        rate.  With ``selection='first'`` (ablation) the scan stops at the
        first non-negatively rated partition.  ``trace_stages=False``
        suppresses the per-call span: top-level inserts and split drains
        run at span-per-operation granularity, not span-per-stage — see
        ``benchmarks/bench_observability.py`` and docs/OBSERVABILITY.md.
        """
        weight = self.config.weight
        normalize = self.config.normalize_rating
        entity_attr_count = mask.bit_count()
        best: Optional[Partition] = None
        best_rating = -math.inf
        if restricted is None:
            candidates: Iterable[Partition] = self.catalog.candidates(mask, weight)
        else:
            candidates = restricted
        first_fit = self.config.selection == "first"
        with (
            obs.span("partitioner.rate") if trace_stages else obs.NOOP_SPAN
        ) as span:
            ratings_before = self.ratings_computed
            for partition in candidates:
                rating = rate_fast(
                    mask,
                    entity_attr_count,
                    size,
                    partition.mask,
                    partition.attr_count,
                    partition.total_size,
                    weight,
                    normalize=normalize,
                )
                self.ratings_computed += 1
                if rating > best_rating:
                    best_rating = rating
                    best = partition
                    if first_fit and rating >= 0.0:
                        break
            if span.is_recording:
                span.set("ratings", self.ratings_computed - ratings_before)
                span.set("restricted", restricted is not None)
        return best, best_rating

    def _insert(
        self,
        eid: int,
        mask: int,
        size: float,
        restricted: Optional[list[Partition]],
        from_pid: Optional[int],
        outcome: ModificationOutcome,
        trace_stages: bool = True,
    ) -> int:
        """The full ``INSERTENTITY`` routine; returns the entity's final pid.

        ``restricted`` is the live restriction list during a split drain
        (``None`` for top-level inserts).  ``from_pid`` records where the
        entity physically comes from, for the outcome's move list.
        ``trace_stages=False`` (top-level inserts, split drain loops)
        skips the per-stage rate/place spans; split spans themselves
        always trace so cascades stay visible, and a split's triggering
        entity re-inserts with full stage spans.
        """
        best, best_rating = self._find_best(mask, size, restricted, trace_stages)

        # lines 9-13: best rating negative (or no partition at all)
        if best is None or best_rating < 0.0:
            partition = self.catalog.create_partition()
            outcome.created_partitions.append(partition.pid)
            if restricted is not None:
                restricted.append(partition)
            # add() observes starters: the entity becomes split starter A
            self.catalog.add_entity(partition.pid, eid, mask, size)
            outcome.moves.append(Move(eid, from_pid, partition.pid))
            self._step("insert:new-partition")
            obs.event("partitioner.new_partition", pid=partition.pid, eid=eid)
            return partition.pid

        # lines 15-24: starter maintenance happens *before* the capacity
        # check, so the incoming entity can seed a split of `best`.
        self.catalog.observe_starters(best.pid, eid, mask)

        # lines 26-33: split when the partition cannot take the entity
        if best.total_size + size > self.config.max_partition_size:
            return self._split(best, eid, mask, size, restricted, from_pid, outcome)

        # line 36: the normal case (starters were already maintained above)
        with (
            obs.span("partitioner.place", pid=best.pid)
            if trace_stages
            else obs.NOOP_SPAN
        ):
            self.catalog.add_entity(
                best.pid, eid, mask, size, observe_starters=False
            )
            if self.config.exact_starters:
                # ablation: pay the quadratic cost Algorithm 1's heuristic
                # avoids
                best.starters.rebuild_exact(
                    (m_eid, m_mask) for m_eid, m_mask, _s in best.members()
                )
            outcome.moves.append(Move(eid, from_pid, best.pid))
            self._step("insert:place")
        return best.pid

    def _split(
        self,
        source: Partition,
        eid: int,
        mask: int,
        size: float,
        restricted: Optional[list[Partition]],
        from_pid: Optional[int],
        outcome: ModificationOutcome,
    ) -> int:
        """Split *source* (Algorithm 1, lines 26–33); return the new
        entity's final partition id.

        Cascading splits recurse through :meth:`_insert`, so their
        ``partitioner.split`` spans nest under this one.
        """
        with obs.span(
            "partitioner.split", source_pid=source.pid, members=len(source)
        ) as span:
            final_pid = self._split_impl(
                source, eid, mask, size, restricted, from_pid, outcome
            )
            if span.is_recording:
                span.set("final_pid", final_pid)
        obs.inc(
            "repro_partitioner_splits_total",
            help_text="Partition splits performed, cascades counted singly",
        )
        return final_pid

    def _split_impl(
        self,
        source: Partition,
        eid: int,
        mask: int,
        size: float,
        restricted: Optional[list[Partition]],
        from_pid: Optional[int],
        outcome: ModificationOutcome,
    ) -> int:
        self.split_count += 1
        outcome.splits += 1
        starters = source.starters
        # Both starters exist: a partition can only be full after at least
        # one entity was added at creation (starter A) and a second entity
        # was rated into it (observe set starter B) — including `eid` itself,
        # observed by the caller just before this split.
        starter_specs = (
            (starters.eid_a, starters.mask_a),
            (starters.eid_b, starters.mask_b),
        )
        assert starter_specs[0][0] is not None and starter_specs[1][0] is not None

        partition_a = self.catalog.create_partition()
        partition_b = self.catalog.create_partition()
        outcome.created_partitions.extend((partition_a.pid, partition_b.pid))
        self._step("split:create-targets")

        # lines 29-30: move each starter into its own new partition
        for (starter_eid, starter_mask), target in zip(
            starter_specs, (partition_a, partition_b)
        ):
            if starter_eid == eid:
                starter_size = size
                starter_from = from_pid
            else:
                _, _, starter_size = self.catalog.remove_entity(
                    starter_eid, repair_starters=False
                )
                starter_from = source.pid
            self.catalog.add_entity(
                target.pid, starter_eid, starter_mask, starter_size
            )
            outcome.moves.append(Move(starter_eid, starter_from, target.pid))
            self._step("split:starter-moved")

        # live restriction list for the drain (line 32): cascades and
        # negative-rating re-inserts extend/replace entries in here.
        targets: list[Partition] = [partition_a, partition_b]

        # lines 31-33: re-insert the remaining entities of the source.
        # trace_stages=False: one span per drained member would swamp the
        # split trace and the tracing budget; the split span's ``members``
        # attribute already says how many re-inserts happened.
        for drain_eid, drain_mask, drain_size in list(source.members()):
            self.catalog.remove_entity(drain_eid, repair_starters=False)
            self._insert(
                drain_eid, drain_mask, drain_size, targets, source.pid,
                outcome, trace_stages=False,
            )

        # the triggering entity, unless it already seeded a new partition;
        # in the starter case a cascade during the drain may have moved it
        # again, so its final home comes from the catalog, not partition_a/b.
        if eid == starter_specs[0][0] or eid == starter_specs[1][0]:
            final_pid = self.catalog.partition_of(eid)
        else:
            final_pid = self._insert(eid, mask, size, targets, from_pid, outcome)

        # retire the drained source partition
        assert source.is_empty(), "split must drain the source partition"
        self.catalog.drop_partition(source.pid)
        outcome.dropped_partitions.append(source.pid)
        self._step("split:source-dropped")

        # a split of a restricted-target partition replaces it with its
        # results in the caller's live restriction list
        if restricted is not None and source in restricted:
            restricted.remove(source)
            for target in targets:
                if target not in restricted:
                    restricted.append(target)
        if final_pid is None:  # pragma: no cover - defensive
            raise AssertionError("split did not place the triggering entity")
        return final_pid

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> list[str]:
        """Catalog invariants plus the capacity bound ``SIZE(p) ≤ B``.

        A partition may exceed the bound only when a *single* entity is
        larger than ``B`` (possible under non-uniform size models); such a
        partition necessarily has exactly one member.
        """
        problems = self.catalog.check_invariants()
        limit = self.config.max_partition_size
        for partition in self.catalog:
            if partition.total_size > limit and len(partition) > 1:
                problems.append(
                    f"partition {partition.pid} over capacity: "
                    f"{partition.total_size} > {limit} with {len(partition)} entities"
                )
        return problems
