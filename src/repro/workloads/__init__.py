"""Evaluation workloads: DBpedia persons, query workload, and TPC-H."""

from repro.workloads.dbpedia import (
    DBpediaDataset,
    generate_dbpedia_persons,
    validate_distribution,
)
from repro.workloads.modifications import (
    Operation,
    generate_trace,
    replay,
    replay_logical,
)
from repro.workloads.querygen import (
    QuerySpec,
    build_query_workload,
    representative_queries,
    top_frequent_attributes,
)

__all__ = [
    "DBpediaDataset",
    "Operation",
    "generate_trace",
    "replay",
    "replay_logical",
    "QuerySpec",
    "build_query_workload",
    "generate_dbpedia_persons",
    "representative_queries",
    "top_frequent_attributes",
    "validate_distribution",
]
