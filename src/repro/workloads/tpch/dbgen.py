"""Deterministic pure-Python TPC-H data generator.

A from-scratch stand-in for the official ``dbgen`` tool: generates all
eight tables at a configurable scale factor, with the value distributions
the 22 queries depend on (date ranges, discount/quantity ranges, brand and
type vocabularies, phone country codes, comment keywords, …).  The output
is *spec-shaped*, not byte-identical to dbgen — the Table I experiment
only needs regular relational data whose queries exercise realistic
selectivities, and absolute row contents are irrelevant to the
partitioning behaviour being studied.

Dates are ISO-8601 strings; they compare correctly as strings, which keeps
rows plain and serializable by the sparse record format.
"""

from __future__ import annotations

import datetime
import random
from typing import Any

from repro.workloads.tpch import schema as s

Row = dict[str, Any]

_EPOCH = datetime.date(1992, 1, 1)
_LAST = datetime.date(1998, 12, 31)
_DAYS = (_LAST - _EPOCH).days

#: filler vocabulary for comment columns
_COMMENT_WORDS = (
    "carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
    "packages", "requests", "instructions", "accounts", "theodolites",
    "pinto", "beans", "foxes", "ideas", "dependencies", "platelets",
    "asymptotes", "courts", "dolphins", "express", "final", "ironic",
    "pending", "regular", "special", "unusual", "bold", "even", "silent",
)


def _date(rng: random.Random, min_offset: int = 0, max_offset: int = _DAYS) -> str:
    return (_EPOCH + datetime.timedelta(days=rng.randint(min_offset, max_offset))).isoformat()


def date_add(iso_date: str, days: int) -> str:
    """ISO date arithmetic helper shared with the queries."""
    return (datetime.date.fromisoformat(iso_date) + datetime.timedelta(days=days)).isoformat()


def _comment(rng: random.Random, min_words: int = 3, max_words: int = 8) -> str:
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(_COMMENT_WORDS) for _ in range(count))


def _phone(nation_key: int, rng: random.Random) -> str:
    country_code = 10 + nation_key
    return (
        f"{country_code}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-"
        f"{rng.randint(1000, 9999)}"
    )


class TPCHData:
    """All eight generated tables, addressable by name."""

    def __init__(self, tables: dict[str, list[Row]], scale_factor: float, seed: int):
        self._tables = tables
        self.scale_factor = scale_factor
        self.seed = seed

    def table(self, name: str) -> list[Row]:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no TPC-H table {name!r}") from None

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def row_counts(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self._tables.items()}

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._tables.values())


def generate_tpch(scale_factor: float = 0.01, seed: int = 7) -> TPCHData:
    """Generate a complete TPC-H database.

    At scale factor 0.01 this yields ~100 suppliers, 1 500 customers,
    2 000 parts, 8 000 partsupps, 15 000 orders, and ~60 000 lineitems.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rng = random.Random(seed)
    tables: dict[str, list[Row]] = {}

    tables["region"] = [
        {
            "r_regionkey": key,
            "r_name": name,
            "r_comment": _comment(rng),
        }
        for key, name in enumerate(s.REGIONS)
    ]

    tables["nation"] = [
        {
            "n_nationkey": key,
            "n_name": name,
            "n_regionkey": region,
            "n_comment": _comment(rng),
        }
        for key, (name, region) in enumerate(s.NATIONS)
    ]

    n_suppliers = s.SUPPLIER.scaled_cardinality(scale_factor)
    suppliers: list[Row] = []
    for key in range(1, n_suppliers + 1):
        nation = rng.randrange(len(s.NATIONS))
        # clause 4.2.3: ~5 per 10 000 suppliers complain, ~5 recommend
        roll = rng.random()
        if roll < 0.02:
            comment = f"{_comment(rng, 2, 4)} Customer Complaints {_comment(rng, 1, 2)}"
        elif roll < 0.04:
            comment = f"{_comment(rng, 2, 4)} Customer Recommends {_comment(rng, 1, 2)}"
        else:
            comment = _comment(rng)
        suppliers.append(
            {
                "s_suppkey": key,
                "s_name": f"Supplier#{key:09d}",
                "s_address": f"{rng.randint(1, 999)} {_comment(rng, 1, 2)} street",
                "s_nationkey": nation,
                "s_phone": _phone(nation, rng),
                "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "s_comment": comment,
            }
        )
    tables["supplier"] = suppliers

    n_customers = s.CUSTOMER.scaled_cardinality(scale_factor)
    customers: list[Row] = []
    for key in range(1, n_customers + 1):
        nation = rng.randrange(len(s.NATIONS))
        customers.append(
            {
                "c_custkey": key,
                "c_name": f"Customer#{key:09d}",
                "c_address": f"{rng.randint(1, 999)} {_comment(rng, 1, 2)} avenue",
                "c_nationkey": nation,
                "c_phone": _phone(nation, rng),
                "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "c_mktsegment": rng.choice(s.MARKET_SEGMENTS),
                "c_comment": _comment(rng),
            }
        )
    tables["customer"] = customers

    n_parts = s.PART.scaled_cardinality(scale_factor)
    parts: list[Row] = []
    for key in range(1, n_parts + 1):
        manufacturer = rng.randint(1, 5)
        brand = manufacturer * 10 + rng.randint(1, 5)
        part_type = (
            f"{rng.choice(s.TYPE_SYLLABLE_1)} {rng.choice(s.TYPE_SYLLABLE_2)} "
            f"{rng.choice(s.TYPE_SYLLABLE_3)}"
        )
        retail = round(
            90000 + (key / 10.0) % 20001 + 100 * (key % 1000), 2
        ) / 100.0  # clause 4.2.3 price formula
        parts.append(
            {
                "p_partkey": key,
                "p_name": " ".join(rng.sample(s.PART_NAME_WORDS, 5)),
                "p_mfgr": f"Manufacturer#{manufacturer}",
                "p_brand": f"Brand#{brand}",
                "p_type": part_type,
                "p_size": rng.randint(1, 50),
                "p_container": rng.choice(s.CONTAINERS),
                "p_retailprice": round(retail, 2),
                "p_comment": _comment(rng, 1, 3),
            }
        )
    tables["part"] = parts

    partsupp: list[Row] = []
    for part in parts:
        for offset in range(4):
            supp = ((part["p_partkey"] + offset * (n_suppliers // 4 + 1)) % n_suppliers) + 1
            partsupp.append(
                {
                    "ps_partkey": part["p_partkey"],
                    "ps_suppkey": supp,
                    "ps_availqty": rng.randint(1, 9999),
                    "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                    "ps_comment": _comment(rng),
                }
            )
    tables["partsupp"] = partsupp

    n_orders = s.ORDERS.scaled_cardinality(scale_factor)
    orders: list[Row] = []
    lineitems: list[Row] = []
    retail_by_part = {part["p_partkey"]: part["p_retailprice"] for part in parts}
    for key in range(1, n_orders + 1):
        # clause 4.2.3: orders never reference custkeys divisible by 3,
        # so a third of the customers have no orders (feeds Q13 and Q22)
        custkey = rng.randint(1, n_customers)
        while custkey % 3 == 0:
            custkey = rng.randint(1, n_customers)
        # o_orderdate ∈ [START_DATE, END_DATE - 151 days]
        orderdate = _date(rng, 0, _DAYS - 151)
        n_lines = rng.randint(1, 7)
        total = 0.0
        all_filled = True
        any_filled = False
        for line_number in range(1, n_lines + 1):
            partkey = rng.randint(1, n_parts)
            quantity = rng.randint(1, 50)
            extended = round(quantity * retail_by_part[partkey], 2)
            discount = round(rng.randint(0, 10) / 100.0, 2)
            tax = round(rng.randint(0, 8) / 100.0, 2)
            shipdate = date_add(orderdate, rng.randint(1, 121))
            commitdate = date_add(orderdate, rng.randint(30, 90))
            receiptdate = date_add(shipdate, rng.randint(1, 30))
            if receiptdate <= s.CURRENT_DATE:
                returnflag = "R" if rng.random() < 0.25 else ("A" if rng.random() < 0.5 else "N")
            else:
                returnflag = "N"
            linestatus = "F" if shipdate <= s.CURRENT_DATE else "O"
            if linestatus == "F":
                any_filled = True
            else:
                all_filled = False
            supp_offset = rng.randrange(4)
            suppkey = ((partkey + supp_offset * (n_suppliers // 4 + 1)) % n_suppliers) + 1
            lineitems.append(
                {
                    "l_orderkey": key,
                    "l_partkey": partkey,
                    "l_suppkey": suppkey,
                    "l_linenumber": line_number,
                    "l_quantity": float(quantity),
                    "l_extendedprice": extended,
                    "l_discount": discount,
                    "l_tax": tax,
                    "l_returnflag": returnflag,
                    "l_linestatus": linestatus,
                    "l_shipdate": shipdate,
                    "l_commitdate": commitdate,
                    "l_receiptdate": receiptdate,
                    "l_shipinstruct": rng.choice(s.SHIP_INSTRUCTIONS),
                    "l_shipmode": rng.choice(s.SHIP_MODES),
                    "l_comment": _comment(rng, 2, 4),
                }
            )
            total += extended * (1 + tax) * (1 - discount)
        if all_filled:
            status = "F"
        elif any_filled:
            status = "P"
        else:
            status = "O"
        # ~1 % of order comments carry the Q13 'special … requests' pattern
        if rng.random() < 0.01:
            comment = f"{_comment(rng, 1, 2)} special {_comment(rng, 0, 2)} requests"
        else:
            comment = _comment(rng)
        orders.append(
            {
                "o_orderkey": key,
                "o_custkey": custkey,
                "o_orderstatus": status,
                "o_totalprice": round(total, 2),
                "o_orderdate": orderdate,
                "o_orderpriority": rng.choice(s.ORDER_PRIORITIES),
                "o_clerk": f"Clerk#{rng.randint(1, max(1, n_orders // 1000)):09d}",
                "o_shippriority": 0,
                "o_comment": comment,
            }
        )
    tables["orders"] = orders
    tables["lineitem"] = lineitems

    return TPCHData(tables, scale_factor, seed)
