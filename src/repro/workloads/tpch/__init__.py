"""TPC-H substrate: schema, dbgen, queries, and access-path adapters."""

from repro.workloads.tpch.databases import (
    CinderellaTPCHDatabase,
    StandardTPCHDatabase,
)
from repro.workloads.tpch.dbgen import TPCHData, date_add, generate_tpch
from repro.workloads.tpch.queries import QUERIES, run_query, sql_like
from repro.workloads.tpch.schema import TABLES, TABLE_BY_NAME, TableSchema

__all__ = [
    "CinderellaTPCHDatabase",
    "QUERIES",
    "StandardTPCHDatabase",
    "TABLES",
    "TABLE_BY_NAME",
    "TPCHData",
    "TableSchema",
    "date_add",
    "generate_tpch",
    "run_query",
    "sql_like",
]
