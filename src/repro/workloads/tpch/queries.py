"""The 22 TPC-H queries, expressed over the relational operator library.

Each query is a function ``(db) -> list[Row]`` where *db* is any object
with ``table(name) -> Iterable[Row]`` and a ``scale_factor`` attribute —
satisfied both by :class:`~repro.workloads.tpch.dbgen.TPCHData` (regular
tables) and by the Cinderella view adapters in
:mod:`repro.workloads.tpch.databases`.  Running the *same* query functions
over both access paths is exactly the Table I experiment.

Substitution parameters are fixed to the specification's validation
values.  One deviation: Q19's spec text references ship mode ``'AIR REG'``
which does not exist in the generator vocabulary (clause 4.2.2.13 defines
``'REG AIR'``); we use ``('AIR', 'REG AIR')`` so the predicate selects
rows.

Dates are ISO-8601 strings throughout and compare correctly as strings.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Protocol

from repro.engine.aggregates import Avg, Count, CountDistinct, Min, Sum
from repro.engine.operators import (
    Row,
    extend,
    group_by,
    hash_join,
    limit,
    order_by,
    order_by_many,
    project,
    select,
)

__all__ = ["Database", "QUERIES", "run_query", "sql_like"]


class Database(Protocol):
    """What a query needs from its data source."""

    scale_factor: float

    def table(self, name: str) -> Iterable[Row]: ...


def sql_like(value: str, pattern: str) -> bool:
    """SQL ``LIKE`` with ``%`` wildcards (no ``_`` support needed here)."""
    regex = ".*".join(re.escape(part) for part in pattern.split("%"))
    return re.fullmatch(regex, value, re.DOTALL) is not None


def _revenue(row: Row) -> float:
    return row["l_extendedprice"] * (1.0 - row["l_discount"])


def q1(db: Database) -> list[Row]:
    """Pricing summary report (delta = 90 days)."""
    lines = select(db.table("lineitem"), lambda r: r["l_shipdate"] <= "1998-09-02")
    rows = group_by(
        lines,
        ("l_returnflag", "l_linestatus"),
        {
            "sum_qty": lambda: Sum("l_quantity"),
            "sum_base_price": lambda: Sum("l_extendedprice"),
            "sum_disc_price": lambda: Sum(_revenue),
            "sum_charge": lambda: Sum(
                lambda r: _revenue(r) * (1.0 + r["l_tax"])
            ),
            "avg_qty": lambda: Avg("l_quantity"),
            "avg_price": lambda: Avg("l_extendedprice"),
            "avg_disc": lambda: Avg("l_discount"),
            "count_order": lambda: Count(),
        },
    )
    return order_by(rows, ("l_returnflag", "l_linestatus"))


def _q2_candidates(db: Database) -> list[Row]:
    europe = select(db.table("region"), lambda r: r["r_name"] == "EUROPE")
    nations = hash_join(db.table("nation"), europe, "n_regionkey", "r_regionkey")
    suppliers = hash_join(db.table("supplier"), nations, "s_nationkey", "n_nationkey")
    return list(
        hash_join(db.table("partsupp"), suppliers, "ps_suppkey", "s_suppkey")
    )


def q2(db: Database) -> list[Row]:
    """Minimum cost supplier (size = 15, type %BRASS, region EUROPE)."""
    candidates = _q2_candidates(db)
    min_cost = {
        row["ps_partkey"]: row["min_cost"]
        for row in group_by(
            candidates,
            "ps_partkey",
            {"min_cost": lambda: Min("ps_supplycost")},
        )
    }
    parts = select(
        db.table("part"),
        lambda r: r["p_size"] == 15 and sql_like(r["p_type"], "%BRASS"),
    )
    joined = hash_join(candidates, parts, "ps_partkey", "p_partkey")
    best = select(
        joined, lambda r: r["ps_supplycost"] == min_cost[r["ps_partkey"]]
    )
    rows = project(
        best,
        (
            "s_acctbal", "s_name", "n_name", "p_partkey",
            "p_mfgr", "s_address", "s_phone", "s_comment",
        ),
    )
    ordered = order_by_many(
        rows,
        [("s_acctbal", True), ("n_name", False), ("s_name", False), ("p_partkey", False)],
    )
    return limit(ordered, 100)


def q3(db: Database) -> list[Row]:
    """Shipping priority (segment BUILDING, date 1995-03-15)."""
    customers = select(
        db.table("customer"), lambda r: r["c_mktsegment"] == "BUILDING"
    )
    orders = select(db.table("orders"), lambda r: r["o_orderdate"] < "1995-03-15")
    lines = select(db.table("lineitem"), lambda r: r["l_shipdate"] > "1995-03-15")
    joined = hash_join(
        hash_join(orders, customers, "o_custkey", "c_custkey"),
        lines,
        "o_orderkey",
        "l_orderkey",
    )
    # probe side must be lineitem-joined rows; re-join orientation above
    # yields one merged row per (order, line) pair, as required
    rows = group_by(
        joined,
        ("l_orderkey", "o_orderdate", "o_shippriority"),
        {"revenue": lambda: Sum(_revenue)},
    )
    ordered = order_by_many(rows, [("revenue", True), ("o_orderdate", False)])
    return limit(ordered, 10)


def q4(db: Database) -> list[Row]:
    """Order priority checking (Q3 1993)."""
    orders = select(
        db.table("orders"),
        lambda r: "1993-07-01" <= r["o_orderdate"] < "1993-10-01",
    )
    late_lines = select(
        db.table("lineitem"), lambda r: r["l_commitdate"] < r["l_receiptdate"]
    )
    matching = hash_join(orders, late_lines, "o_orderkey", "l_orderkey", how="semi")
    rows = group_by(
        matching, "o_orderpriority", {"order_count": lambda: Count()}
    )
    return order_by(rows, "o_orderpriority")


def q5(db: Database) -> list[Row]:
    """Local supplier volume (region ASIA, 1994)."""
    asia = select(db.table("region"), lambda r: r["r_name"] == "ASIA")
    nations = list(hash_join(db.table("nation"), asia, "n_regionkey", "r_regionkey"))
    customers = hash_join(db.table("customer"), nations, "c_nationkey", "n_nationkey")
    orders = select(
        db.table("orders"),
        lambda r: "1994-01-01" <= r["o_orderdate"] < "1995-01-01",
    )
    customer_orders = hash_join(orders, customers, "o_custkey", "c_custkey")
    lines = hash_join(
        db.table("lineitem"), customer_orders, "l_orderkey", "o_orderkey"
    )
    # the supplier must be in the customer's nation
    suppliers = {
        (row["s_suppkey"], row["s_nationkey"]) for row in db.table("supplier")
    }
    local = select(
        lines, lambda r: (r["l_suppkey"], r["c_nationkey"]) in suppliers
    )
    rows = group_by(local, "n_name", {"revenue": lambda: Sum(_revenue)})
    return order_by(rows, "revenue", reverse=True)


def q6(db: Database) -> list[Row]:
    """Forecasting revenue change (1994, discount 0.06 ± 0.01, qty < 24)."""
    lines = select(
        db.table("lineitem"),
        lambda r: (
            "1994-01-01" <= r["l_shipdate"] < "1995-01-01"
            and 0.05 <= r["l_discount"] <= 0.07
            and r["l_quantity"] < 24
        ),
    )
    return group_by(
        lines,
        None,
        {"revenue": lambda: Sum(lambda r: r["l_extendedprice"] * r["l_discount"])},
    )


def _q7_shipping(db: Database) -> Iterable[Row]:
    nation_names = {row["n_nationkey"]: row["n_name"] for row in db.table("nation")}
    suppliers = {row["s_suppkey"]: row["s_nationkey"] for row in db.table("supplier")}
    customers = {row["c_custkey"]: row["c_nationkey"] for row in db.table("customer")}
    order_cust = {row["o_orderkey"]: row["o_custkey"] for row in db.table("orders")}
    for line in db.table("lineitem"):
        if not "1995-01-01" <= line["l_shipdate"] <= "1996-12-31":
            continue
        supp_nation = nation_names[suppliers[line["l_suppkey"]]]
        cust_nation = nation_names[customers[order_cust[line["l_orderkey"]]]]
        yield {
            "supp_nation": supp_nation,
            "cust_nation": cust_nation,
            "l_year": line["l_shipdate"][:4],
            "volume": _revenue(line),
        }


def q7(db: Database) -> list[Row]:
    """Volume shipping between FRANCE and GERMANY (1995-1996)."""
    pairs = {("FRANCE", "GERMANY"), ("GERMANY", "FRANCE")}
    shipping = select(
        _q7_shipping(db),
        lambda r: (r["supp_nation"], r["cust_nation"]) in pairs,
    )
    rows = group_by(
        shipping,
        ("supp_nation", "cust_nation", "l_year"),
        {"revenue": lambda: Sum("volume")},
    )
    return order_by(rows, ("supp_nation", "cust_nation", "l_year"))


def q8(db: Database) -> list[Row]:
    """National market share (BRAZIL, AMERICA, ECONOMY ANODIZED STEEL)."""
    america = select(db.table("region"), lambda r: r["r_name"] == "AMERICA")
    market_nations = {
        row["n_nationkey"]
        for row in hash_join(db.table("nation"), america, "n_regionkey", "r_regionkey")
    }
    nation_names = {row["n_nationkey"]: row["n_name"] for row in db.table("nation")}
    parts = {
        row["p_partkey"]
        for row in db.table("part")
        if row["p_type"] == "ECONOMY ANODIZED STEEL"
    }
    suppliers = {row["s_suppkey"]: row["s_nationkey"] for row in db.table("supplier")}
    customers = {row["c_custkey"]: row["c_nationkey"] for row in db.table("customer")}
    orders = {
        row["o_orderkey"]: (row["o_custkey"], row["o_orderdate"])
        for row in db.table("orders")
        if "1995-01-01" <= row["o_orderdate"] <= "1996-12-31"
    }
    volumes: list[Row] = []
    for line in db.table("lineitem"):
        order = orders.get(line["l_orderkey"])
        if order is None or line["l_partkey"] not in parts:
            continue
        custkey, orderdate = order
        if customers[custkey] not in market_nations:
            continue
        volumes.append(
            {
                "o_year": orderdate[:4],
                "volume": _revenue(line),
                "nation": nation_names[suppliers[line["l_suppkey"]]],
            }
        )
    rows = group_by(
        volumes,
        "o_year",
        {
            "brazil_volume": lambda: Sum(
                lambda r: r["volume"] if r["nation"] == "BRAZIL" else 0.0
            ),
            "total_volume": lambda: Sum("volume"),
        },
    )
    shares = [
        {
            "o_year": row["o_year"],
            "mkt_share": (
                row["brazil_volume"] / row["total_volume"]
                if row["total_volume"]
                else 0.0
            ),
        }
        for row in rows
    ]
    return order_by(shares, "o_year")


def q9(db: Database) -> list[Row]:
    """Product type profit measure (parts like %green%)."""
    parts = {
        row["p_partkey"]
        for row in db.table("part")
        if sql_like(row["p_name"], "%green%")
    }
    nation_names = {row["n_nationkey"]: row["n_name"] for row in db.table("nation")}
    suppliers = {row["s_suppkey"]: row["s_nationkey"] for row in db.table("supplier")}
    supply_cost = {
        (row["ps_partkey"], row["ps_suppkey"]): row["ps_supplycost"]
        for row in db.table("partsupp")
    }
    order_dates = {row["o_orderkey"]: row["o_orderdate"] for row in db.table("orders")}
    profits: list[Row] = []
    for line in db.table("lineitem"):
        if line["l_partkey"] not in parts:
            continue
        cost = supply_cost[(line["l_partkey"], line["l_suppkey"])]
        profits.append(
            {
                "nation": nation_names[suppliers[line["l_suppkey"]]],
                "o_year": order_dates[line["l_orderkey"]][:4],
                "amount": _revenue(line) - cost * line["l_quantity"],
            }
        )
    rows = group_by(
        profits, ("nation", "o_year"), {"sum_profit": lambda: Sum("amount")}
    )
    return order_by_many(rows, [("nation", False), ("o_year", True)])


def q10(db: Database) -> list[Row]:
    """Returned item reporting (Q4 1993, top 20 customers)."""
    orders = select(
        db.table("orders"),
        lambda r: "1993-10-01" <= r["o_orderdate"] < "1994-01-01",
    )
    returned = select(db.table("lineitem"), lambda r: r["l_returnflag"] == "R")
    joined = hash_join(returned, orders, "l_orderkey", "o_orderkey")
    with_customer = hash_join(joined, db.table("customer"), "o_custkey", "c_custkey")
    with_nation = hash_join(
        with_customer, db.table("nation"), "c_nationkey", "n_nationkey"
    )
    rows = group_by(
        with_nation,
        (
            "c_custkey", "c_name", "c_acctbal", "c_phone",
            "n_name", "c_address", "c_comment",
        ),
        {"revenue": lambda: Sum(_revenue)},
    )
    return limit(order_by(rows, "revenue", reverse=True), 20)


def q11(db: Database) -> list[Row]:
    """Important stock identification (GERMANY)."""
    germany = select(db.table("nation"), lambda r: r["n_name"] == "GERMANY")
    suppliers = hash_join(db.table("supplier"), germany, "s_nationkey", "n_nationkey")
    stock = list(
        extend(
            hash_join(db.table("partsupp"), suppliers, "ps_suppkey", "s_suppkey"),
            value=lambda r: r["ps_supplycost"] * r["ps_availqty"],
        )
    )
    total = sum(row["value"] for row in stock)
    threshold = total * 0.0001 / db.scale_factor if db.scale_factor else 0.0
    rows = group_by(stock, "ps_partkey", {"value": lambda: Sum("value")})
    significant = [row for row in rows if row["value"] > threshold]
    return order_by(significant, "value", reverse=True)


def q12(db: Database) -> list[Row]:
    """Shipping modes and order priority (MAIL, SHIP; 1994)."""
    lines = select(
        db.table("lineitem"),
        lambda r: (
            r["l_shipmode"] in ("MAIL", "SHIP")
            and r["l_commitdate"] < r["l_receiptdate"]
            and r["l_shipdate"] < r["l_commitdate"]
            and "1994-01-01" <= r["l_receiptdate"] < "1995-01-01"
        ),
    )
    joined = hash_join(lines, db.table("orders"), "l_orderkey", "o_orderkey")
    rows = group_by(
        joined,
        "l_shipmode",
        {
            "high_line_count": lambda: Sum(
                lambda r: 1 if r["o_orderpriority"] in ("1-URGENT", "2-HIGH") else 0
            ),
            "low_line_count": lambda: Sum(
                lambda r: 0 if r["o_orderpriority"] in ("1-URGENT", "2-HIGH") else 1
            ),
        },
    )
    return order_by(rows, "l_shipmode")


def q13(db: Database) -> list[Row]:
    """Customer distribution (comments without special…requests)."""
    orders = select(
        db.table("orders"),
        lambda r: not sql_like(r["o_comment"], "%special%requests%"),
    )
    joined = hash_join(
        db.table("customer"), orders, "c_custkey", "o_custkey", how="left"
    )
    # the left join gives unmatched customers a row without o_orderkey;
    # Count over the guarded expression therefore yields 0 for them
    per_customer = group_by(
        joined,
        "c_custkey",
        {"c_count": lambda: Count(lambda r: r.get("o_orderkey"))},
    )
    rows = group_by(per_customer, "c_count", {"custdist": lambda: Count()})
    return order_by_many(rows, [("custdist", True), ("c_count", True)])


def q14(db: Database) -> list[Row]:
    """Promotion effect (September 1995)."""
    lines = select(
        db.table("lineitem"),
        lambda r: "1995-09-01" <= r["l_shipdate"] < "1995-10-01",
    )
    joined = hash_join(lines, db.table("part"), "l_partkey", "p_partkey")
    totals = group_by(
        joined,
        None,
        {
            "promo": lambda: Sum(
                lambda r: _revenue(r) if sql_like(r["p_type"], "PROMO%") else 0.0
            ),
            "total": lambda: Sum(_revenue),
        },
    )[0]
    promo_revenue = (
        100.0 * totals["promo"] / totals["total"] if totals["total"] else 0.0
    )
    return [{"promo_revenue": promo_revenue}]


def q15(db: Database) -> list[Row]:
    """Top supplier (revenue view over Q1 1996)."""
    lines = select(
        db.table("lineitem"),
        lambda r: "1996-01-01" <= r["l_shipdate"] < "1996-04-01",
    )
    revenue = group_by(
        lines, "l_suppkey", {"total_revenue": lambda: Sum(_revenue)}
    )
    if not revenue:
        return []
    top = max(row["total_revenue"] for row in revenue)
    best = select(revenue, lambda r: r["total_revenue"] == top)
    joined = hash_join(best, db.table("supplier"), "l_suppkey", "s_suppkey")
    rows = project(
        joined, ("s_suppkey", "s_name", "s_address", "s_phone", "total_revenue")
    )
    return order_by(rows, "s_suppkey")


def q16(db: Database) -> list[Row]:
    """Parts/supplier relationship (excluding complained-about suppliers)."""
    sizes = {49, 14, 23, 45, 19, 3, 36, 9}
    parts = select(
        db.table("part"),
        lambda r: (
            r["p_brand"] != "Brand#45"
            and not sql_like(r["p_type"], "MEDIUM POLISHED%")
            and r["p_size"] in sizes
        ),
    )
    complainers = {
        row["s_suppkey"]
        for row in db.table("supplier")
        if sql_like(row["s_comment"], "%Customer%Complaints%")
    }
    supply = select(
        db.table("partsupp"), lambda r: r["ps_suppkey"] not in complainers
    )
    joined = hash_join(supply, parts, "ps_partkey", "p_partkey")
    rows = group_by(
        joined,
        ("p_brand", "p_type", "p_size"),
        {"supplier_cnt": lambda: CountDistinct("ps_suppkey")},
    )
    return order_by_many(
        rows,
        [("supplier_cnt", True), ("p_brand", False), ("p_type", False), ("p_size", False)],
    )


def q17(db: Database) -> list[Row]:
    """Small-quantity-order revenue (Brand#23, MED BOX)."""
    parts = {
        row["p_partkey"]
        for row in db.table("part")
        if row["p_brand"] == "Brand#23" and row["p_container"] == "MED BOX"
    }
    lines = [row for row in db.table("lineitem") if row["l_partkey"] in parts]
    averages = {
        row["l_partkey"]: row["avg_qty"]
        for row in group_by(lines, "l_partkey", {"avg_qty": lambda: Avg("l_quantity")})
    }
    small = select(
        lines, lambda r: r["l_quantity"] < 0.2 * averages[r["l_partkey"]]
    )
    total = group_by(small, None, {"total": lambda: Sum("l_extendedprice")})[0]
    return [{"avg_yearly": total["total"] / 7.0}]


def q18(db: Database) -> list[Row]:
    """Large volume customers (quantity sum > 300)."""
    per_order = group_by(
        db.table("lineitem"), "l_orderkey", {"sum_qty": lambda: Sum("l_quantity")}
    )
    big = {row["l_orderkey"]: row["sum_qty"] for row in per_order if row["sum_qty"] > 300}
    orders = select(db.table("orders"), lambda r: r["o_orderkey"] in big)
    joined = hash_join(orders, db.table("customer"), "o_custkey", "c_custkey")
    rows = [
        {
            "c_name": row["c_name"],
            "c_custkey": row["c_custkey"],
            "o_orderkey": row["o_orderkey"],
            "o_orderdate": row["o_orderdate"],
            "o_totalprice": row["o_totalprice"],
            "sum_qty": big[row["o_orderkey"]],
        }
        for row in joined
    ]
    ordered = order_by_many(rows, [("o_totalprice", True), ("o_orderdate", False)])
    return limit(ordered, 100)


def q19(db: Database) -> list[Row]:
    """Discounted revenue (three brand/container/quantity branches)."""
    parts = {row["p_partkey"]: row for row in db.table("part")}
    sm = {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}
    med = {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}
    lg = {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}

    def qualifies(line: Row) -> bool:
        if line["l_shipmode"] not in ("AIR", "REG AIR"):
            return False
        if line["l_shipinstruct"] != "DELIVER IN PERSON":
            return False
        part = parts.get(line["l_partkey"])
        if part is None:
            return False
        quantity = line["l_quantity"]
        if (
            part["p_brand"] == "Brand#12"
            and part["p_container"] in sm
            and 1 <= quantity <= 11
            and 1 <= part["p_size"] <= 5
        ):
            return True
        if (
            part["p_brand"] == "Brand#23"
            and part["p_container"] in med
            and 10 <= quantity <= 20
            and 1 <= part["p_size"] <= 10
        ):
            return True
        return (
            part["p_brand"] == "Brand#34"
            and part["p_container"] in lg
            and 20 <= quantity <= 30
            and 1 <= part["p_size"] <= 15
        )

    lines = select(db.table("lineitem"), qualifies)
    return group_by(lines, None, {"revenue": lambda: Sum(_revenue)})


def q20(db: Database) -> list[Row]:
    """Potential part promotion (forest parts, CANADA, 1994)."""
    forest_parts = {
        row["p_partkey"]
        for row in db.table("part")
        if sql_like(row["p_name"], "forest%")
    }
    shipped = group_by(
        select(
            db.table("lineitem"),
            lambda r: (
                r["l_partkey"] in forest_parts
                and "1994-01-01" <= r["l_shipdate"] < "1995-01-01"
            ),
        ),
        ("l_partkey", "l_suppkey"),
        {"qty": lambda: Sum("l_quantity")},
    )
    shipped_qty = {
        (row["l_partkey"], row["l_suppkey"]): row["qty"] for row in shipped
    }
    excess_suppliers = {
        row["ps_suppkey"]
        for row in db.table("partsupp")
        if row["ps_partkey"] in forest_parts
        and row["ps_availqty"]
        > 0.5 * shipped_qty.get((row["ps_partkey"], row["ps_suppkey"]), 0.0)
        and (row["ps_partkey"], row["ps_suppkey"]) in shipped_qty
    }
    canada = select(db.table("nation"), lambda r: r["n_name"] == "CANADA")
    suppliers = hash_join(db.table("supplier"), canada, "s_nationkey", "n_nationkey")
    rows = project(
        select(suppliers, lambda r: r["s_suppkey"] in excess_suppliers),
        ("s_name", "s_address"),
    )
    return order_by(rows, "s_name")


def q21(db: Database) -> list[Row]:
    """Suppliers who kept orders waiting (SAUDI ARABIA)."""
    saudi = select(db.table("nation"), lambda r: r["n_name"] == "SAUDI ARABIA")
    saudi_suppliers = {
        row["s_suppkey"]: row["s_name"]
        for row in hash_join(
            db.table("supplier"), saudi, "s_nationkey", "n_nationkey"
        )
    }
    failed_orders = {
        row["o_orderkey"]
        for row in db.table("orders")
        if row["o_orderstatus"] == "F"
    }
    suppliers_per_order: dict[int, set[int]] = {}
    late_suppliers_per_order: dict[int, set[int]] = {}
    for line in db.table("lineitem"):
        orderkey = line["l_orderkey"]
        if orderkey not in failed_orders:
            continue
        suppliers_per_order.setdefault(orderkey, set()).add(line["l_suppkey"])
        if line["l_receiptdate"] > line["l_commitdate"]:
            late_suppliers_per_order.setdefault(orderkey, set()).add(line["l_suppkey"])
    waiting: list[Row] = []
    for orderkey, late in late_suppliers_per_order.items():
        if len(late) != 1:
            continue  # some *other* supplier was late too ⇒ not exists fails
        (suppkey,) = late
        if suppkey not in saudi_suppliers:
            continue
        if len(suppliers_per_order[orderkey]) < 2:
            continue  # exists: another supplier contributed to the order
        waiting.append({"s_name": saudi_suppliers[suppkey]})
    rows = group_by(waiting, "s_name", {"numwait": lambda: Count()})
    ordered = order_by_many(rows, [("numwait", True), ("s_name", False)])
    return limit(ordered, 100)


def q22(db: Database) -> list[Row]:
    """Global sales opportunity (country codes 13,31,23,29,30,18,17)."""
    codes = ("13", "31", "23", "29", "30", "18", "17")
    customers = [
        row
        for row in db.table("customer")
        if row["c_phone"][:2] in codes
    ]
    positive = [row["c_acctbal"] for row in customers if row["c_acctbal"] > 0.0]
    if not positive:
        return []
    threshold = sum(positive) / len(positive)
    with_orders = {row["o_custkey"] for row in db.table("orders")}
    qualifying = [
        {"cntrycode": row["c_phone"][:2], "c_acctbal": row["c_acctbal"]}
        for row in customers
        if row["c_acctbal"] > threshold and row["c_custkey"] not in with_orders
    ]
    rows = group_by(
        qualifying,
        "cntrycode",
        {"numcust": lambda: Count(), "totacctbal": lambda: Sum("c_acctbal")},
    )
    return order_by(rows, "cntrycode")


#: query number → implementation, the full TPC-H workload
QUERIES: dict[int, Callable[[Database], list[Row]]] = {
    1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8, 9: q9, 10: q10,
    11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16, 17: q17, 18: q18,
    19: q19, 20: q20, 21: q21, 22: q22,
}


def run_query(number: int, db: Database) -> list[Row]:
    """Run TPC-H query *number* (1-22) against *db*."""
    try:
        query = QUERIES[number]
    except KeyError:
        raise ValueError(f"TPC-H defines queries 1-22, got {number}") from None
    return query(db)
