"""TPC-H schema definition (TPC Benchmark H, revision 2.16.0).

All eight tables with their full column lists, the per-table cardinality
scaling rules, and the reference data (region/nation names, segments,
priorities, …) the generator and the queries share.  Every column is
NOT NULL in TPC-H, which is what lets the schema-emulating views use the
full column set as their membership discriminator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TableSchema:
    """One TPC-H table: name, ordered columns, base cardinality at SF 1.

    ``cardinality_sf1 = 0`` marks fixed-size tables (nation, region);
    lineitem's cardinality is approximate (1–7 lines per order).
    """

    name: str
    columns: tuple[str, ...]
    cardinality_sf1: int

    def scaled_cardinality(self, scale_factor: float) -> int:
        if self.cardinality_sf1 == 0:
            return len(REGIONS) if self.name == "region" else len(NATIONS)
        return max(1, round(self.cardinality_sf1 * scale_factor))


REGION = TableSchema("region", ("r_regionkey", "r_name", "r_comment"), 0)

NATION = TableSchema(
    "nation", ("n_nationkey", "n_name", "n_regionkey", "n_comment"), 0
)

SUPPLIER = TableSchema(
    "supplier",
    (
        "s_suppkey",
        "s_name",
        "s_address",
        "s_nationkey",
        "s_phone",
        "s_acctbal",
        "s_comment",
    ),
    10_000,
)

CUSTOMER = TableSchema(
    "customer",
    (
        "c_custkey",
        "c_name",
        "c_address",
        "c_nationkey",
        "c_phone",
        "c_acctbal",
        "c_mktsegment",
        "c_comment",
    ),
    150_000,
)

PART = TableSchema(
    "part",
    (
        "p_partkey",
        "p_name",
        "p_mfgr",
        "p_brand",
        "p_type",
        "p_size",
        "p_container",
        "p_retailprice",
        "p_comment",
    ),
    200_000,
)

PARTSUPP = TableSchema(
    "partsupp",
    ("ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"),
    800_000,
)

ORDERS = TableSchema(
    "orders",
    (
        "o_orderkey",
        "o_custkey",
        "o_orderstatus",
        "o_totalprice",
        "o_orderdate",
        "o_orderpriority",
        "o_clerk",
        "o_shippriority",
        "o_comment",
    ),
    1_500_000,
)

LINEITEM = TableSchema(
    "lineitem",
    (
        "l_orderkey",
        "l_partkey",
        "l_suppkey",
        "l_linenumber",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_returnflag",
        "l_linestatus",
        "l_shipdate",
        "l_commitdate",
        "l_receiptdate",
        "l_shipinstruct",
        "l_shipmode",
        "l_comment",
    ),
    6_000_000,
)

#: all tables, FK-dependency order (parents before children)
TABLES: tuple[TableSchema, ...] = (
    REGION,
    NATION,
    SUPPLIER,
    CUSTOMER,
    PART,
    PARTSUPP,
    ORDERS,
    LINEITEM,
)

TABLE_BY_NAME: dict[str, TableSchema] = {table.name: table for table in TABLES}

# ----------------------------------------------------------------------
# reference data (TPC-H specification, clause 4.2.3)
# ----------------------------------------------------------------------
REGIONS: tuple[str, ...] = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: (nation name, region index) — the spec's 25 nations
NATIONS: tuple[tuple[str, int], ...] = (
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
)

MARKET_SEGMENTS: tuple[str, ...] = (
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
)

ORDER_PRIORITIES: tuple[str, ...] = (
    "1-URGENT",
    "2-HIGH",
    "3-MEDIUM",
    "4-NOT SPECIFIED",
    "5-LOW",
)

SHIP_MODES: tuple[str, ...] = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")

SHIP_INSTRUCTIONS: tuple[str, ...] = (
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
)

CONTAINERS: tuple[str, ...] = tuple(
    f"{size} {kind}"
    for size in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
)

#: p_type = "<syllable1> <syllable2> <syllable3>"
TYPE_SYLLABLE_1: tuple[str, ...] = (
    "STANDARD",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "ECONOMY",
    "PROMO",
)
TYPE_SYLLABLE_2: tuple[str, ...] = (
    "ANODIZED",
    "BURNISHED",
    "PLATED",
    "POLISHED",
    "BRUSHED",
)
TYPE_SYLLABLE_3: tuple[str, ...] = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

#: p_name draws five of these colour words
PART_NAME_WORDS: tuple[str, ...] = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace",
    "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon",
    "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo",
    "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru",
    "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy", "royal",
    "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke",
    "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet",
    "wheat", "white", "yellow",
)

#: Q22 selects customers by these phone country-code prefixes
Q22_COUNTRY_CODES: tuple[str, ...] = ("13", "31", "23", "29", "30", "18", "17")

#: date range of the business universe
START_DATE = "1992-01-01"
END_DATE = "1998-12-31"
CURRENT_DATE = "1995-06-17"
