"""Access-path adapters for the Table I experiment.

Table I compares the same 22-query workload over two access paths:

* :class:`StandardTPCHDatabase` — the "Standard TPC-H" scenario: every
  table lives in its own heap file and is read with a plain full scan.
* :class:`CinderellaTPCHDatabase` — the "Cinderella I/II/III" scenarios:
  all rows of all tables are loaded as entities into one
  Cinderella-partitioned universal table, and each TPC-H table is read
  through a schema-emulating :class:`~repro.table.views.TableView`
  (a pruned UNION ALL plus projection to the table schema).

Both adapters satisfy the :class:`~repro.workloads.tpch.queries.Database`
protocol and accumulate :class:`~repro.query.executor.ExecutionStats`
across the table reads a query performs, so the harness can report both
wall-clock and cost-model times per query and in total.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.config import CinderellaConfig
from repro.query.executor import ExecutionStats
from repro.storage.heap import HeapFile
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.record import deserialize_record, serialize_record
from repro.table.partitioned import CinderellaTable
from repro.table.views import TableView
from repro.workloads.tpch.dbgen import Row, TPCHData
from repro.workloads.tpch.schema import TABLE_BY_NAME


def _merge(total: ExecutionStats, delta: ExecutionStats) -> None:
    total.partitions_total += delta.partitions_total
    total.partitions_scanned += delta.partitions_scanned
    total.partitions_pruned += delta.partitions_pruned
    total.entities_read += delta.entities_read
    total.rows_returned += delta.rows_returned
    total.pages_read += delta.pages_read
    total.bytes_read += delta.bytes_read
    total.union_branches += delta.union_branches


class StandardTPCHDatabase:
    """Regular TPC-H tables: one heap file per table, full scans."""

    def __init__(self, data: TPCHData, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        from repro.catalog.dictionary import AttributeDictionary

        self.scale_factor = data.scale_factor
        self.dictionary = AttributeDictionary()
        self.io = IOStats()
        self._heaps: dict[str, HeapFile] = {}
        self.stats = ExecutionStats()
        eid = 0
        for name in data.table_names():
            heap = HeapFile(page_size=page_size, io=self.io)
            for row in data.table(name):
                heap.insert(serialize_record(eid, row, self.dictionary))
                eid += 1
            self._heaps[name] = heap

    def table(self, name: str) -> Iterator[Row]:
        """Full scan of one table's heap, accumulating read statistics."""
        heap = self._heaps[name]
        before = heap.io.snapshot()
        self.stats.partitions_total += 1
        self.stats.partitions_scanned += 1
        for _rid, record in heap.scan():
            _eid, attributes = deserialize_record(record, self.dictionary)
            self.stats.entities_read += 1
            self.stats.rows_returned += 1
            yield attributes
        delta = heap.io.delta_since(before)
        self.stats.pages_read += delta.pages_read
        self.stats.bytes_read += delta.bytes_read

    def pop_stats(self) -> ExecutionStats:
        """Return and reset the accumulated statistics."""
        stats = self.stats
        self.stats = ExecutionStats()
        return stats


class CinderellaTPCHDatabase:
    """TPC-H in a Cinderella-partitioned universal table, read via views."""

    def __init__(
        self,
        data: TPCHData,
        config: CinderellaConfig,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.scale_factor = data.scale_factor
        self.universal = CinderellaTable(config=config, page_size=page_size)
        self.load_outcomes = []
        for name in data.table_names():
            for row in data.table(name):
                self.load_outcomes.append(self.universal.insert(row))
        self.views: dict[str, TableView] = {
            name: TableView(name, TABLE_BY_NAME[name].columns, self.universal)
            for name in data.table_names()
        }
        self.stats = ExecutionStats()

    def table(self, name: str) -> Iterator[Row]:
        """Materialize the schema-emulating view for one table."""
        view = self.views[name]
        yield from view.rows()
        if view.last_stats is not None:
            _merge(self.stats, view.last_stats)

    def pop_stats(self) -> ExecutionStats:
        """Return and reset the accumulated statistics."""
        stats = self.stats
        self.stats = ExecutionStats()
        return stats

    def partition_count(self) -> int:
        return len(self.universal.catalog)

    def recovered_schema(self) -> dict[str, tuple[str, ...]]:
        """Attribute sets of the partitions Cinderella formed.

        On perfectly regular data every partition's synopsis should equal
        one TPC-H table's column set — "Cinderella finds only partitions
        which exactly fit the TPC-H schema" (Section V-C).
        """
        return {
            f"partition_{partition.pid}": self.universal.dictionary.decode(
                partition.mask
            )
            for partition in self.universal.catalog
        }

    def schema_is_exact(self) -> bool:
        """True when every partition maps to exactly one TPC-H table."""
        table_columns = {
            frozenset(schema.columns) for schema in TABLE_BY_NAME.values()
        }
        return all(
            frozenset(columns) in table_columns
            for columns in self.recovered_schema().values()
        )
