"""Synthetic DBpedia person data set, calibrated to Figure 4.

The paper's irregular-data experiments use 100 000 person entities with
100 attributes extracted from DBpedia.  The 2014 person dump is not
redistributable/offline-available, so this module generates a synthetic
equivalent that reproduces every distributional property the paper reports
(Section V-B, Figure 4):

* two attributes are extremely common, appearing on almost every entity;
* eleven attributes are fairly common (> 30 % of entities);
* 85 % of the attributes appear on fewer than 10 % of the entities
  (the Zipf-like long tail of refs [4], [5]);
* most entities instantiate between 2 and 15 attributes, a few up to ~27;
* overall sparseness of the universal table ≈ 0.94.

Equally important is *co-occurrence structure*: in real DBpedia, attribute
sets correlate through infobox templates (athletes share ``team`` and
``position``, politicians share ``party`` and ``office``).  The generator
mirrors this with latent person types: every non-universal attribute is
owned by a contiguous group of types, and entities draw attributes from
their own type's inventory.  That regularity-within-irregularity is what
makes attribute-based partitioning effective — exactly the premise of the
paper's Section II.

``validate_distribution`` asserts the calibration so the benchmarks can
prove they ran on Figure-4-shaped data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.dictionary import AttributeDictionary
from repro.storage.entity import Entity

#: DBpedia-flavoured person property names for the head of the dictionary;
#: the remainder is filled with generic property names.
_PERSON_ATTRIBUTES = (
    "name",
    "birthDate",
    "birthPlace",
    "deathDate",
    "deathPlace",
    "occupation",
    "nationality",
    "almaMater",
    "knownFor",
    "spouse",
    "children",
    "parents",
    "team",
    "position",
    "height",
    "weight",
    "party",
    "office",
    "termStart",
    "termEnd",
    "genre",
    "instrument",
    "recordLabel",
    "activeYearsStart",
    "activeYearsEnd",
    "award",
    "field",
    "doctoralAdvisor",
    "thesisTitle",
    "battle",
    "rank",
    "unit",
    "religion",
    "title",
    "dynasty",
    "predecessor",
    "successor",
    "netWorth",
    "homepage",
    "signature",
)


@dataclass
class DBpediaDataset:
    """The generated universal-table content plus its ground truth."""

    entities: list[Entity]
    attribute_names: tuple[str, ...]
    #: latent type index per entity (ground truth, useful for diagnostics)
    entity_types: list[int]
    seed: int

    def __len__(self) -> int:
        return len(self.entities)

    def dictionary(self) -> AttributeDictionary:
        """A fresh dictionary pre-seeded with the data set's attributes."""
        return AttributeDictionary(self.attribute_names)

    def attribute_frequencies(self) -> dict[str, float]:
        """Fraction of entities instantiating each attribute (Figure 4a)."""
        counts = {name: 0 for name in self.attribute_names}
        for entity in self.entities:
            for name in entity.attributes:
                counts[name] += 1
        n = len(self.entities)
        return {name: counts[name] / n for name in self.attribute_names}

    def attributes_per_entity(self) -> list[int]:
        """Number of instantiated attributes per entity (Figure 4b)."""
        return [len(entity.attributes) for entity in self.entities]

    def sparseness(self) -> float:
        """Unset-cell fraction of the full grid (paper: 0.94 for DBpedia)."""
        if not self.entities:
            return 0.0
        cells = len(self.entities) * len(self.attribute_names)
        filled = sum(len(entity.attributes) for entity in self.entities)
        return 1.0 - filled / cells


def _target_frequencies(n_attributes: int) -> list[float]:
    """The Figure-4(a) frequency curve by attribute rank (0-based)."""
    frequencies: list[float] = []
    for rank in range(1, n_attributes + 1):
        if rank == 1:
            frequencies.append(0.97)
        elif rank == 2:
            frequencies.append(0.95)
        elif rank <= 13:
            # eleven fairly common attributes, 0.65 down to 0.31
            step = (0.65 - 0.31) / 10
            frequencies.append(0.65 - step * (rank - 3))
        elif rank == 14:
            frequencies.append(0.22)
        elif rank == 15:
            frequencies.append(0.14)
        else:
            # long tail: Zipf-style decay starting just below 10 %
            frequencies.append(0.095 * (16.0 / rank) ** 1.7)
    return frequencies


def _attribute_names(n_attributes: int) -> tuple[str, ...]:
    names = list(_PERSON_ATTRIBUTES[:n_attributes])
    while len(names) < n_attributes:
        names.append(f"property{len(names):03d}")
    return tuple(names)


def _make_value(name: str, rng: random.Random) -> object:
    """A plausible small value for an attribute (content is irrelevant to
    partitioning; size realism matters for the byte-level I/O numbers)."""
    roll = rng.random()
    if roll < 0.35:
        return f"{name}-{rng.randrange(10_000)}"
    if roll < 0.6:
        return rng.randrange(1, 3000)
    if roll < 0.8:
        return round(rng.uniform(0.0, 500.0), 2)
    return rng.random() < 0.5


def generate_dbpedia_persons(
    n_entities: int = 100_000,
    n_attributes: int = 100,
    n_types: int = 20,
    seed: int = 42,
) -> DBpediaDataset:
    """Generate the synthetic DBpedia person extract.

    Args:
        n_entities: data set size (the paper uses 100 000).
        n_attributes: attribute universe size (the paper uses 100).
        n_types: number of latent person types driving co-occurrence.
        seed: RNG seed; generation is fully deterministic.

    Returns:
        A :class:`DBpediaDataset`; entity ids are ``0 … n_entities-1`` in
        generation order (callers wanting the paper's "random insert
        order" can shuffle, the order is already random w.r.t. type).
    """
    if n_attributes < 16:
        raise ValueError("the Figure-4 curve needs at least 16 attributes")
    if n_types < 2:
        raise ValueError("need at least two latent types")
    rng = random.Random(seed)
    names = _attribute_names(n_attributes)
    targets = _target_frequencies(n_attributes)

    # ownership: attribute rank >= 3 is owned by k consecutive types such
    # that (k / n_types) * within-type-probability == target frequency
    ownership: list[tuple[tuple[int, ...], float]] = []
    for index in range(n_attributes):
        frequency = targets[index]
        if index < 2:
            ownership.append((tuple(range(n_types)), frequency))
            continue
        spread = max(1, round(frequency * n_types / 0.7))
        within = frequency * n_types / spread
        while within > 0.98:
            spread += 1
            within = frequency * n_types / spread
        start = rng.randrange(n_types)
        owners = tuple((start + i) % n_types for i in range(spread))
        ownership.append((owners, within))

    # per-type attribute inventory: (attribute index, inclusion probability)
    inventories: list[list[tuple[int, float]]] = [[] for _ in range(n_types)]
    for index, (owners, within) in enumerate(ownership):
        for type_id in owners:
            inventories[type_id].append((index, within))

    entities: list[Entity] = []
    entity_types: list[int] = []
    for eid in range(n_entities):
        type_id = rng.randrange(n_types)
        attributes: dict[str, object] = {}
        for index, probability in inventories[type_id]:
            if rng.random() < probability:
                attributes[names[index]] = _make_value(names[index], rng)
        if rng.random() < 0.06:
            # occasional richly described person (long Figure-4(b) tail):
            # extra attributes drawn from the *neighbouring* types'
            # inventories — richness in DBpedia is type-local (a famous
            # athlete gains more athlete-ish properties, not politician
            # fields), which keeps partition synopses compact
            neighbourhood = [
                entry
                for offset in (-1, 0, 1)
                for entry in inventories[(type_id + offset) % n_types]
            ]
            for _ in range(rng.randint(3, 14)):
                index, _prob = rng.choice(neighbourhood)
                attributes.setdefault(names[index], _make_value(names[index], rng))
        if not attributes:
            # every DBpedia person record has at least a name
            attributes[names[0]] = _make_value(names[0], rng)
        entities.append(Entity(eid, attributes))
        entity_types.append(type_id)
    return DBpediaDataset(
        entities=entities,
        attribute_names=names,
        entity_types=entity_types,
        seed=seed,
    )


def validate_distribution(dataset: DBpediaDataset) -> list[str]:
    """Check the data set against the paper's Figure-4 anchors.

    Returns a list of violations (empty = the calibration holds).  The
    thresholds have slack for sampling noise at small ``n_entities``.
    """
    problems: list[str] = []
    frequencies = sorted(dataset.attribute_frequencies().values(), reverse=True)
    n_attrs = len(frequencies)
    if frequencies[1] < 0.85:
        problems.append(
            f"expected two near-universal attributes, second has {frequencies[1]:.2f}"
        )
    fairly_common = sum(1 for f in frequencies if f > 0.30)
    if not 10 <= fairly_common <= 18:
        problems.append(f"expected ~13 attributes above 30 %, got {fairly_common}")
    rare_share = sum(1 for f in frequencies if f < 0.10) / n_attrs
    if rare_share < 0.78:
        problems.append(
            f"expected ≥ ~85 % of attributes below 10 %, got {rare_share:.0%}"
        )
    per_entity = sorted(dataset.attributes_per_entity())
    n = len(per_entity)
    median = per_entity[n // 2]
    if not 4 <= median <= 15:
        problems.append(f"median attributes per entity {median} outside [4, 15]")
    if per_entity[-1] > 40:
        problems.append(f"max attributes per entity {per_entity[-1]} implausibly high")
    if per_entity[-1] < 16:
        problems.append(f"max attributes per entity {per_entity[-1]} lacks a tail")
    sparseness = dataset.sparseness()
    if not 0.85 <= sparseness <= 0.97:
        problems.append(f"sparseness {sparseness:.3f} outside [0.85, 0.97]")
    return problems
