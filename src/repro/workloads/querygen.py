"""Synthetic selective query workload (Section V-B).

"We generated a synthetic workload since there is no common or
standardized DBpedia workload. […] We created multiple sets of attributes.
Each of the individual attributes forms an attribute set.  Additionally,
we combined the 20 most frequent attributes to pairs and triples.  For
each of these attribute sets we generated a query of the form
``SELECT a₁, a₂, … WHERE a₁ IS NOT NULL OR a₂ IS NOT NULL …``."

This module builds exactly that workload over any entity-mask collection,
computes each query's true selectivity, and picks the paper's
"representative queries […] three representative queries for each
selectivity" via selectivity bucketing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from repro.catalog.dictionary import AttributeDictionary
from repro.query.query import AttributeQuery


@dataclass(frozen=True)
class QuerySpec:
    """A workload query together with its measured selectivity."""

    query: AttributeQuery
    #: fraction of entities the query returns (OR semantics)
    selectivity: float

    @property
    def arity(self) -> int:
        return len(self.query.attributes)


def _selectivity(query_mask: int, entity_masks: Sequence[int]) -> float:
    if not entity_masks:
        return 0.0
    matched = sum(1 for mask in entity_masks if mask & query_mask)
    return matched / len(entity_masks)


def top_frequent_attributes(
    entity_masks: Sequence[int], dictionary: AttributeDictionary, k: int = 20
) -> list[str]:
    """The ``k`` most frequent attribute names, most frequent first."""
    counts = [0] * len(dictionary)
    for mask in entity_masks:
        remaining = mask
        while remaining:
            low = remaining & -remaining
            counts[low.bit_length() - 1] += 1
            remaining ^= low
    ranked = sorted(range(len(counts)), key=lambda i: (-counts[i], i))
    return [dictionary.name_of(i) for i in ranked[:k] if counts[i] > 0]


def build_query_workload(
    entity_masks: Sequence[int],
    dictionary: AttributeDictionary,
    top_k: int = 20,
    max_triples: int = 300,
    seed: int = 7,
) -> list[QuerySpec]:
    """Generate the paper's synthetic workload over a data set.

    Singles over *every* attribute, all pairs of the ``top_k`` most
    frequent attributes, and a deterministic sample of ``max_triples``
    triples of them.  Queries that match nothing are kept (selectivity 0 —
    the best case for pruning).
    """
    specs: list[QuerySpec] = []
    for name in dictionary.names():
        query = AttributeQuery((name,))
        specs.append(
            QuerySpec(query, _selectivity(query.synopsis_mask(dictionary), entity_masks))
        )
    top = top_frequent_attributes(entity_masks, dictionary, top_k)
    for pair in combinations(top, 2):
        query = AttributeQuery(pair)
        specs.append(
            QuerySpec(query, _selectivity(query.synopsis_mask(dictionary), entity_masks))
        )
    triples = list(combinations(top, 3))
    if len(triples) > max_triples:
        rng = random.Random(seed)
        triples = rng.sample(triples, max_triples)
    for triple in triples:
        query = AttributeQuery(triple)
        specs.append(
            QuerySpec(query, _selectivity(query.synopsis_mask(dictionary), entity_masks))
        )
    return specs


def representative_queries(
    specs: Iterable[QuerySpec],
    bucket_width: float = 0.05,
    per_bucket: int = 3,
) -> list[QuerySpec]:
    """Pick the paper's representative queries covering all selectivities.

    Queries are bucketed by selectivity (default 5 %-wide buckets) and up
    to ``per_bucket`` queries per bucket are kept ("three representative
    queries for each selectivity"), chosen deterministically as the ones
    closest to the bucket centre.  Result is sorted by selectivity.
    """
    if bucket_width <= 0:
        raise ValueError("bucket_width must be positive")
    buckets: dict[int, list[QuerySpec]] = {}
    for spec in specs:
        buckets.setdefault(int(spec.selectivity / bucket_width), []).append(spec)
    chosen: list[QuerySpec] = []
    for bucket_index, bucket in sorted(buckets.items()):
        centre = (bucket_index + 0.5) * bucket_width
        bucket.sort(
            key=lambda spec: (
                abs(spec.selectivity - centre),
                spec.query.attributes,
            )
        )
        chosen.extend(bucket[:per_bucket])
    chosen.sort(key=lambda spec: (spec.selectivity, spec.query.attributes))
    return chosen
