"""Modification-trace generator: mixed insert/update/delete workloads.

The paper defines Cinderella's behaviour for all three modification kinds
(Section III) but its evaluation only measures bulk inserts.  To exercise
the full modification surface — and to quantify how stable the
partitioning stays under sustained churn — this module generates
reproducible traces of mixed operations over a data set:

* **inserts** draw unseen entities from the data set;
* **deletes** remove a uniformly random live entity;
* **updates** mutate a live entity's attribute set: a *drift* update
  re-draws the entity from its own latent type (small change), a *churn*
  update re-draws it from a different type (the entity "becomes something
  else" — the case that should move it to another partition).

Traces are plain lists of :class:`Operation`, replayable against any
partitioner or table via :func:`replay`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Literal, Mapping, Optional, Sequence

from repro.workloads.dbpedia import DBpediaDataset

OperationKind = Literal["insert", "update", "delete"]


@dataclass(frozen=True)
class Operation:
    """One modification: kind, entity id, and (for insert/update) payload."""

    kind: OperationKind
    entity_id: int
    attributes: Optional[Mapping[str, Any]] = None


def generate_trace(
    dataset: DBpediaDataset,
    operations: int,
    insert_share: float = 0.5,
    update_share: float = 0.3,
    churn_update_share: float = 0.3,
    warmup: int = 0,
    seed: int = 1,
) -> list[Operation]:
    """Build a reproducible mixed-modification trace.

    Args:
        dataset: source of entities; the trace never exceeds its size.
        operations: number of operations after the warm-up.
        insert_share / update_share: operation mix (the delete share is
            the remainder); shares are renormalised when inserts run out.
        churn_update_share: fraction of updates that re-draw the entity
            from a *different* latent type (big attribute-set change).
        warmup: leading plain inserts before the mixed phase.
        seed: RNG seed.

    Returns:
        The trace, warm-up included.
    """
    if not 0.0 <= insert_share <= 1.0 or not 0.0 <= update_share <= 1.0:
        raise ValueError("shares must lie in [0, 1]")
    if insert_share + update_share > 1.0:
        raise ValueError("insert and update shares exceed 1.0 combined")
    if warmup > len(dataset.entities):
        raise ValueError("warm-up larger than the data set")
    rng = random.Random(seed)
    trace: list[Operation] = []
    unseen = list(range(len(dataset.entities)))
    live: list[int] = []

    def insert_one() -> None:
        index = unseen.pop(rng.randrange(len(unseen)))
        entity = dataset.entities[index]
        trace.append(Operation("insert", entity.entity_id, entity.attributes))
        live.append(entity.entity_id)

    for _ in range(warmup):
        insert_one()

    by_type: dict[int, list[int]] = {}
    for index, type_id in enumerate(dataset.entity_types):
        by_type.setdefault(type_id, []).append(index)

    for _ in range(operations):
        roll = rng.random()
        if (roll < insert_share and unseen) or not live:
            if not unseen:
                continue  # data set exhausted and nothing live: skip
            insert_one()
        elif roll < insert_share + update_share:
            eid = live[rng.randrange(len(live))]
            own_type = dataset.entity_types[eid]
            if rng.random() < churn_update_share:
                other_types = [t for t in by_type if t != own_type]
                source_type = rng.choice(other_types) if other_types else own_type
            else:
                source_type = own_type
            donor_index = rng.choice(by_type[source_type])
            donor = dataset.entities[donor_index]
            trace.append(Operation("update", eid, dict(donor.attributes)))
        else:
            position = rng.randrange(len(live))
            eid = live.pop(position)
            trace.append(Operation("delete", eid))
    return trace


def replay(trace: Sequence[Operation], table) -> dict[str, int]:
    """Apply a trace to a table-like object (insert/update/delete API).

    Returns operation counts actually applied.
    """
    counts = {"insert": 0, "update": 0, "delete": 0}
    for operation in trace:
        if operation.kind == "insert":
            table.insert(operation.attributes, entity_id=operation.entity_id)
        elif operation.kind == "update":
            table.update(operation.entity_id, operation.attributes)
        else:
            table.delete(operation.entity_id)
        counts[operation.kind] += 1
    return counts


def replay_logical(trace: Sequence[Operation], partitioner, dictionary) -> dict[str, int]:
    """Apply a trace to a logical partitioner (masks instead of payloads)."""
    counts = {"insert": 0, "update": 0, "delete": 0}
    for operation in trace:
        if operation.kind == "insert":
            partitioner.insert(
                operation.entity_id, dictionary.encode(operation.attributes)
            )
        elif operation.kind == "update":
            partitioner.update(
                operation.entity_id, dictionary.encode(operation.attributes)
            )
        else:
            partitioner.delete(operation.entity_id)
        counts[operation.kind] += 1
    return counts
