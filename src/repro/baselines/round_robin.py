"""Round-robin (arrival-order) partitioning.

The simplest size-bounded horizontal partitioning: fill one partition to
the size limit, then open the next.  Like hash partitioning it ignores
schema properties; unlike hash partitioning it preserves insertion
locality, so it benefits slightly when arrival order correlates with
entity structure.  Serves as the "no intelligence, same B" control for
Cinderella in the efficiency benchmark.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.catalog import PartitionCatalog
from repro.core.outcomes import ModificationOutcome, Move
from repro.core.sizes import SizeModel, UniformSizeModel


class RoundRobinPartitioner:
    """Fill partitions in arrival order up to ``max_partition_size``."""

    def __init__(
        self,
        max_partition_size: float,
        size_model: Optional[SizeModel] = None,
    ) -> None:
        if max_partition_size <= 0:
            raise ValueError("max_partition_size must be positive")
        self.max_partition_size = max_partition_size
        self.size_model = size_model if size_model is not None else UniformSizeModel()
        self.catalog = PartitionCatalog()
        self._open_pid: Optional[int] = None

    def insert(self, eid: int, mask: int, payload_bytes: int = 0) -> ModificationOutcome:
        size = self.size_model.entity_size(mask, payload_bytes)
        outcome = ModificationOutcome(entity_id=eid)
        pid = self._open_pid
        if pid is not None:
            partition = self.catalog.get(pid)
            if partition.total_size + size > self.max_partition_size:
                pid = None
        if pid is None:
            partition = self.catalog.create_partition()
            pid = self._open_pid = partition.pid
            outcome.created_partitions.append(pid)
        self.catalog.add_entity(pid, eid, mask, size)
        outcome.partition_id = pid
        outcome.moves.append(Move(eid, None, pid))
        return outcome

    def delete(self, eid: int) -> ModificationOutcome:
        pid, _mask, _size = self.catalog.remove_entity(eid)
        outcome = ModificationOutcome(entity_id=eid, partition_id=None)
        if self.catalog.get(pid).is_empty():
            self.catalog.drop_partition(pid)
            if self._open_pid == pid:
                self._open_pid = None
            outcome.dropped_partitions.append(pid)
        return outcome

    def update(self, eid: int, mask: int, payload_bytes: int = 0) -> ModificationOutcome:
        """Arrival-order placement never moves entities."""
        size = self.size_model.entity_size(mask, payload_bytes)
        pid = self.catalog.update_entity(eid, mask, size)
        return ModificationOutcome(entity_id=eid, partition_id=pid, in_place=True)
