"""Hash partitioning — the web-scale default the paper contrasts with.

"In web-scale databases, where load balancing over a large number of nodes
is the main concern, hash partitioning is the common choice" (Section VI,
refs [12]-[14]).  Hash partitioning balances load perfectly but is blind
to schema properties, so partition synopses converge towards the full
attribute universe and pruning stops working — the negative baseline for
the efficiency benchmark.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.catalog import PartitionCatalog
from repro.core.outcomes import ModificationOutcome, Move
from repro.core.sizes import SizeModel, UniformSizeModel


def _mix(eid: int) -> int:
    """Deterministic 64-bit integer hash (builtin ``hash`` is salted for
    strings but stable for ints; mix anyway so sequential ids spread)."""
    value = (eid ^ (eid >> 33)) * 0xFF51AFD7ED558CCD & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 33)) * 0xC4CEB9FE1A85EC53 & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 33)


class HashPartitioner:
    """Online partitioner assigning entities by entity-id hash.

    The partition count is fixed up front (as in Dynamo-style systems);
    partitions are created lazily on first use.  The interface mirrors
    :class:`~repro.core.partitioner.CinderellaPartitioner` so the
    efficiency benchmark can drive all partitioners uniformly.
    """

    def __init__(
        self,
        num_partitions: int,
        size_model: Optional[SizeModel] = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions
        self.size_model = size_model if size_model is not None else UniformSizeModel()
        self.catalog = PartitionCatalog()
        self._slot_to_pid: dict[int, int] = {}

    def insert(self, eid: int, mask: int, payload_bytes: int = 0) -> ModificationOutcome:
        slot = _mix(eid) % self.num_partitions
        pid = self._slot_to_pid.get(slot)
        outcome = ModificationOutcome(entity_id=eid)
        if pid is None:
            partition = self.catalog.create_partition()
            pid = self._slot_to_pid[slot] = partition.pid
            outcome.created_partitions.append(pid)
        size = self.size_model.entity_size(mask, payload_bytes)
        self.catalog.add_entity(pid, eid, mask, size)
        outcome.partition_id = pid
        outcome.moves.append(Move(eid, None, pid))
        return outcome

    def delete(self, eid: int) -> ModificationOutcome:
        pid, _mask, _size = self.catalog.remove_entity(eid)
        outcome = ModificationOutcome(entity_id=eid, partition_id=None)
        if self.catalog.get(pid).is_empty():
            self.catalog.drop_partition(pid)
            for slot, slot_pid in list(self._slot_to_pid.items()):
                if slot_pid == pid:
                    del self._slot_to_pid[slot]
            outcome.dropped_partitions.append(pid)
        return outcome

    def update(self, eid: int, mask: int, payload_bytes: int = 0) -> ModificationOutcome:
        """Hash placement depends only on the id: always in place."""
        size = self.size_model.entity_size(mask, payload_bytes)
        pid = self.catalog.update_entity(eid, mask, size)
        return ModificationOutcome(entity_id=eid, partition_id=pid, in_place=True)
