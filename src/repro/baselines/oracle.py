"""Oracle partitioner — the efficiency upper bound.

Groups entities by their *exact* attribute-set signature and packs each
group into partitions of at most ``B``.  Every partition is perfectly
homogeneous (sparseness 0, like Cinderella at w = 0) while — unlike
w = 0 — identical signatures are never scattered.  No entity-based
partitioner can prune better, so this is the ceiling against which the
efficiency benchmark scores Cinderella.  It is offline and needs a full
pass plus unbounded working memory, which is exactly why the paper wants
an online algorithm instead.
"""

from __future__ import annotations

from typing import Sequence

from repro.catalog.catalog import PartitionCatalog
from repro.core.sizes import SizeModel, UniformSizeModel


class OraclePartitioner:
    """Exact-signature grouping packed into fixed-size partitions."""

    def __init__(
        self,
        max_partition_size: float,
        size_model: SizeModel | None = None,
    ) -> None:
        if max_partition_size <= 0:
            raise ValueError("max_partition_size must be positive")
        self.max_partition_size = max_partition_size
        self.size_model = size_model if size_model is not None else UniformSizeModel()
        self.catalog = PartitionCatalog()

    def fit(self, entities: Sequence[tuple[int, int]]) -> PartitionCatalog:
        """Group by signature and build the partition catalog."""
        if len(self.catalog):
            raise RuntimeError("fit() may only be called once per instance")
        groups: dict[int, list[int]] = {}
        for eid, mask in entities:
            groups.setdefault(mask, []).append(eid)
        for mask in sorted(groups):
            partition = self.catalog.create_partition()
            for eid in groups[mask]:
                size = self.size_model.entity_size(mask)
                if partition.total_size + size > self.max_partition_size:
                    partition = self.catalog.create_partition()
                self.catalog.add_entity(partition.pid, eid, mask, size)
        return self.catalog
