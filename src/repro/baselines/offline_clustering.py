"""Offline schema-similarity clustering — the hidden-schema comparator.

Section VI discusses Chu et al.'s hidden-schema inference [18]: an
*offline* technique clustering attributes by Jaccard co-occurrence.  The
paper notes it is not directly applicable (it partitions vertically and
needs a good ``k`` up front), but it is the closest published offline
alternative, so the benchmark suite includes a horizontal adaptation as a
comparator:

1. **Leader clustering** on entity synopses: entities join the first
   cluster whose leader synopsis is Jaccard-similar above a threshold
   (one pass, deterministic, no ``k`` needed — mirroring how practitioners
   would adapt the idea).
2. **Size packing**: each cluster is chunked into partitions of at most
   ``B`` entities, so the result is directly comparable to Cinderella's
   fixed-capacity partitionings.

Being offline, it sees the whole data set at once — an upper-hand
Cinderella does not have; Cinderella's selling point is matching such
quality *online*.
"""

from __future__ import annotations

from typing import Sequence

from repro.catalog.catalog import PartitionCatalog
from repro.core.sizes import SizeModel, UniformSizeModel


def jaccard(mask_a: int, mask_b: int) -> float:
    """Jaccard coefficient of two attribute-set masks (1.0 for two empties)."""
    union = (mask_a | mask_b).bit_count()
    if union == 0:
        return 1.0
    return (mask_a & mask_b).bit_count() / union


def leader_clusters(
    entities: Sequence[tuple[int, int]], threshold: float
) -> list[list[tuple[int, int]]]:
    """One-pass leader clustering of ``(eid, mask)`` pairs.

    An entity joins the first cluster whose *leader* (founding entity) has
    Jaccard similarity ≥ *threshold*; otherwise it founds a new cluster.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must lie in [0, 1], got {threshold}")
    leaders: list[int] = []
    clusters: list[list[tuple[int, int]]] = []
    for eid, mask in entities:
        for index, leader_mask in enumerate(leaders):
            if jaccard(mask, leader_mask) >= threshold:
                clusters[index].append((eid, mask))
                break
        else:
            leaders.append(mask)
            clusters.append([(eid, mask)])
    return clusters


class OfflineClusteringPartitioner:
    """Offline Jaccard clustering packed into fixed-size partitions."""

    def __init__(
        self,
        max_partition_size: float,
        threshold: float = 0.4,
        size_model: SizeModel | None = None,
    ) -> None:
        if max_partition_size <= 0:
            raise ValueError("max_partition_size must be positive")
        self.max_partition_size = max_partition_size
        self.threshold = threshold
        self.size_model = size_model if size_model is not None else UniformSizeModel()
        self.catalog = PartitionCatalog()
        self.cluster_count = 0

    def fit(self, entities: Sequence[tuple[int, int]]) -> PartitionCatalog:
        """Cluster the whole data set and build the partition catalog."""
        if len(self.catalog):
            raise RuntimeError("fit() may only be called once per instance")
        clusters = leader_clusters(entities, self.threshold)
        self.cluster_count = len(clusters)
        for cluster in clusters:
            partition = self.catalog.create_partition()
            for eid, mask in cluster:
                size = self.size_model.entity_size(mask)
                if partition.total_size + size > self.max_partition_size:
                    partition = self.catalog.create_partition()
                self.catalog.add_entity(partition.pid, eid, mask, size)
        return self.catalog
