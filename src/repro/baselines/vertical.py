"""Vertical hidden-schema partitioning — the comparator of Section VI.

Chu, Beckmann, and Naughton's wide-table work [18] infers "hidden
schemas" by clustering *attributes* on their co-occurrence: the Jaccard
coefficient of every attribute pair forms an adjacency structure, k-NN
clustering groups the attributes, and each group becomes a narrow
vertical fragment of the universal table.  The paper positions it as the
closest related technique while noting it is "not directly applicable":
it partitions vertically, offline, and needs a good ``k`` up front.

This module implements the technique faithfully enough to *measure* that
argument instead of only citing it:

* :func:`attribute_jaccard` computes the pairwise co-occurrence matrix;
* :class:`HiddenSchemaPartitioner` builds the k-nearest-neighbour graph
  over attributes and takes connected components as vertical fragments
  (singleton attributes join their best neighbour's fragment);
* cell-level read volumes let the benchmark compare the resulting
  vertical layout against Cinderella's horizontal layout on the *same*
  workload — the quantitative version of the paper's Section VI claim.

numpy is used for the co-occurrence counting (the only dense-matrix step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def masks_to_matrix(entity_masks: Sequence[int], n_attributes: int) -> np.ndarray:
    """Entity synopsis masks as a boolean (entities × attributes) matrix."""
    matrix = np.zeros((len(entity_masks), n_attributes), dtype=bool)
    for row, mask in enumerate(entity_masks):
        remaining = mask
        while remaining:
            low = remaining & -remaining
            matrix[row, low.bit_length() - 1] = True
            remaining ^= low
    return matrix


def attribute_jaccard(matrix: np.ndarray) -> np.ndarray:
    """Pairwise Jaccard coefficients of attribute co-occurrence.

    ``J[a, b] = |entities with a and b| / |entities with a or b|``;
    attributes with no instances get 0 against everything (and 1 on the
    diagonal by convention).
    """
    counted = matrix.astype(np.int64)
    counts = counted.sum(axis=0).astype(np.float64)
    intersection = (counted.T @ counted).astype(np.float64)
    union = counts[:, None] + counts[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        jaccard = np.where(union > 0, intersection / union, 0.0)
    np.fill_diagonal(jaccard, 1.0)
    return jaccard


@dataclass(frozen=True)
class VerticalFragment:
    """One vertical fragment: a set of attribute ids."""

    attribute_ids: frozenset[int]

    def mask(self) -> int:
        value = 0
        for attr_id in self.attribute_ids:
            value |= 1 << attr_id
        return value


class HiddenSchemaPartitioner:
    """Offline vertical partitioning by attribute co-occurrence clustering."""

    def __init__(self, k_neighbors: int = 3, min_jaccard: float = 0.1) -> None:
        """Configure the clustering.

        Args:
            k_neighbors: each attribute links to its ``k`` most
                co-occurring peers (the technique's ``k`` — the parameter
                the paper notes requires "additional knowledge about the
                data" to choose well).
            min_jaccard: links below this coefficient are ignored, so
                unrelated attributes do not chain into one fragment.
        """
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be at least 1")
        if not 0.0 <= min_jaccard <= 1.0:
            raise ValueError("min_jaccard must lie in [0, 1]")
        self.k_neighbors = k_neighbors
        self.min_jaccard = min_jaccard
        self.fragments: list[VerticalFragment] = []

    def fit(
        self, entity_masks: Sequence[int], n_attributes: int
    ) -> list[VerticalFragment]:
        """Cluster the attributes; returns (and stores) the fragments."""
        if self.fragments:
            raise RuntimeError("fit() may only be called once per instance")
        matrix = masks_to_matrix(entity_masks, n_attributes)
        jaccard = attribute_jaccard(matrix)

        # undirected k-NN graph over attributes, thresholded
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(n_attributes))
        for attr_id in range(n_attributes):
            scores = jaccard[attr_id].copy()
            scores[attr_id] = -1.0  # no self edges
            neighbour_order = np.argsort(-scores)[: self.k_neighbors]
            for neighbour in neighbour_order:
                if scores[neighbour] >= self.min_jaccard:
                    graph.add_edge(attr_id, int(neighbour))
        self.fragments = [
            VerticalFragment(frozenset(component))
            for component in nx.connected_components(graph)
        ]
        self.fragments.sort(key=lambda fragment: min(fragment.attribute_ids))
        return self.fragments

    # ------------------------------------------------------------------
    # cell-level accounting
    # ------------------------------------------------------------------
    def fragment_volumes(self, entity_masks: Sequence[int]) -> list[float]:
        """Instantiated-cell volume stored in each fragment.

        Sparse storage: a fragment holds, per entity, only the cells of
        its attributes the entity instantiates.
        """
        if not self.fragments:
            raise RuntimeError("call fit() first")
        volumes = []
        for fragment in self.fragments:
            fragment_mask = fragment.mask()
            volumes.append(
                float(
                    sum((mask & fragment_mask).bit_count() for mask in entity_masks)
                )
            )
        return volumes

    def cell_efficiency(
        self, entity_masks: Sequence[int], query_masks: Sequence[int]
    ) -> float:
        """Definition-1-style efficiency of the vertical layout, in cells.

        A query reads every fragment containing at least one referenced
        attribute, in full; the relevant volume is the instantiated cells
        of exactly the referenced attributes.
        """
        if not self.fragments:
            raise RuntimeError("call fit() first")
        volumes = self.fragment_volumes(entity_masks)
        read = 0.0
        relevant = 0.0
        for query_mask in query_masks:
            for fragment, volume in zip(self.fragments, volumes):
                if fragment.mask() & query_mask:
                    read += volume
            relevant += float(
                sum((mask & query_mask).bit_count() for mask in entity_masks)
            )
        if read == 0.0:
            return 1.0
        return relevant / read


def horizontal_cell_efficiency(catalog, query_masks: Sequence[int]) -> float:
    """Cell-level Definition 1 efficiency of a horizontal partitioning.

    The comparable number for :meth:`HiddenSchemaPartitioner.cell_efficiency`:
    a non-pruned horizontal partition is read in full — all instantiated
    cells of all its members — while only the members' cells in the
    queried attributes are relevant.
    """
    read = 0.0
    relevant = 0.0
    partition_volumes = {}
    for partition in catalog:
        partition_volumes[partition.pid] = float(
            sum(mask.bit_count() for _eid, mask, _size in partition.members())
        )
    for query_mask in query_masks:
        for partition in catalog:
            if partition.mask & query_mask:
                read += partition_volumes[partition.pid]
                relevant += float(
                    sum(
                        (mask & query_mask).bit_count()
                        for _eid, mask, _size in partition.members()
                    )
                )
    if read == 0.0:
        return 1.0
    return relevant / read
