"""Baseline partitioners for comparison against Cinderella."""

from repro.baselines.hash_partitioner import HashPartitioner
from repro.baselines.offline_clustering import (
    OfflineClusteringPartitioner,
    jaccard,
    leader_clusters,
)
from repro.baselines.oracle import OraclePartitioner
from repro.baselines.round_robin import RoundRobinPartitioner
from repro.baselines.vertical import (
    HiddenSchemaPartitioner,
    VerticalFragment,
    attribute_jaccard,
    horizontal_cell_efficiency,
    masks_to_matrix,
)

__all__ = [
    "HashPartitioner",
    "HiddenSchemaPartitioner",
    "VerticalFragment",
    "attribute_jaccard",
    "horizontal_cell_efficiency",
    "masks_to_matrix",
    "OfflineClusteringPartitioner",
    "OraclePartitioner",
    "RoundRobinPartitioner",
    "jaccard",
    "leader_clusters",
]
