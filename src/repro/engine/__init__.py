"""Relational operator library used by the TPC-H experiment."""

from repro.engine.aggregates import (
    Aggregate,
    Avg,
    Count,
    CountDistinct,
    Max,
    Min,
    Sum,
)
from repro.engine.operators import (
    extend,
    group_by,
    hash_join,
    limit,
    order_by,
    order_by_many,
    project,
    select,
)

__all__ = [
    "Aggregate",
    "Avg",
    "Count",
    "CountDistinct",
    "Max",
    "Min",
    "Sum",
    "extend",
    "group_by",
    "hash_join",
    "limit",
    "order_by",
    "order_by_many",
    "project",
    "select",
]
