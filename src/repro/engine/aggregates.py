"""Aggregate functions for the relational operator library.

Aggregates follow the classic init/step/final contract so
:func:`repro.engine.operators.group_by` can fold them in one pass.  Each
factory takes either a column name or a callable computing the input
expression from a row — enough to express every TPC-H aggregate
(``sum(l_extendedprice * (1 - l_discount))`` etc.).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Union

Expr = Union[str, Callable[[Mapping[str, Any]], Any]]


def compile_expr(expr: Expr) -> Callable[[Mapping[str, Any]], Any]:
    """Turn a column name or callable into a row function."""
    if callable(expr):
        return expr
    if isinstance(expr, str):
        name = expr
        return lambda row: row[name]
    raise TypeError(f"expression must be a column name or callable, got {expr!r}")


class Aggregate:
    """Base class: subclasses implement ``step`` and ``result``."""

    def step(self, row: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class Sum(Aggregate):
    """``SUM(expr)`` — 0 for an empty group (SQL would say NULL; TPC-H
    groups are never empty, and 0 keeps arithmetic simple)."""

    def __init__(self, expr: Expr) -> None:
        self._expr = compile_expr(expr)
        self._total = 0.0

    def step(self, row: Mapping[str, Any]) -> None:
        self._total += self._expr(row)

    def result(self) -> float:
        return self._total


class Count(Aggregate):
    """``COUNT(*)`` or, with an expression, ``COUNT(expr)`` counting
    non-None values."""

    def __init__(self, expr: Optional[Expr] = None) -> None:
        self._expr = compile_expr(expr) if expr is not None else None
        self._count = 0

    def step(self, row: Mapping[str, Any]) -> None:
        if self._expr is None or self._expr(row) is not None:
            self._count += 1

    def result(self) -> int:
        return self._count


class CountDistinct(Aggregate):
    """``COUNT(DISTINCT expr)``."""

    def __init__(self, expr: Expr) -> None:
        self._expr = compile_expr(expr)
        self._seen: set[Any] = set()

    def step(self, row: Mapping[str, Any]) -> None:
        self._seen.add(self._expr(row))

    def result(self) -> int:
        return len(self._seen)


class Avg(Aggregate):
    """``AVG(expr)`` — None for an empty group."""

    def __init__(self, expr: Expr) -> None:
        self._expr = compile_expr(expr)
        self._total = 0.0
        self._count = 0

    def step(self, row: Mapping[str, Any]) -> None:
        self._total += self._expr(row)
        self._count += 1

    def result(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._total / self._count


class Min(Aggregate):
    """``MIN(expr)`` — None for an empty group."""

    def __init__(self, expr: Expr) -> None:
        self._expr = compile_expr(expr)
        self._best: Any = None

    def step(self, row: Mapping[str, Any]) -> None:
        value = self._expr(row)
        if self._best is None or value < self._best:
            self._best = value

    def result(self) -> Any:
        return self._best


class Max(Aggregate):
    """``MAX(expr)`` — None for an empty group."""

    def __init__(self, expr: Expr) -> None:
        self._expr = compile_expr(expr)
        self._best: Any = None

    def step(self, row: Mapping[str, Any]) -> None:
        value = self._expr(row)
        if self._best is None or value > self._best:
            self._best = value

    def result(self) -> Any:
        return self._best


#: factory type used by ``group_by``: builds a fresh Aggregate per group
AggregateFactory = Callable[[], Aggregate]
