"""Relational operators — the executor under the TPC-H experiment.

A deliberately small but complete physical operator library working on
iterables of ``dict`` rows: selection, projection, hash joins (inner,
left-outer, semi, anti), grouping with streaming aggregates, sorting, and
limiting.  All 22 TPC-H queries of :mod:`repro.workloads.tpch.queries`
compose these operators; the same query code runs against regular tables
and against Cinderella's schema-emulating views, which is what Table I
compares.

Rows are plain dicts; joins merge left and right rows, which is unambiguous
for TPC-H since every table's columns carry a unique prefix.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence, Union

from repro.engine.aggregates import Aggregate, compile_expr

Row = dict[str, Any]
KeySpec = Union[str, Sequence[str], Callable[[Mapping[str, Any]], Any]]


def compile_key(key: KeySpec) -> Callable[[Mapping[str, Any]], Any]:
    """Turn a column / column list / callable into a grouping-key function."""
    if callable(key):
        return key
    if isinstance(key, str):
        name = key
        return lambda row: row[name]
    names = tuple(key)
    return lambda row: tuple(row[name] for name in names)


def select(rows: Iterable[Row], predicate: Callable[[Row], bool]) -> Iterator[Row]:
    """Filter: yield rows satisfying the predicate."""
    return (row for row in rows if predicate(row))


def project(
    rows: Iterable[Row], columns: Mapping[str, Any] | Sequence[str]
) -> Iterator[Row]:
    """Projection: keep named columns, or compute ``{out: expr}`` columns."""
    if isinstance(columns, Mapping):
        compiled = {name: compile_expr(expr) for name, expr in columns.items()}
        return ({name: fn(row) for name, fn in compiled.items()} for row in rows)
    names = tuple(columns)
    return ({name: row[name] for name in names} for row in rows)


def extend(rows: Iterable[Row], **computed: Any) -> Iterator[Row]:
    """Add derived columns, keeping the existing ones."""
    compiled = {name: compile_expr(expr) for name, expr in computed.items()}
    for row in rows:
        enriched = dict(row)
        for name, fn in compiled.items():
            enriched[name] = fn(row)
        yield enriched


def hash_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_key: KeySpec,
    right_key: KeySpec,
    how: str = "inner",
) -> Iterator[Row]:
    """Hash join: build on the right input, probe with the left.

    ``how`` selects the flavour:

    * ``inner`` — merged row per matching pair;
    * ``left`` — additionally, unmatched left rows (right columns absent);
    * ``semi`` — left rows with at least one match, unmerged;
    * ``anti`` — left rows with no match, unmerged.
    """
    if how not in ("inner", "left", "semi", "anti"):
        raise ValueError(f"unknown join flavour {how!r}")
    probe_key = compile_key(left_key)
    build_key = compile_key(right_key)
    buckets: dict[Any, list[Row]] = {}
    for row in right:
        buckets.setdefault(build_key(row), []).append(row)
    for row in left:
        matches = buckets.get(probe_key(row))
        if how == "semi":
            if matches:
                yield row
        elif how == "anti":
            if not matches:
                yield row
        elif matches:
            for match in matches:
                yield {**row, **match}
        elif how == "left":
            yield dict(row)


def group_by(
    rows: Iterable[Row],
    key: KeySpec | None,
    aggregates: Mapping[str, Callable[[], Aggregate]],
    key_names: Sequence[str] | None = None,
) -> list[Row]:
    """Hash aggregation.

    ``key=None`` aggregates everything into a single row (scalar
    aggregate; the row is produced even for empty input, as in SQL).
    When ``key`` is a column list, the key columns are carried into the
    output under their own names; for callables pass ``key_names``.
    """
    if key is None:
        totals = {name: factory() for name, factory in aggregates.items()}
        for row in rows:
            for aggregate in totals.values():
                aggregate.step(row)
        return [{name: aggregate.result() for name, aggregate in totals.items()}]

    if key_names is None:
        if isinstance(key, str):
            key_names = (key,)
        elif not callable(key):
            key_names = tuple(key)
        else:
            raise ValueError("callable keys require key_names")
    key_fn = compile_key(key)
    groups: dict[Any, dict[str, Aggregate]] = {}
    for row in rows:
        group_key = key_fn(row)
        group = groups.get(group_key)
        if group is None:
            group = groups[group_key] = {
                name: factory() for name, factory in aggregates.items()
            }
        for aggregate in group.values():
            aggregate.step(row)
    results: list[Row] = []
    for group_key, group in groups.items():
        if len(key_names) == 1 and not isinstance(group_key, tuple):
            out: Row = {key_names[0]: group_key}
        else:
            out = dict(zip(key_names, group_key))
        for name, aggregate in group.items():
            out[name] = aggregate.result()
        results.append(out)
    return results


def order_by(
    rows: Iterable[Row],
    key: KeySpec,
    reverse: bool = False,
) -> list[Row]:
    """Sort rows (stable, so chained sorts compose like SQL tie-breaks)."""
    return sorted(rows, key=compile_key(key), reverse=reverse)


def order_by_many(
    rows: Iterable[Row], specs: Sequence[tuple[KeySpec, bool]]
) -> list[Row]:
    """Multi-key sort with per-key direction, e.g. TPC-H's
    ``ORDER BY s_acctbal DESC, n_name, s_name``.

    Implemented as stable sorts applied right-to-left.
    """
    result = list(rows)
    for key, descending in reversed(list(specs)):
        result.sort(key=compile_key(key), reverse=descending)
    return result


def limit(rows: Iterable[Row], n: int) -> list[Row]:
    """Keep the first ``n`` rows."""
    if n < 0:
        raise ValueError("limit must be non-negative")
    out: list[Row] = []
    for row in rows:
        if len(out) >= n:
            break
        out.append(row)
    return out
