"""Atomic wrappers for every multi-step catalog operation.

Each wrapper runs one operation — a modification that may cascade into
splits, a merge pass, an offline reorganization — inside a
:class:`~repro.txn.transaction.CatalogTransaction`, optionally
journaled through an :class:`~repro.txn.journal.OperationJournal`:

1. the intent record is fsynced (``op_begin``),
2. the operation applies its steps, each guarded by the crash hook
   (and mirrored as ``op_step`` records when journaled),
3. on success the fsynced ``op_commit`` record makes the operation
   durable and the undo log is discarded;
4. on *any* failure — a validation error, a host exception, or an
   injected :class:`~repro.distributed.failures.MidOperationCrash` —
   the undo log rolls the catalog back to the exact pre-operation
   state.  Clean failures additionally journal ``op_abort``; a
   simulated crash writes nothing, exactly like a real process death,
   and recovery ignores the commit-less operation.

``crash_hook`` is a callable invoked with a step label at every step
boundary; the fault-injection matrix passes
:meth:`~repro.distributed.failures.CrashInjector.reached`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, TYPE_CHECKING

from repro.distributed.failures import MidOperationCrash
from repro.maintenance.merger import MergeReport, merge_small_partitions
from repro.maintenance.reorganizer import ReorganizationReport, reorganize
from repro.obs import runtime as obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.outcomes import ModificationOutcome
    from repro.core.partitioner import CinderellaPartitioner
    from repro.metrics.telemetry import RobustnessCounters
    from repro.txn.journal import OperationJournal

CrashHook = Callable[[str], None]

#: memoized span names — ``f"txn.{kind}"`` would allocate per write on
#: the group-commit path
_SPAN_NAMES: dict[str, str] = {}


def _run_atomic(
    partitioner: "CinderellaPartitioner",
    kind: str,
    params: dict[str, Any],
    operation: Callable[[CrashHook], Any],
    journal: Optional["OperationJournal"],
    crash_hook: Optional[CrashHook],
    counters: Optional["RobustnessCounters"],
):
    """Journal, apply-with-undo, and commit-or-rollback one operation."""
    op_id = journal.begin(kind, params) if journal is not None else None
    if counters is not None:
        counters.ops_started += 1
    step_index = 0

    def hook(label: str) -> None:
        nonlocal step_index
        if journal is not None:
            journal.step(op_id, step_index, label)
        if counters is not None:
            counters.op_steps += 1
        step_index += 1
        if crash_hook is not None:
            crash_hook(label)

    txn = partitioner.catalog.begin_transaction()
    span_name = _SPAN_NAMES.get(kind)
    if span_name is None:
        span_name = _SPAN_NAMES.setdefault(kind, f"txn.{kind}")
    with obs.span(span_name, journaled=journal is not None) as span:
        try:
            result = operation(hook)
        except BaseException as error:
            txn.rollback()
            if counters is not None:
                counters.ops_rolled_back += 1
            obs.event(
                "txn.rollback", kind=kind,
                error=f"{type(error).__name__}: {error}",
            )
            obs.inc(
                "repro_txn_ops_total",
                help_text="Atomic catalog operations by kind and outcome",
                kind=kind, outcome="rolled_back",
            )
            if journal is not None and not isinstance(error, MidOperationCrash):
                # a simulated crash writes nothing — like a real process
                # death; clean failures record an explicit abort
                journal.abort(op_id, f"{type(error).__name__}: {error}")
            raise
        if journal is not None:
            journal.commit(op_id, kind, params)
        txn.commit()
        if counters is not None:
            counters.ops_committed += 1
        obs.inc(
            "repro_txn_ops_total",
            help_text="Atomic catalog operations by kind and outcome",
            kind=kind, outcome="committed",
        )
        if span.is_recording:
            span.set("steps", step_index)
    return result


def _with_partitioner_hook(
    partitioner: "CinderellaPartitioner",
    hook: CrashHook,
    call: Callable[[], Any],
):
    """Install *hook* as the partitioner's step hook for one call."""
    previous = partitioner.crash_hook
    partitioner.crash_hook = hook
    try:
        return call()
    finally:
        partitioner.crash_hook = previous


def atomic_insert(
    partitioner: "CinderellaPartitioner",
    eid: int,
    mask: int,
    payload_bytes: int = 0,
    *,
    journal: Optional["OperationJournal"] = None,
    crash_hook: Optional[CrashHook] = None,
    counters: Optional["RobustnessCounters"] = None,
) -> "ModificationOutcome":
    """Insert atomically: a crash mid-split leaves no trace of the op."""
    return _run_atomic(
        partitioner,
        "insert",
        {"eid": eid, "mask": mask, "payload_bytes": payload_bytes},
        lambda hook: _with_partitioner_hook(
            partitioner, hook,
            lambda: partitioner.insert(eid, mask, payload_bytes),
        ),
        journal, crash_hook, counters,
    )


def atomic_update(
    partitioner: "CinderellaPartitioner",
    eid: int,
    mask: int,
    payload_bytes: int = 0,
    *,
    journal: Optional["OperationJournal"] = None,
    crash_hook: Optional[CrashHook] = None,
    counters: Optional["RobustnessCounters"] = None,
) -> "ModificationOutcome":
    """Update atomically (the move/split path is multi-step)."""
    return _run_atomic(
        partitioner,
        "update",
        {"eid": eid, "mask": mask, "payload_bytes": payload_bytes},
        lambda hook: _with_partitioner_hook(
            partitioner, hook,
            lambda: partitioner.update(eid, mask, payload_bytes),
        ),
        journal, crash_hook, counters,
    )


def atomic_delete(
    partitioner: "CinderellaPartitioner",
    eid: int,
    *,
    journal: Optional["OperationJournal"] = None,
    crash_hook: Optional[CrashHook] = None,
    counters: Optional["RobustnessCounters"] = None,
) -> "ModificationOutcome":
    """Delete atomically (remove + possible partition drop)."""
    return _run_atomic(
        partitioner,
        "delete",
        {"eid": eid},
        lambda hook: _with_partitioner_hook(
            partitioner, hook, lambda: partitioner.delete(eid)
        ),
        journal, crash_hook, counters,
    )


def atomic_merge(
    partitioner: "CinderellaPartitioner",
    min_fill: float = 0.25,
    query_masks: Optional[Sequence[int]] = None,
    *,
    journal: Optional["OperationJournal"] = None,
    crash_hook: Optional[CrashHook] = None,
    counters: Optional["RobustnessCounters"] = None,
) -> MergeReport:
    """Run a merge pass atomically: all merges commit, or none do."""
    params: dict[str, Any] = {"min_fill": min_fill}
    if query_masks is not None:
        params["query_masks"] = list(query_masks)
    return _run_atomic(
        partitioner,
        "merge",
        params,
        lambda hook: merge_small_partitions(
            partitioner, min_fill, query_masks=query_masks, crash_hook=hook
        ),
        journal, crash_hook, counters,
    )


def atomic_reorganize(
    partitioner: "CinderellaPartitioner",
    config=None,
    query_masks: Optional[Sequence[int]] = None,
    order: str = "size",
    *,
    journal: Optional["OperationJournal"] = None,
    crash_hook: Optional[CrashHook] = None,
    counters: Optional["RobustnessCounters"] = None,
) -> ReorganizationReport:
    """Reorganize *in place*, atomically.

    The rebuild runs against a fresh scratch partitioner — a crash
    during it discards the scratch and leaves the live catalog
    untouched.  The live partitioner then adopts the rebuilt catalog in
    one swap (the operation's single point of no return, directly
    before the commit record).  The returned report's ``partitioner``
    is the same object that was passed in.
    """
    params: dict[str, Any] = {"order": order}
    if query_masks is not None:
        params["query_masks"] = list(query_masks)

    def operation(hook: CrashHook) -> ReorganizationReport:
        report = reorganize(
            partitioner, config, query_masks, order, crash_hook=hook
        )
        hook("reorganize:swap")
        rebuilt = report.partitioner
        # the rebuilt catalog restarts pids from zero; re-stamp all its
        # partition versions past the replaced catalog's clock so no
        # result-cache entry keyed against the old catalog can collide
        rebuilt.catalog.adopt_version_clock(partitioner.catalog.version_clock)
        partitioner.config = rebuilt.config
        partitioner.catalog = rebuilt.catalog
        partitioner.split_count += rebuilt.split_count
        partitioner.ratings_computed += rebuilt.ratings_computed
        return ReorganizationReport(
            partitioner=partitioner,
            partitions_before=report.partitions_before,
            partitions_after=report.partitions_after,
            efficiency_before=report.efficiency_before,
            efficiency_after=report.efficiency_after,
        )

    return _run_atomic(
        partitioner, "reorganize", params, operation,
        journal, crash_hook, counters,
    )
