"""Undo-log transactions over the partition catalog.

A :class:`CatalogTransaction` records, for every catalog mutation made
while it is active, the information needed to reverse it.  ``rollback``
replays the log backwards through the same catalog API the forward
path used, so the synopsis bitmaps, per-attribute reference counts,
entity location map, and the optional synopsis index all return to
their exact pre-transaction state; the split-starter pairs — which the
partitioner also mutates outside member operations — are restored from
before-images captured the first time a transaction touches each
partition.

The transaction is installed via
:meth:`~repro.catalog.catalog.PartitionCatalog.begin_transaction`; the
catalog's mutators call the ``note_*`` hooks.  Rollback detaches the
hooks first, so its own reversing mutations are not re-recorded.

Exact rollback is what turns a mid-operation crash from a corruption
into a non-event: the fault-injection matrix
(``tests/test_crash_matrix.py``) crashes every operation at every step
index and requires ``check_invariants()`` to come back empty with not a
single row lost or duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.catalog import PartitionCatalog


class TransactionError(RuntimeError):
    """Raised on transaction misuse (nesting, reuse after close)."""


#: before-image of one partition's split-starter pair
_StarterImage = tuple[Optional[int], int, Optional[int], int]


@dataclass(frozen=True)
class Savepoint:
    """A point inside an open transaction to roll back to.

    Captures the undo-log length plus the split-starter state of every
    partition the transaction had touched so far — starters are the one
    thing the log does not cover per-mutation (they are restored from
    first-touch images on full rollback), so a partial rollback needs
    their at-savepoint values explicitly.
    """

    log_len: int
    starter_images: dict[int, _StarterImage]


class CatalogTransaction:
    """One atomic scope of catalog mutations with exact rollback.

    Usable as a context manager: the transaction commits on clean exit
    and rolls back when the block raises (the exception propagates).

    >>> from repro.catalog.catalog import PartitionCatalog
    >>> catalog = PartitionCatalog()
    >>> with catalog.begin_transaction():
    ...     partition = catalog.create_partition()
    ...     catalog.add_entity(partition.pid, 1, 0b11, 1.0)
    >>> catalog.entity_count
    1
    """

    def __init__(self, catalog: "PartitionCatalog") -> None:
        self.catalog = catalog
        self.active = True
        #: forward-order mutation log; each entry starts with a tag
        self._log: list[tuple] = []
        #: pid -> split-starter before-image at first touch
        self._starter_images: dict[int, _StarterImage] = {}

    # ------------------------------------------------------------------
    # recording hooks (called by the catalog's mutators)
    # ------------------------------------------------------------------
    def note_touch(self, pid: int) -> None:
        """Capture a partition's starter before-image at first touch."""
        if pid not in self._starter_images:
            starters = self.catalog.get(pid).starters
            self._starter_images[pid] = (
                starters.eid_a, starters.mask_a,
                starters.eid_b, starters.mask_b,
            )

    def note_create(self, pid: int, previous_next_pid: int) -> None:
        self._log.append(("create", pid, previous_next_pid))

    def note_drop(self, pid: int) -> None:
        # drop requires the partition to be empty, so members need no
        # capture here — their removals are already in the log
        self.note_touch(pid)
        self._log.append(("drop", pid))

    def note_add(self, pid: int, eid: int) -> None:
        self.note_touch(pid)
        self._log.append(("add", pid, eid))

    def note_remove(self, pid: int, eid: int, mask: int, size: float) -> None:
        self.note_touch(pid)
        self._log.append(("remove", pid, eid, mask, size))

    def note_update(
        self, pid: int, eid: int, old_mask: int, old_size: float
    ) -> None:
        self.note_touch(pid)
        self._log.append(("update", pid, eid, old_mask, old_size))

    @property
    def mutation_count(self) -> int:
        """Mutations recorded so far (diagnostics/telemetry)."""
        return len(self._log)

    # ------------------------------------------------------------------
    # outcome
    # ------------------------------------------------------------------
    def _close(self) -> None:
        if not self.active:
            raise TransactionError("transaction already closed")
        self.active = False
        self.catalog._txn = None

    def commit(self) -> None:
        """Keep every recorded mutation; discard the undo log."""
        self._close()
        self._log.clear()
        self._starter_images.clear()

    def rollback(self) -> None:
        """Reverse every recorded mutation, newest first."""
        self._close()
        catalog = self.catalog
        for entry in reversed(self._log):
            self._reverse(entry)
        for pid, image in self._starter_images.items():
            if pid not in catalog:
                continue  # created inside the transaction, now gone again
            self._restore_starters(pid, image)
        self._log.clear()
        self._starter_images.clear()

    def _reverse(self, entry: tuple) -> None:
        """Apply the inverse of one recorded mutation."""
        catalog = self.catalog
        tag = entry[0]
        if tag == "add":
            _tag, _pid, eid = entry
            catalog.remove_entity(eid, repair_starters=False)
        elif tag == "remove":
            _tag, pid, eid, mask, size = entry
            catalog.add_entity(pid, eid, mask, size, observe_starters=False)
        elif tag == "update":
            _tag, _pid, eid, old_mask, old_size = entry
            catalog.update_entity(eid, old_mask, old_size)
        elif tag == "create":
            _tag, pid, previous_next_pid = entry
            catalog.drop_partition(pid)
            catalog._next_pid = previous_next_pid
        else:  # "drop"
            _tag, pid = entry
            catalog.create_partition_with_id(pid)

    def _restore_starters(self, pid: int, image: _StarterImage) -> None:
        starters = self.catalog.get(pid).starters
        (starters.eid_a, starters.mask_a,
         starters.eid_b, starters.mask_b) = image

    # ------------------------------------------------------------------
    # savepoints (group commit: per-op rollback inside one transaction)
    # ------------------------------------------------------------------
    def savepoint(self) -> Savepoint:
        """Mark the current state for a possible partial rollback.

        The serving layer's group commit wraps a whole write batch in
        one transaction and takes a savepoint before each operation, so
        a refused operation rolls back alone while the batch's earlier
        successes stand.
        """
        if not self.active:
            raise TransactionError("transaction already closed")
        images: dict[int, _StarterImage] = {}
        for pid in self._starter_images:
            if pid not in self.catalog:
                continue  # dropped inside the transaction before this point
            starters = self.catalog.get(pid).starters
            images[pid] = (
                starters.eid_a, starters.mask_a,
                starters.eid_b, starters.mask_b,
            )
        return Savepoint(log_len=len(self._log), starter_images=images)

    def rollback_to(self, savepoint: Savepoint) -> None:
        """Reverse every mutation recorded after *savepoint*.

        The transaction stays open and keeps recording.  Hooks are
        detached while the suffix replays (as in :meth:`rollback`), so
        reversing mutations are not re-recorded.
        """
        if not self.active:
            raise TransactionError("transaction already closed")
        if savepoint.log_len > len(self._log):
            raise TransactionError(
                f"savepoint at log position {savepoint.log_len} is ahead of "
                f"the log ({len(self._log)} entries)"
            )
        catalog = self.catalog
        catalog._txn = None
        try:
            for entry in reversed(self._log[savepoint.log_len:]):
                self._reverse(entry)
        finally:
            catalog._txn = self
        # starters: a pid first touched after the savepoint restores its
        # first-touch image (== its at-savepoint state) and leaves the
        # image set; a pid touched before it restores the state captured
        # at savepoint time and keeps its transaction-start image for a
        # later full rollback
        for pid in list(self._starter_images):
            if pid in savepoint.starter_images:
                continue
            image = self._starter_images.pop(pid)
            if pid in catalog:
                self._restore_starters(pid, image)
        for pid, image in savepoint.starter_images.items():
            if pid in catalog:
                self._restore_starters(pid, image)
        del self._log[savepoint.log_len:]

    # ------------------------------------------------------------------
    # context manager
    # ------------------------------------------------------------------
    def __enter__(self) -> "CatalogTransaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if not self.active:  # already resolved inside the block
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
