"""Transactional operation layer for multi-step catalog mutations.

Cinderella's splits, merge passes, and offline reorganizations are
multi-step catalog mutations; interrupted half-way they would leave the
catalog violating its own invariants.  This package makes every such
operation atomic:

* :mod:`repro.txn.transaction` — an undo log hooked into the
  :class:`~repro.catalog.catalog.PartitionCatalog`: every mutation made
  while a transaction is active records its inverse, and ``rollback``
  restores the exact pre-operation catalog (members, synopses, sizes,
  split starters, partition ids, synopsis index).
* :mod:`repro.txn.journal` — intent/step/commit records written to the
  :class:`~repro.storage.wal.WriteAheadLog`, fsynced at the commit
  points, so a coordinator rebuilt from ``snapshot + WAL`` never
  replays a half-finished operation.
* :mod:`repro.txn.ops` — atomic wrappers for the partitioner's
  modification interface and the maintenance passes, with mid-operation
  crash injection hooks for the fault-injection test matrix.
"""

from repro.txn.journal import OperationJournal
from repro.txn.ops import (
    atomic_delete,
    atomic_insert,
    atomic_merge,
    atomic_reorganize,
    atomic_update,
)
from repro.txn.transaction import CatalogTransaction, TransactionError

__all__ = [
    "CatalogTransaction",
    "OperationJournal",
    "TransactionError",
    "atomic_delete",
    "atomic_insert",
    "atomic_merge",
    "atomic_reorganize",
    "atomic_update",
]
