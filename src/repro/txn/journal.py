"""The operation journal: durable intent/step/commit records.

Multi-step catalog operations (split-carrying inserts, merge passes,
reorganizations) journal their lifecycle to the coordinator's
write-ahead log:

* ``op_begin`` — the *intent* record, fsynced before the first catalog
  mutation.  It names the operation kind and its deterministic
  parameters.
* ``op_step`` — optional progress markers (not fsynced; they exist for
  observability and are dropped by compaction).
* ``op_commit`` — the *atomic commit point*, fsynced.  WAL replay
  re-applies an operation if and only if its commit record is present;
  an ``op_begin`` without a commit is an interrupted operation whose
  effects were rolled back in memory and were never replayed into a
  recovered coordinator.
* ``op_abort`` — written on a clean rollback (validation failure, host
  error).  A *crash* mid-operation writes nothing — that is the point:
  absence of the commit record already means "not applied".

Operation ids are deterministic (``op-<n>`` with ``n`` monotonic per
log), so recovery and replay assign the same ids as the original run.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.storage.wal import (
    JOURNAL_ABORT,
    JOURNAL_BEGIN,
    JOURNAL_COMMIT,
    JOURNAL_STEP,
    WALRecord,
    WriteAheadLog,
)


class OperationJournal:
    """Intent/step/commit journaling over a :class:`WriteAheadLog`."""

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal
        self._next_op = self._scan_next_op_number()

    def _scan_next_op_number(self) -> int:
        """Resume the op-id counter after the last id already journaled."""
        highest = 0
        for record in self.wal.records():
            op_id = record.payload.get("op_id")
            if isinstance(op_id, str) and op_id.startswith("op-"):
                try:
                    highest = max(highest, int(op_id[3:]))
                except ValueError:
                    continue
        return highest + 1

    # ------------------------------------------------------------------
    # lifecycle records
    # ------------------------------------------------------------------
    def begin(self, kind: str, params: Optional[dict[str, Any]] = None) -> str:
        """Write the fsynced intent record; returns the operation id."""
        op_id = f"op-{self._next_op}"
        self._next_op += 1
        payload = {"op_id": op_id, "kind": kind}
        if params:
            payload["params"] = params
        self.wal.append(JOURNAL_BEGIN, payload, sync=True)
        return op_id

    def step(self, op_id: str, index: int, label: str) -> None:
        """Write a progress marker (flushed, not fsynced)."""
        self.wal.append(
            JOURNAL_STEP, {"op_id": op_id, "index": index, "label": label}
        )

    def commit(
        self, op_id: str, kind: str, params: Optional[dict[str, Any]] = None
    ) -> None:
        """Write the fsynced commit record — the atomic durability point.

        The commit repeats ``kind`` and ``params`` so replay can re-run
        the operation from the commit record alone, even after
        compaction dropped the begin record.
        """
        payload = {"op_id": op_id, "kind": kind}
        if params:
            payload["params"] = params
        self.wal.append(JOURNAL_COMMIT, payload, sync=True)

    def abort(self, op_id: str, reason: str) -> None:
        """Record a clean rollback (crashes write nothing, by design)."""
        self.wal.append(
            JOURNAL_ABORT, {"op_id": op_id, "reason": reason}, sync=True
        )

    # ------------------------------------------------------------------
    # recovery-side inspection
    # ------------------------------------------------------------------
    @staticmethod
    def incomplete_ops(records: list[WALRecord]) -> list[dict[str, Any]]:
        """Begin payloads of operations with no commit/abort record.

        These are the operations a crash interrupted: recovery skips
        them (their effects were never durable) and reports them so the
        operator knows a maintenance pass needs re-running.
        """
        terminal: set[str] = set()
        begun: dict[str, dict[str, Any]] = {}
        for record in records:
            op_id = record.payload.get("op_id")
            if record.op == JOURNAL_BEGIN and isinstance(op_id, str):
                begun[op_id] = record.payload
            elif record.op in (JOURNAL_COMMIT, JOURNAL_ABORT):
                if isinstance(op_id, str):
                    terminal.add(op_id)
        return [
            payload for op_id, payload in begun.items() if op_id not in terminal
        ]
