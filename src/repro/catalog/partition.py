"""Partition metadata: members, exact synopsis, size, and split starters.

A :class:`Partition` is the *catalog entry* for one horizontal partition of
the universal table: it records which entities live in the partition, the
partition synopsis (the union of its members' attribute sets, Section II),
the accumulated ``SIZE(p)``, and the split-starter pair (Section III).

The paper leaves open how the partition synopsis evolves when entities are
removed; a stale superset synopsis stays *sound* for pruning but loses
precision.  We keep the synopsis exact by maintaining per-attribute
reference counts, so the synopsis bit of an attribute is cleared the moment
its last instance leaves the partition (see DESIGN.md §6).

Physical storage of the entity payloads is handled separately by the table
layer (:mod:`repro.table.partitioned`); the catalog works purely on synopsis
masks and sizes, exactly like the paper's system-catalog-driven prototype.
"""

from __future__ import annotations

from typing import Iterator

from repro.catalog.starters import SplitStarters


def iter_attribute_ids(mask: int) -> Iterator[int]:
    """Yield the attribute ids (bit positions) set in *mask*."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Partition:
    """Catalog entry of one partition: synopsis, members, size, starters."""

    __slots__ = (
        "pid",
        "mask",
        "attr_count",
        "total_size",
        "starters",
        "_members",
        "_attr_counts",
    )

    def __init__(self, pid: int) -> None:
        self.pid = pid
        #: exact partition synopsis: union of member attribute masks
        self.mask: int = 0
        #: cached ``|p|`` (bit count of ``mask``), used by the rating scan
        self.attr_count: int = 0
        #: accumulated ``SIZE(p)``
        self.total_size: float = 0.0
        self.starters = SplitStarters()
        # entity id -> (mask, size)
        self._members: dict[int, tuple[int, float]] = {}
        # attribute id -> number of member entities instantiating it
        self._attr_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, eid: int) -> bool:
        return eid in self._members

    def entity_ids(self) -> tuple[int, ...]:
        return tuple(self._members)

    def members(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(entity_id, mask, size)`` for every member."""
        for eid, (mask, size) in self._members.items():
            yield eid, mask, size

    def member(self, eid: int) -> tuple[int, float]:
        """Return ``(mask, size)`` of a member entity."""
        return self._members[eid]

    def is_empty(self) -> bool:
        return not self._members

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, eid: int, mask: int, size: float, observe_starters: bool = True) -> int:
        """Add an entity; return the set of synopsis bits that became new.

        The returned mask (possibly 0) tells the catalog which inverted
        index postings to extend.  ``observe_starters=False`` is used by the
        partitioner when Algorithm 1 already ran the starter-maintenance
        step before the capacity check.
        """
        if eid in self._members:
            raise ValueError(f"entity {eid} already in partition {self.pid}")
        self._members[eid] = (mask, size)
        self.total_size += size
        added_bits = mask & ~self.mask
        for attr_id in iter_attribute_ids(mask):
            self._attr_counts[attr_id] = self._attr_counts.get(attr_id, 0) + 1
        if added_bits:
            self.mask |= added_bits
            self.attr_count = self.mask.bit_count()
        if observe_starters:
            self.starters.observe(eid, mask)
        return added_bits

    def remove(self, eid: int, repair_starters: bool = True) -> tuple[int, float, int]:
        """Remove an entity; return ``(mask, size, removed_synopsis_bits)``.

        ``removed_synopsis_bits`` are attributes whose last instance left
        the partition (postings to shrink).  ``repair_starters=False`` skips
        the starter replay — used when draining a partition that is about
        to be dropped, keeping splits linear.
        """
        mask, size = self._members.pop(eid)
        self.total_size -= size
        removed_bits = 0
        for attr_id in iter_attribute_ids(mask):
            count = self._attr_counts[attr_id] - 1
            if count:
                self._attr_counts[attr_id] = count
            else:
                del self._attr_counts[attr_id]
                removed_bits |= 1 << attr_id
        if removed_bits:
            self.mask &= ~removed_bits
            self.attr_count = self.mask.bit_count()
        if repair_starters and self.starters.is_starter(eid):
            self.starters.replay((m_eid, m_mask) for m_eid, m_mask, _ in self.members())
        return mask, size, removed_bits

    def update_member(self, eid: int, mask: int, size: float) -> tuple[int, int]:
        """Change a member's synopsis/size in place (the paper's update case).

        Returns ``(added_synopsis_bits, removed_synopsis_bits)`` for index
        maintenance.  The split-starter pair is refreshed with the new mask
        and then re-offered the updated entity, so the pair can only get
        more differential.
        """
        old_mask, old_size = self._members[eid]
        self._members[eid] = (mask, size)
        self.total_size += size - old_size
        added_bits = 0
        removed_bits = 0
        for attr_id in iter_attribute_ids(old_mask & ~mask):
            count = self._attr_counts[attr_id] - 1
            if count:
                self._attr_counts[attr_id] = count
            else:
                del self._attr_counts[attr_id]
                removed_bits |= 1 << attr_id
        for attr_id in iter_attribute_ids(mask & ~old_mask):
            previous = self._attr_counts.get(attr_id, 0)
            self._attr_counts[attr_id] = previous + 1
            if previous == 0:
                added_bits |= 1 << attr_id
        if added_bits or removed_bits:
            self.mask = (self.mask | added_bits) & ~removed_bits
            self.attr_count = self.mask.bit_count()
        self.starters.refresh_mask(eid, mask)
        self.starters.observe(eid, mask)
        return added_bits, removed_bits

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def attribute_ids(self) -> tuple[int, ...]:
        """Attribute ids currently present in the partition synopsis."""
        return tuple(iter_attribute_ids(self.mask))

    def sparseness(self) -> float:
        """Fraction of unset cells in the partition's entity × attribute grid.

        ``0.0`` means perfectly dense (every member instantiates every
        partition attribute — the w = 0 regime of Figure 7(d)); values close
        to 1 mean the partition is almost as sparse as a universal table.
        Empty partitions and attribute-less partitions are defined as dense.
        """
        if not self._members or self.attr_count == 0:
            return 0.0
        instantiated = sum(mask.bit_count() for _, (mask, _) in self._members.items())
        cells = len(self._members) * self.attr_count
        return 1.0 - instantiated / cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partition(pid={self.pid}, entities={len(self._members)}, "
            f"attrs={self.attr_count}, size={self.total_size:g})"
        )
