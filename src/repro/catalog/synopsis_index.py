"""Inverted synopsis index: attribute → partitions instantiating it.

The paper's conclusions name "the management of a large number of partition
synopses with specialized data structures" as the next research step.  This
module is our implementation of that extension: an inverted index from
attribute id to the set of partitions whose synopsis contains the
attribute, so the insert-time rating scan touches only partitions that
*overlap* the incoming entity instead of the whole catalog.

The restriction is exact with respect to Algorithm 1's outcome:

* a partition with zero synopsis overlap always rates negative (its local
  rating is ``−(1−w)(SIZE(e)·|p| + SIZE(p)·|e|) < 0`` for ``w < 1``), so it
  can never be the accepted best partition;
* when *every* partition rates negative, Algorithm 1 opens a new partition
  regardless of which negative rating was largest, so skipping zero-overlap
  partitions never changes the decision;
* the only zero-overlap pair rating non-negatively is an attribute-less
  entity against an attribute-less partition (rating 0), which the index
  covers with a dedicated posting list for empty-synopsis partitions;
* for ``w = 1`` heterogeneity is ignored and zero-overlap partitions rate
  exactly 0, tying with empty partitions — the index conservatively returns
  the full catalog in that configuration.

``bench_ablations.py`` verifies the equivalence empirically and measures
the speedup; :mod:`tests.test_synopsis_index` proves it property-based.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.catalog.partition import iter_attribute_ids

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.partition import Partition


class SynopsisIndex:
    """Attribute-id → set of partition ids whose synopsis has the attribute."""

    def __init__(self) -> None:
        self._postings: dict[int, set[int]] = {}
        self._empty_synopsis_pids: set[int] = set()
        self._known_pids: set[int] = set()

    def __len__(self) -> int:
        return len(self._known_pids)

    def register(self, pid: int, mask: int) -> None:
        """Start tracking a partition with its current synopsis mask."""
        self._known_pids.add(pid)
        if mask == 0:
            self._empty_synopsis_pids.add(pid)
        for attr_id in iter_attribute_ids(mask):
            self._postings.setdefault(attr_id, set()).add(pid)

    def unregister(self, pid: int, mask: int) -> None:
        """Stop tracking a partition (e.g. dropped after a split)."""
        self._known_pids.discard(pid)
        self._empty_synopsis_pids.discard(pid)
        for attr_id in iter_attribute_ids(mask):
            postings = self._postings.get(attr_id)
            if postings is not None:
                postings.discard(pid)
                if not postings:
                    del self._postings[attr_id]

    def on_bits_added(self, pid: int, added_bits: int) -> None:
        """A partition's synopsis gained attributes (entity added/updated)."""
        if added_bits:
            self._empty_synopsis_pids.discard(pid)
            for attr_id in iter_attribute_ids(added_bits):
                self._postings.setdefault(attr_id, set()).add(pid)

    def on_bits_removed(self, pid: int, removed_bits: int, new_mask: int) -> None:
        """A partition's synopsis lost attributes (entity removed/updated)."""
        for attr_id in iter_attribute_ids(removed_bits):
            postings = self._postings.get(attr_id)
            if postings is not None:
                postings.discard(pid)
                if not postings:
                    del self._postings[attr_id]
        if new_mask == 0 and pid in self._known_pids:
            self._empty_synopsis_pids.add(pid)

    def candidate_pids(self, entity_mask: int) -> set[int]:
        """Partition ids that could rate non-negatively against the entity.

        For a non-empty entity mask these are the partitions sharing at
        least one attribute; for an empty mask, the attribute-less
        partitions (see module docstring).
        """
        if entity_mask == 0:
            return set(self._empty_synopsis_pids)
        candidates: set[int] = set()
        for attr_id in iter_attribute_ids(entity_mask):
            postings = self._postings.get(attr_id)
            if postings:
                candidates.update(postings)
        return candidates

    def partitions_with_attribute(self, attr_id: int) -> frozenset[int]:
        """Posting list for one attribute (used by query pruning)."""
        return frozenset(self._postings.get(attr_id, ()))


def verify_index_against_catalog(
    index: SynopsisIndex, partitions: Iterable["Partition"]
) -> list[str]:
    """Cross-check index postings against the true partition synopses.

    Returns a list of human-readable inconsistencies (empty = consistent).
    Used by tests and by the catalog's ``check_invariants`` debugging hook.
    """
    problems: list[str] = []
    expected_postings: dict[int, set[int]] = {}
    expected_empty: set[int] = set()
    for partition in partitions:
        if partition.mask == 0:
            expected_empty.add(partition.pid)
        for attr_id in iter_attribute_ids(partition.mask):
            expected_postings.setdefault(attr_id, set()).add(partition.pid)
    if expected_postings != index._postings:
        problems.append(
            f"postings mismatch: expected {expected_postings}, got {index._postings}"
        )
    if expected_empty != index._empty_synopsis_pids:
        problems.append(
            "empty-synopsis set mismatch: "
            f"expected {expected_empty}, got {index._empty_synopsis_pids}"
        )
    return problems
