"""Attribute dictionary: the table-wide mapping of attribute names to bits.

A universal table hosts entities over a large, growing set of attributes.
All synopses in this reproduction (entity, partition, and query synopses, see
Sections II-IV of the paper) are integer bitmasks over a single, table-wide
:class:`AttributeDictionary`.  The dictionary assigns each attribute name a
stable bit position the first time the attribute is seen, which makes the
set-algebraic synopsis operations the paper relies on (``|e ∧ p|``,
``|e ⊕ p|``, ``|¬e ∧ p|``, ``|e ∨ p|``) cheap mask operations.

The dictionary only ever grows.  Removing an attribute from the dictionary
would invalidate every synopsis ever produced with it, so attributes whose
last instance disappears simply keep their (now unused) bit.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class UnknownAttributeError(KeyError):
    """Raised when an attribute name or id is not in the dictionary."""


class AttributeDictionary:
    """Bidirectional mapping between attribute names and bit positions.

    >>> d = AttributeDictionary()
    >>> d.intern("name")
    0
    >>> d.intern("weight")
    1
    >>> d.intern("name")          # interning is idempotent
    0
    >>> d.encode(["weight"])      # bitmask with bit 1 set
    2
    >>> d.decode(3)
    ('name', 'weight')
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []
        for name in names:
            self.intern(name)

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttributeDictionary({len(self)} attributes)"

    def intern(self, name: str) -> int:
        """Return the bit position of *name*, registering it if new."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"attribute name must be a non-empty string, got {name!r}")
        attr_id = self._name_to_id.get(name)
        if attr_id is None:
            attr_id = len(self._id_to_name)
            self._name_to_id[name] = attr_id
            self._id_to_name.append(name)
        return attr_id

    def id_of(self, name: str) -> int:
        """Return the bit position of a known attribute name."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise UnknownAttributeError(name) from None

    def name_of(self, attr_id: int) -> str:
        """Return the attribute name registered at bit position *attr_id*."""
        if 0 <= attr_id < len(self._id_to_name):
            return self._id_to_name[attr_id]
        raise UnknownAttributeError(attr_id)

    def encode(self, names: Iterable[str]) -> int:
        """Encode attribute *names* into a bitmask, interning new names."""
        mask = 0
        for name in names:
            mask |= 1 << self.intern(name)
        return mask

    def encode_known(self, names: Iterable[str]) -> int:
        """Encode *names* into a bitmask without interning.

        Unknown names are ignored; this is the right behaviour for query
        synopses, where an attribute that no entity has ever instantiated
        cannot match anything anyway.
        """
        mask = 0
        for name in names:
            attr_id = self._name_to_id.get(name)
            if attr_id is not None:
                mask |= 1 << attr_id
        return mask

    def decode(self, mask: int) -> tuple[str, ...]:
        """Decode a bitmask back into the sorted tuple of attribute names."""
        if mask < 0:
            raise ValueError("synopsis masks are non-negative integers")
        names = []
        attr_id = 0
        while mask:
            if mask & 1:
                names.append(self.name_of(attr_id))
            mask >>= 1
            attr_id += 1
        return tuple(names)

    def universe_mask(self) -> int:
        """Bitmask with every registered attribute set (the universal schema)."""
        return (1 << len(self._id_to_name)) - 1

    def names(self) -> tuple[str, ...]:
        """All registered attribute names in bit order."""
        return tuple(self._id_to_name)
