"""The partition catalog — the system catalog of Algorithm 1.

The catalog is what the paper's prototype kept in its single "catalog
table": every partition's synopsis plus the bookkeeping needed to run the
algorithm (which partition an entity lives in, the split starters, sizes).
Algorithm 1's insert scans this catalog to rate each partition against the
incoming entity.

The catalog optionally carries a :class:`~repro.catalog.synopsis_index.SynopsisIndex`
that restricts the scan to overlapping partitions (the paper's future-work
extension); without it, :meth:`candidates` yields every partition, which is
the literal Algorithm 1 behaviour.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.catalog.partition import Partition
from repro.catalog.synopsis_index import SynopsisIndex


class EntityNotFoundError(KeyError):
    """Raised when an entity id is not present in any partition."""


class PartitionNotFoundError(KeyError):
    """Raised when a partition id is not present in the catalog."""


class PartitionCatalog:
    """All partitions of one universal table, addressable by id."""

    def __init__(self, index: Optional[SynopsisIndex] = None) -> None:
        self._partitions: dict[int, Partition] = {}
        self._entity_to_pid: dict[int, int] = {}
        self._next_pid = 0
        self.index = index
        #: active undo-log transaction (see :mod:`repro.txn.transaction`)
        self._txn = None
        # partition content versions (see the `versions` section below)
        self._versions: dict[int, int] = {}
        self._version_clock = 0

    # ------------------------------------------------------------------
    # versions
    # ------------------------------------------------------------------
    # Every content mutation of a partition — member added, removed, or
    # updated, partition created or re-created — stamps it with a fresh
    # value of a catalog-global monotonic clock.  The query result cache
    # (:mod:`repro.query.cache`) keys entries by ``(query, pid, version)``;
    # because the clock never goes backwards, a partition whose content
    # may differ from what a cached entry saw can never present the same
    # version again.  This holds through undo-log rollbacks (the inverse
    # operations run through these same mutators and keep bumping) and
    # through pid reuse after a rolled-back create (the re-created pid is
    # stamped from the still-advanced clock).  Split-starter maintenance
    # does not bump: starters never influence query results.

    def _bump_version(self, pid: int) -> None:
        self._version_clock += 1
        self._versions[pid] = self._version_clock

    def version_of(self, pid: int) -> int:
        """Current content version of one partition."""
        try:
            return self._versions[pid]
        except KeyError:
            raise PartitionNotFoundError(pid) from None

    @property
    def version_clock(self) -> int:
        """The catalog-global mutation clock (monotonic, never reused)."""
        return self._version_clock

    def adopt_version_clock(self, other_clock: int) -> None:
        """Make this catalog's versions succeed another catalog's.

        Used when a rebuilt catalog replaces a live one (offline
        reorganization, :func:`repro.txn.ops.atomic_reorganize`): the
        rebuilt catalog restarts pids from zero, so without this step a
        ``(pid, version)`` pair could collide with an entry cached
        against the replaced catalog.  Advancing the clock past the old
        one and re-stamping every partition makes all prior cache
        entries unservable.
        """
        self._version_clock = max(self._version_clock, other_clock)
        for pid in self._partitions:
            self._bump_version(pid)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin_transaction(self):
        """Start an undo-log transaction over this catalog.

        Every mutation until ``commit()``/``rollback()`` records its
        inverse; rollback restores the exact pre-transaction catalog.
        Transactions do not nest.
        """
        from repro.txn.transaction import CatalogTransaction, TransactionError

        if self._txn is not None:
            raise TransactionError("a catalog transaction is already active")
        txn = CatalogTransaction(self)
        self._txn = txn
        return txn

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self._partitions.values())

    def __contains__(self, pid: int) -> bool:
        return pid in self._partitions

    def partition_ids(self) -> tuple[int, ...]:
        return tuple(self._partitions)

    def get(self, pid: int) -> Partition:
        try:
            return self._partitions[pid]
        except KeyError:
            raise PartitionNotFoundError(pid) from None

    def create_partition(self) -> Partition:
        previous_next_pid = self._next_pid
        partition = Partition(self._next_pid)
        self._next_pid += 1
        self._partitions[partition.pid] = partition
        self._bump_version(partition.pid)
        if self.index is not None:
            self.index.register(partition.pid, partition.mask)
        if self._txn is not None:
            self._txn.note_create(partition.pid, previous_next_pid)
        return partition

    def create_partition_with_id(self, pid: int) -> Partition:
        """Recreate a partition under a known id (snapshot restore only).

        Keeps ``_next_pid`` ahead of every restored id so future
        partitions never collide; the caller is responsible for also
        restoring ``_next_pid`` when the pre-crash catalog had dropped
        higher ids.
        """
        if pid in self._partitions:
            raise ValueError(f"partition {pid} already exists")
        previous_next_pid = self._next_pid
        partition = Partition(pid)
        self._partitions[pid] = partition
        self._next_pid = max(self._next_pid, pid + 1)
        self._bump_version(pid)
        if self.index is not None:
            self.index.register(partition.pid, partition.mask)
        if self._txn is not None:
            self._txn.note_create(pid, previous_next_pid)
        return partition

    @property
    def next_partition_id(self) -> int:
        """The id the next created partition will receive."""
        return self._next_pid

    @next_partition_id.setter
    def next_partition_id(self, value: int) -> None:
        if value < self._next_pid:
            raise ValueError(
                f"next partition id {value} would reuse ids below {self._next_pid}"
            )
        self._next_pid = value

    def drop_partition(self, pid: int) -> None:
        partition = self.get(pid)
        if not partition.is_empty():
            raise ValueError(
                f"cannot drop partition {pid}: still holds {len(partition)} entities"
            )
        if self._txn is not None:
            self._txn.note_drop(pid)
        del self._partitions[pid]
        del self._versions[pid]
        if self.index is not None:
            self.index.unregister(pid, partition.mask)

    # ------------------------------------------------------------------
    # entities
    # ------------------------------------------------------------------
    @property
    def entity_count(self) -> int:
        return len(self._entity_to_pid)

    def partition_of(self, eid: int) -> int:
        try:
            return self._entity_to_pid[eid]
        except KeyError:
            raise EntityNotFoundError(eid) from None

    def has_entity(self, eid: int) -> bool:
        return eid in self._entity_to_pid

    def add_entity(
        self,
        pid: int,
        eid: int,
        mask: int,
        size: float,
        observe_starters: bool = True,
    ) -> None:
        """Place an entity in a partition and maintain index + location map."""
        if eid in self._entity_to_pid:
            raise ValueError(
                f"entity {eid} already placed in partition {self._entity_to_pid[eid]}"
            )
        partition = self.get(pid)
        if self._txn is not None:
            self._txn.note_add(pid, eid)
        added_bits = partition.add(eid, mask, size, observe_starters=observe_starters)
        self._entity_to_pid[eid] = pid
        self._bump_version(pid)
        if self.index is not None:
            self.index.on_bits_added(pid, added_bits)

    def remove_entity(
        self, eid: int, repair_starters: bool = True
    ) -> tuple[int, int, float]:
        """Remove an entity; return ``(pid, mask, size)`` it had."""
        pid = self.partition_of(eid)
        partition = self._partitions[pid]
        if self._txn is not None:
            member_mask, member_size = partition.member(eid)
            self._txn.note_remove(pid, eid, member_mask, member_size)
        mask, size, removed_bits = partition.remove(
            eid, repair_starters=repair_starters
        )
        del self._entity_to_pid[eid]
        self._bump_version(pid)
        if self.index is not None and removed_bits:
            self.index.on_bits_removed(pid, removed_bits, partition.mask)
        return pid, mask, size

    def observe_starters(self, pid: int, eid: int, mask: int) -> None:
        """Run starter maintenance for *eid* against partition *pid*.

        The partitioner calls this (Algorithm 1, lines 15–24) instead of
        touching ``partition.starters`` directly, so an active undo-log
        transaction can capture the pair's before-image first.
        """
        partition = self.get(pid)
        if self._txn is not None:
            self._txn.note_touch(pid)
        partition.starters.observe(eid, mask)

    def update_entity(self, eid: int, mask: int, size: float) -> int:
        """Update an entity in place; return its (unchanged) partition id."""
        pid = self.partition_of(eid)
        partition = self._partitions[pid]
        if self._txn is not None:
            old_mask, old_size = partition.member(eid)
            self._txn.note_update(pid, eid, old_mask, old_size)
        added_bits, removed_bits = partition.update_member(eid, mask, size)
        self._bump_version(pid)
        if self.index is not None:
            if added_bits:
                self.index.on_bits_added(pid, added_bits)
            if removed_bits:
                self.index.on_bits_removed(pid, removed_bits, partition.mask)
        return pid

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def candidates(self, entity_mask: int, weight: float) -> Iterator[Partition]:
        """Partitions to rate for an insert (Algorithm 1, lines 4–7).

        Without an index this is every partition.  With the index, the scan
        is restricted to partitions that can possibly rate non-negatively
        (see :mod:`repro.catalog.synopsis_index` for the argument); at
        ``weight == 1.0`` the restriction would be unsound, so the full
        catalog is returned.
        """
        if self.index is None or weight >= 1.0:
            return iter(self._partitions.values())
        pids = self.index.candidate_pids(entity_mask)
        return (self._partitions[pid] for pid in pids)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> list[str]:
        """Return a list of invariant violations (empty = healthy).

        Checked invariants:

        * every entity is located in exactly the partition the location map
          says, and nowhere else;
        * partition synopses equal the union of their members' masks;
        * partition sizes equal the sum of their members' sizes;
        * split starters are members of their partition;
        * no empty partitions linger in the catalog;
        * the synopsis index (if any) matches the partition synopses.
        """
        problems: list[str] = []
        seen_entities: set[int] = set()
        for partition in self._partitions.values():
            union_mask = 0
            total = 0.0
            for eid, mask, size in partition.members():
                union_mask |= mask
                total += size
                if self._entity_to_pid.get(eid) != partition.pid:
                    problems.append(
                        f"entity {eid} in partition {partition.pid} but location "
                        f"map says {self._entity_to_pid.get(eid)}"
                    )
                if eid in seen_entities:
                    problems.append(f"entity {eid} appears in multiple partitions")
                seen_entities.add(eid)
            if union_mask != partition.mask:
                problems.append(
                    f"partition {partition.pid} synopsis {partition.mask:#x} != "
                    f"member union {union_mask:#x}"
                )
            if abs(total - partition.total_size) > 1e-9:
                problems.append(
                    f"partition {partition.pid} size {partition.total_size} != "
                    f"member sum {total}"
                )
            starters = partition.starters
            for starter_eid in (starters.eid_a, starters.eid_b):
                if starter_eid is not None and starter_eid not in partition:
                    problems.append(
                        f"starter {starter_eid} not a member of partition "
                        f"{partition.pid}"
                    )
            if partition.is_empty():
                problems.append(f"empty partition {partition.pid} not dropped")
        missing = set(self._entity_to_pid) - seen_entities
        if missing:
            problems.append(f"location map references missing entities {missing}")
        if set(self._versions) != set(self._partitions):
            problems.append(
                f"version map keys {sorted(self._versions)} != partition ids "
                f"{sorted(self._partitions)}"
            )
        over_clock = [
            pid for pid, version in self._versions.items()
            if version > self._version_clock
        ]
        if over_clock:
            problems.append(
                f"partitions {over_clock} stamped past the version clock "
                f"{self._version_clock}"
            )
        if self.index is not None:
            from repro.catalog.synopsis_index import verify_index_against_catalog

            problems.extend(
                verify_index_against_catalog(self.index, self._partitions.values())
            )
        return problems
