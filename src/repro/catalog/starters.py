"""Split starters — the seed pair of a partition split (Section III).

Every partition carries a pair of *split starters*: two of its entities
whose synopses differ as much as possible, measured as ``DIFF(e₁, e₂) =
|e₁ ⊕ e₂|``.  When the partition must be split, each starter seeds one of
the two new partitions, pulling "its kind" of entities towards it.

The pair is maintained *incrementally*: the first two entities added to a
partition form the initial pair, and every further entity replaces one of
the starters whenever that yields a more differential pair (Algorithm 1,
lines 15–24).  The heuristic does not guarantee the globally most
differential pair but avoids the cubic cost of finding it; the exact
(quadratic per partition) variant is provided for the ablation benchmark.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional


class SplitStarters:
    """The incrementally maintained pair of most-differential entities.

    Stores both the entity ids and their synopsis masks so the DIFF
    computations of the maintenance rule need no lookups.
    """

    __slots__ = ("eid_a", "mask_a", "eid_b", "mask_b")

    def __init__(self) -> None:
        self.eid_a: Optional[int] = None
        self.mask_a: int = 0
        self.eid_b: Optional[int] = None
        self.mask_b: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplitStarters(a={self.eid_a}, b={self.eid_b})"

    @property
    def complete(self) -> bool:
        """True once both starters are set (partition saw ≥ 2 entities)."""
        return self.eid_a is not None and self.eid_b is not None

    def is_starter(self, eid: int) -> bool:
        return eid == self.eid_a or eid == self.eid_b

    def current_diff(self) -> int:
        """``DIFF(e_A, e_B)`` of the current pair (0 while incomplete)."""
        if not self.complete:
            return 0
        return (self.mask_a ^ self.mask_b).bit_count()

    def observe(self, eid: int, mask: int) -> None:
        """Consider *eid* as a starter (Algorithm 1, lines 12 and 15–24).

        Called for every entity rated into the partition — including, per
        Algorithm 1's ordering, the entity that is about to trigger a
        split, which may therefore itself become a starter and seed one of
        the split's new partitions.
        """
        if self.eid_a is None:
            self.eid_a, self.mask_a = eid, mask
            return
        if eid == self.eid_a:
            return
        if self.eid_b is None:
            self.eid_b, self.mask_b = eid, mask
            return
        if eid == self.eid_b:
            return
        diff_e_a = (mask ^ self.mask_a).bit_count()
        diff_e_b = (mask ^ self.mask_b).bit_count()
        diff_a_b = (self.mask_a ^ self.mask_b).bit_count()
        best = max(diff_e_a, diff_e_b, diff_a_b)
        if diff_e_a == best:
            # the (e, A) pair is the most differential: e replaces B
            self.eid_b, self.mask_b = eid, mask
        elif diff_e_b == best:
            # the (e, B) pair is the most differential: e replaces A
            self.eid_a, self.mask_a = eid, mask
        # otherwise the current pair stays

    def refresh_mask(self, eid: int, mask: int) -> None:
        """Update the stored mask after an in-place entity update."""
        if eid == self.eid_a:
            self.mask_a = mask
        elif eid == self.eid_b:
            self.mask_b = mask

    def clear(self) -> None:
        self.eid_a = None
        self.mask_a = 0
        self.eid_b = None
        self.mask_b = 0

    def replay(self, members: Iterable[tuple[int, int]]) -> None:
        """Rebuild the pair by replaying the incremental rule over *members*.

        Used to repair the pair after a starter entity is deleted — linear
        in the partition size, preserving the online character of the
        algorithm.  *members* yields ``(entity_id, mask)`` pairs.
        """
        self.clear()
        for eid, mask in members:
            self.observe(eid, mask)

    def rebuild_exact(self, members: Iterable[tuple[int, int]]) -> None:
        """Set the pair to the globally most differential one (ablation).

        Quadratic in the partition size — this is the cost Algorithm 1's
        incremental heuristic avoids; exposed for ``bench_ablations``.
        """
        member_list = list(members)
        self.clear()
        if not member_list:
            return
        if len(member_list) == 1:
            self.eid_a, self.mask_a = member_list[0]
            return
        best_pair = None
        best_diff = -1
        for (eid_1, mask_1), (eid_2, mask_2) in combinations(member_list, 2):
            diff = (mask_1 ^ mask_2).bit_count()
            if diff > best_diff:
                best_diff = diff
                best_pair = ((eid_1, mask_1), (eid_2, mask_2))
        assert best_pair is not None
        (self.eid_a, self.mask_a), (self.eid_b, self.mask_b) = best_pair
