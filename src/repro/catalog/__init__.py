"""System catalog: attribute dictionary, partitions, and synopsis index."""

from repro.catalog.catalog import (
    EntityNotFoundError,
    PartitionCatalog,
    PartitionNotFoundError,
)
from repro.catalog.dictionary import AttributeDictionary, UnknownAttributeError
from repro.catalog.partition import Partition, iter_attribute_ids
from repro.catalog.synopsis_index import SynopsisIndex

__all__ = [
    "AttributeDictionary",
    "EntityNotFoundError",
    "Partition",
    "PartitionCatalog",
    "PartitionNotFoundError",
    "SynopsisIndex",
    "UnknownAttributeError",
    "iter_attribute_ids",
]
