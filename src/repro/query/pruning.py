"""Partition pruning — the whole point of the partitioning (Section II).

"Based on the synopses, queries can easily prune partitions that contain
only entities irrelevant to the query, i.e., partitions for which
``|p ∧ q| = 0`` holds."

Pruning is *sound* by construction: a partition synopsis is the union of
its members' attribute sets, so ``|p ∧ q| = 0`` implies ``|e ∧ q| = 0``
for every member ``e``.  It is not *complete*: a surviving partition may
still contain individual irrelevant entities — that residue is exactly
what Definition 1's efficiency measures.

Two resolution strategies produce the same surviving set:

* :func:`split_by_pruning` — test every catalog entry (the paper's
  metadata scan);
* :func:`candidate_pids_from_index` — resolve the survivors from the
  inverted :class:`~repro.catalog.synopsis_index.SynopsisIndex` posting
  lists without touching non-overlapping catalog entries at all (the
  "specialized data structures for many synopses" extension).  ``any``
  mode unions the referenced attributes' posting lists; ``all`` mode
  intersects them, smallest posting list first.

The empty-synopsis query — every referenced attribute unknown to the
dictionary, so ``q = 0`` — deserves a note because the index keeps a
dedicated posting list for *empty-synopsis partitions* that must NOT be
consulted here: ``SynopsisIndex.candidate_pids(0)`` answers the insert
question ("which partitions could an attribute-less *entity* join?"),
while a query referencing only unknown attributes matches no entity at
all (``IS NOT NULL`` fails on a column nobody instantiates).  Both
strategies therefore prune everything: ``is_prunable`` is true for every
partition and :func:`candidate_pids_from_index` returns the empty set —
equivalence is pinned by regression tests in
``tests/test_query_layer.py``.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.query.query import AttributeQuery

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.dictionary import AttributeDictionary
    from repro.catalog.partition import Partition
    from repro.catalog.synopsis_index import SynopsisIndex


def is_prunable(
    partition_mask: int, query: AttributeQuery, dictionary: "AttributeDictionary"
) -> bool:
    """Can the partition be skipped without looking at its entities?

    * ``any`` mode: prunable iff ``|p ∧ q| = 0`` (Definition 1's test).
    * ``all`` mode: prunable iff some referenced attribute is absent from
      the partition synopsis — a qualifying entity instantiates all of
      them, so its partition's synopsis must contain all of them.
    """
    query_mask = query.synopsis_mask(dictionary)
    if query.mode == "any":
        # the empty-synopsis query (query_mask == 0) prunes everything:
        # no entity instantiates an unknown attribute (see module docs)
        return (partition_mask & query_mask) == 0
    if len(query.attributes) != query_mask.bit_count():
        return True  # references an attribute no entity ever had
    return (partition_mask & query_mask) != query_mask


def candidate_pids_from_index(
    index: "SynopsisIndex", query: AttributeQuery, dictionary: "AttributeDictionary"
) -> set[int]:
    """Surviving partition ids resolved from inverted posting lists.

    Exactly the complement of :func:`is_prunable` over the indexed
    catalog: ``any`` mode unions the posting lists of the query's known
    attributes, ``all`` mode intersects them (smallest first, bailing
    out as soon as the intersection empties).  A query whose attributes
    are all unknown to the dictionary returns the empty set in either
    mode — see the module docstring for why the index's empty-synopsis
    posting list is deliberately not consulted.
    """
    query_mask = query.synopsis_mask(dictionary)
    if query_mask == 0:
        return set()
    from repro.catalog.partition import iter_attribute_ids

    if query.mode == "any":
        survivors: set[int] = set()
        for attr_id in iter_attribute_ids(query_mask):
            survivors.update(index.partitions_with_attribute(attr_id))
        return survivors
    if len(query.attributes) != query_mask.bit_count():
        return set()  # `all` over an unknown attribute matches nothing
    postings = sorted(
        (index.partitions_with_attribute(attr_id)
         for attr_id in iter_attribute_ids(query_mask)),
        key=len,
    )
    survivors = set(postings[0])
    for posting in postings[1:]:
        survivors &= posting
        if not survivors:
            break
    return survivors


def split_by_pruning(
    partitions: Iterable["Partition"],
    query: AttributeQuery,
    dictionary: "AttributeDictionary",
) -> tuple[list["Partition"], list["Partition"]]:
    """Partition the catalog into ``(surviving, pruned)`` for a query."""
    surviving: list["Partition"] = []
    pruned: list["Partition"] = []
    for partition in partitions:
        if is_prunable(partition.mask, query, dictionary):
            pruned.append(partition)
        else:
            surviving.append(partition)
    return surviving, pruned
