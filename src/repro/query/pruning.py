"""Partition pruning — the whole point of the partitioning (Section II).

"Based on the synopses, queries can easily prune partitions that contain
only entities irrelevant to the query, i.e., partitions for which
``|p ∧ q| = 0`` holds."

Pruning is *sound* by construction: a partition synopsis is the union of
its members' attribute sets, so ``|p ∧ q| = 0`` implies ``|e ∧ q| = 0``
for every member ``e``.  It is not *complete*: a surviving partition may
still contain individual irrelevant entities — that residue is exactly
what Definition 1's efficiency measures.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.query.query import AttributeQuery

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.dictionary import AttributeDictionary
    from repro.catalog.partition import Partition


def is_prunable(
    partition_mask: int, query: AttributeQuery, dictionary: "AttributeDictionary"
) -> bool:
    """Can the partition be skipped without looking at its entities?

    * ``any`` mode: prunable iff ``|p ∧ q| = 0`` (Definition 1's test).
    * ``all`` mode: prunable iff some referenced attribute is absent from
      the partition synopsis — a qualifying entity instantiates all of
      them, so its partition's synopsis must contain all of them.
    """
    query_mask = query.synopsis_mask(dictionary)
    if query.mode == "any":
        return (partition_mask & query_mask) == 0
    if len(query.attributes) != query_mask.bit_count():
        return True  # references an attribute no entity ever had
    return (partition_mask & query_mask) != query_mask


def split_by_pruning(
    partitions: Iterable["Partition"],
    query: AttributeQuery,
    dictionary: "AttributeDictionary",
) -> tuple[list["Partition"], list["Partition"]]:
    """Partition the catalog into ``(surviving, pruned)`` for a query."""
    surviving: list["Partition"] = []
    pruned: list["Partition"] = []
    for partition in partitions:
        if is_prunable(partition.mask, query, dictionary):
            pruned.append(partition)
        else:
            surviving.append(partition)
    return surviving, pruned
