"""MVCC-style immutable table snapshots pinned to the version clock.

The serving layer's writer-preferring lock made every query wait for
the batcher (and vice versa); this module removes the read side of that
barrier.  A :class:`TableSnapshot` is an immutable view of one
:class:`~repro.table.partitioned.CinderellaTable` at one value of the
catalog's monotonic version clock (the same clock the query result
cache keys by).  Writers publish a fresh snapshot after every committed
batch; readers grab the latest snapshot and serve from it without any
locking at all — a query can never block on a writer, and never
observes a half-applied batch.

Three layers keep publication cheap enough to run once per group
commit:

* ``_PartitionState`` holds one partition's raw records in heap-scan
  order, decoded lazily on first read.  States are *shared across
  snapshots*: when a publish finds a partition whose new contents are a
  strict append of the old (the common case — inserts into an existing
  partition), it extends the state in place and every older snapshot
  keeps addressing its shorter prefix.  Any other change (delete,
  in-place update, split/merge move) builds a fresh state object, so
  snapshots taken before the change keep the old one alive untouched.
* per-state **match caches** remember which rows a query matched up to
  a prefix length, so repeated queries over a growing partition pay
  only for the appended suffix.
* per-snapshot **response caches** remember the fully serialized wire
  fragment of a query's answer; within one snapshot's lifetime a
  repeated query costs a dict lookup and a splice.

Retention is bounded: a :class:`SnapshotManager` keeps the most recent
``retain`` snapshots and garbage-collects older ones — but never the
latest and never one a caller has pinned.  Pins are how longer-lived
readers (tests, cursors, time travel) keep a version alive across
publishes; the isolation battery's GC invariant pins exactly this.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING

from repro.obs import runtime as obs
from repro.query.executor import ExecutionResult, ExecutionStats
from repro.query.query import AttributeQuery
from repro.storage.record import deserialize_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.dictionary import AttributeDictionary
    from repro.table.partitioned import CinderellaTable

#: query identity — the same pair the result cache keys by
QuerySig = tuple[tuple[str, ...], str]

#: distinct query shapes remembered per partition state / per snapshot;
#: overflow clears the cache (simple and safe — it only costs a rescan)
_MATCH_CACHE_SIGS = 128
_RESPONSE_CACHE_SIGS = 256


def query_sig(query: AttributeQuery) -> QuerySig:
    return (query.attributes, query.mode)


class _PartitionState:
    """One partition's records, decoded lazily, shared across snapshots.

    ``raw`` is the heap-scan order ``(rid, record_bytes)`` list; it may
    be *extended* in place by a later publish (append-only growth), so
    every reader must address it through a snapshot's fixed ``count``
    prefix and never through ``len(raw)``.
    """

    __slots__ = ("pid", "version", "raw", "eids", "attrs",
                 "match_cache", "chunk_cache", "dictionary",
                 "heap_id", "seen_clock")

    def __init__(
        self, pid: int, version: int, raw: list, dictionary: "AttributeDictionary"
    ) -> None:
        self.pid = pid
        #: version of the newest publish this state is current for
        self.version = version
        self.raw = raw
        #: which physical heap (``HeapFile.file_id``) and how much of its
        #: mutation history this state has observed; publish uses the
        #: pair to detect append-only growth in O(1) via the heap's
        #: structural clock instead of rescanning and prefix-comparing
        self.heap_id = -1
        self.seen_clock = -1
        self.eids: list[int] = []
        self.attrs: list[dict[str, Any]] = []
        #: sig -> (prefix length considered, matched projected rows)
        self.match_cache: dict[QuerySig, tuple[int, list[dict[str, Any]]]] = {}
        #: sig -> (prefix length, row count, serialized row chunk) — the
        #: matched rows pre-rendered as comma-joined JSON objects, so a
        #: fresh snapshot's first serve of a known shape only serializes
        #: rows appended since the previous snapshot
        self.chunk_cache: dict[QuerySig, tuple[int, int, str]] = {}
        self.dictionary = dictionary

    def ensure_decoded(self, n: int) -> None:
        """Decode records until the first *n* are available."""
        attrs = self.attrs
        eids = self.eids
        raw = self.raw
        dictionary = self.dictionary
        while len(attrs) < n:
            eid, attributes = deserialize_record(raw[len(attrs)][1], dictionary)
            eids.append(eid)
            attrs.append(attributes)

    def matched_rows(
        self, query: AttributeQuery, sig: QuerySig, n: int
    ) -> list[dict[str, Any]]:
        """Projected rows matching *query* among the first *n* records.

        The returned list is shared and must not be mutated by callers.
        A cached prefix shorter than *n* is extended monotonically (the
        append-only fast path); a request for a prefix *shorter* than
        the cached one — an older pinned snapshot — recomputes without
        storing, so the cache always tracks the newest snapshot.
        """
        entry = self.match_cache.get(sig)
        if entry is not None:
            cached_n, cached_rows = entry
            if cached_n == n:
                return cached_rows
            if cached_n < n:
                self.ensure_decoded(n)
                matches = query.matches
                project = query.project
                rows = cached_rows + [
                    project(a) for a in self.attrs[cached_n:n] if matches(a)
                ]
                self.match_cache[sig] = (n, rows)
                return rows
            return [
                query.project(a) for a in self.attrs[:n] if query.matches(a)
            ]
        self.ensure_decoded(n)
        rows = [query.project(a) for a in self.attrs[:n] if query.matches(a)]
        if len(self.match_cache) >= _MATCH_CACHE_SIGS:
            self.match_cache.clear()
        self.match_cache[sig] = (n, rows)
        return rows

    def matched_chunk(
        self, query: AttributeQuery, sig: QuerySig, n: int
    ) -> tuple[str, int]:
        """The matched rows of the first *n* records, serialized.

        Returns ``(chunk, row_count)`` where *chunk* is the rows as
        comma-joined JSON objects (no enclosing brackets).  Like
        :meth:`matched_rows` the cache extends monotonically: growth
        serializes only the appended rows, and an older pinned
        snapshot's shorter prefix recomputes without storing.
        """
        entry = self.chunk_cache.get(sig)
        if entry is not None:
            cached_n, count, chunk = entry
            if cached_n == n:
                return chunk, count
            if cached_n < n:
                rows = self.matched_rows(query, sig, n)
                new = rows[count:]
                if new:
                    tail = ",".join(
                        json.dumps(row, separators=(",", ":")) for row in new
                    )
                    chunk = f"{chunk},{tail}" if chunk else tail
                self.chunk_cache[sig] = (n, len(rows), chunk)
                return chunk, len(rows)
        rows = self.matched_rows(query, sig, n)
        chunk = ",".join(
            json.dumps(row, separators=(",", ":")) for row in rows
        )
        if entry is not None:  # shorter prefix: serve without storing
            return chunk, len(rows)
        if len(self.chunk_cache) >= _MATCH_CACHE_SIGS:
            self.chunk_cache.clear()
        self.chunk_cache[sig] = (n, len(rows), chunk)
        return chunk, len(rows)


class PartitionView:
    """One partition as one snapshot saw it: mask, version, record count."""

    __slots__ = ("pid", "mask", "version", "count", "_state")

    def __init__(
        self, pid: int, mask: int, version: int, count: int,
        state: _PartitionState,
    ) -> None:
        self.pid = pid
        self.mask = mask
        self.version = version
        self.count = count
        self._state = state

    def rows(self, query: AttributeQuery, sig: QuerySig) -> list[dict[str, Any]]:
        return self._state.matched_rows(query, sig, self.count)

    def chunk(self, query: AttributeQuery, sig: QuerySig) -> tuple[str, int]:
        return self._state.matched_chunk(query, sig, self.count)

    def entities(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """``(eid, attributes)`` pairs in heap-scan order.

        The attribute dicts are the shared decoded objects — callers
        must not mutate them.
        """
        state = self._state
        state.ensure_decoded(self.count)
        return zip(state.eids[: self.count], state.attrs[: self.count])


class TableSnapshot:
    """An immutable view of the whole table at one version-clock value."""

    def __init__(
        self,
        snapshot_id: int,
        version_clock: int,
        views: tuple[PartitionView, ...],
        dictionary: "AttributeDictionary",
        created_monotonic: float,
    ) -> None:
        self.snapshot_id = snapshot_id
        self.version_clock = version_clock
        self.views = views  # ascending pid — plan order of the executor
        self.dictionary = dictionary
        self.created_monotonic = created_monotonic
        #: pin count — the manager's GC skips pinned snapshots
        self.pins = 0
        self._by_pid = {view.pid: view for view in views}
        #: sig -> (surviving views, pruned count)
        self._plan_cache: dict[QuerySig, tuple[tuple[PartitionView, ...], int]] = {}
        #: sig -> (wire fragment, row count) for repeat queries
        self._response_cache: dict[QuerySig, tuple[bytes, int]] = {}

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def partition_count(self) -> int:
        return len(self.views)

    @property
    def entity_count(self) -> int:
        return sum(view.count for view in self.views)

    def version_of(self, pid: int) -> int:
        return self._by_pid[pid].version

    def entities(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Every ``(eid, attributes)`` pair (ascending pid, heap order)."""
        for view in self.views:
            yield from view.entities()

    def entity_ids(self) -> list[int]:
        """Stored entity ids in ascending order (resync paging)."""
        return sorted(eid for view in self.views for eid, _ in view.entities())

    # ------------------------------------------------------------------
    # planning (the pruning math of repro.query.pruning over the views)
    # ------------------------------------------------------------------
    def _branches(
        self, query: AttributeQuery, sig: QuerySig
    ) -> tuple[tuple[PartitionView, ...], int]:
        cached = self._plan_cache.get(sig)
        if cached is not None:
            return cached
        with obs.span("query.index_prune", partitions=len(self.views)) as span:
            query_mask = query.synopsis_mask(self.dictionary)
            if query.mode == "any":
                branches = (
                    tuple(v for v in self.views if v.mask & query_mask)
                    if query_mask else ()
                )
            elif query_mask and len(query.attributes) == query_mask.bit_count():
                branches = tuple(
                    v for v in self.views if (v.mask & query_mask) == query_mask
                )
            else:  # `all` over an attribute no entity ever had matches nothing
                branches = ()
            plan = (branches, len(self.views) - len(branches))
            span.set("pruned", plan[1])
        if len(self._plan_cache) >= _RESPONSE_CACHE_SIGS:
            self._plan_cache.clear()
        self._plan_cache[sig] = plan
        return plan

    def surviving_pids(self, query: AttributeQuery) -> tuple[int, ...]:
        """Partition ids the query would scan (the pruning survivors).

        The workload trace feed uses this on the serve path; it shares
        the per-sig plan cache with :meth:`serve_query`, so a repeated
        shape costs one dict lookup.
        """
        branches, _pruned = self._branches(query, (query.attributes, query.mode))
        return tuple(view.pid for view in branches)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve_query(self, query: AttributeQuery) -> tuple[bytes, int, bool]:
        """Answer one query as a pre-serialized wire fragment.

        Returns ``(fragment, row_count, from_cache)``.  The fragment is
        everything of the response line after the request id — the
        server splices ``{"id":N`` in front — so a repeated query costs
        no JSON serialization at all.  The first serve of a query shape
        reports its scan in the stats object; cache hits report
        ``cache_hits`` instead, mirroring the result cache's accounting.
        """
        sig = (query.attributes, query.mode)
        cached = self._response_cache.get(sig)
        if cached is not None:
            return cached[0], cached[1], True
        branches, pruned = self._branches(query, sig)
        parts: list[str] = []
        row_count = 0
        with obs.span("query.snapshot_scan", branches=len(branches)):
            for view in branches:
                chunk, count = view.chunk(query, sig)
                if chunk:
                    parts.append(chunk)
                row_count += count
        rows_json = f"[{','.join(parts)}]"
        total = len(self.views)
        scanned = len(branches)
        first = (
            ',"ok":true,"status":"ok","rows":%s,"row_count":%d,'
            '"stats":{"partitions_total":%d,"partitions_scanned":%d,'
            '"partitions_pruned":%d,"cache_hits":0,"cache_misses":%d}}\n'
            % (rows_json, row_count, total, scanned, pruned, scanned)
        ).encode()
        repeat = (
            ',"ok":true,"status":"ok","rows":%s,"row_count":%d,'
            '"stats":{"partitions_total":%d,"partitions_scanned":0,'
            '"partitions_pruned":%d,"cache_hits":%d,"cache_misses":0}}\n'
            % (rows_json, row_count, total, pruned, scanned)
        ).encode()
        if len(self._response_cache) >= _RESPONSE_CACHE_SIGS:
            self._response_cache.clear()
        self._response_cache[sig] = (repeat, row_count)
        return first, row_count, False

    def execute(
        self,
        query: AttributeQuery,
        eid_filter: Optional[Callable[[int], bool]] = None,
    ) -> ExecutionResult:
        """Execute with the executor's result/accounting types.

        Row order is identical to
        :func:`repro.query.executor.execute_union_all` over the same
        state (views ascend by pid, records in heap-scan order), which
        is what the differential oracle compares against.  Rows are
        fresh dicts — callers may mutate them.
        """
        sig = (query.attributes, query.mode)
        branches, pruned = self._branches(query, sig)
        stats = ExecutionStats(
            partitions_total=len(self.views),
            partitions_scanned=len(branches),
            partitions_pruned=pruned,
            union_branches=len(branches),
        )
        rows: list[dict[str, Any]] = []
        with obs.span(
            "query.snapshot_scan",
            branches=len(branches), filtered=eid_filter is not None,
        ):
            if eid_filter is None:
                for view in branches:
                    rows.extend(dict(row) for row in view.rows(query, sig))
            else:
                matches = query.matches
                project = query.project
                for view in branches:
                    for eid, attributes in view.entities():
                        stats.entities_read += 1
                        if not eid_filter(eid):
                            continue
                        if matches(attributes):
                            rows.append(project(attributes))
        stats.rows_returned = len(rows)
        return ExecutionResult(rows=rows, stats=stats)


class SnapshotManager:
    """Publishes and retains snapshots; thread-safe on both sides.

    The writer side (``publish``) runs on the batcher's worker thread;
    the reader side (``latest``/``pin``/``release``) runs on the event
    loop and in tests.  One plain lock covers the retention structures;
    snapshots themselves are immutable after publication, so readers
    never need it once they hold one.
    """

    def __init__(self, retain: int = 8) -> None:
        if retain < 1:
            raise ValueError(f"retain must be at least 1, got {retain}")
        self.retain = retain
        self._lock = threading.Lock()
        self._states: dict[int, _PartitionState] = {}
        self._retained: "OrderedDict[int, TableSnapshot]" = OrderedDict()
        self._latest: Optional[TableSnapshot] = None
        self._next_snapshot_id = 0
        #: monotonic counters, mirrored into ServerCounters by the server
        self.published = 0
        self.retired = 0
        self.last_publish_monotonic = 0.0

    @property
    def latest(self) -> Optional[TableSnapshot]:
        return self._latest

    def retained_count(self) -> int:
        return len(self._retained)

    def retained_ids(self) -> list[int]:
        return list(self._retained)

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish(self, table: "CinderellaTable") -> TableSnapshot:
        """Snapshot the table's current committed state.

        Must be called from the single writer (batch apply, maintenance,
        sync delta) *after* its transaction committed — the snapshot is
        what readers will see, so publishing mid-mutation would leak a
        torn state.
        """
        with self._lock:
            return self._publish_locked(table)

    def _publish_locked(self, table: "CinderellaTable") -> TableSnapshot:
        catalog = table.catalog
        dictionary = table.dictionary
        states = self._states
        views: list[PartitionView] = []
        live_pids = set()
        for partition in catalog:
            pid = partition.pid
            live_pids.add(pid)
            version = catalog.version_of(pid)
            state = states.get(pid)
            if state is None or state.version != version:
                heap = table.heap_of(pid)
                if (
                    state is not None
                    and state.heap_id == heap.file_id
                    and heap.structural_clock <= state.seen_clock
                ):
                    # append-only growth, detected in O(1) from the
                    # heap's clocks: extend in place with just the new
                    # tail records; older snapshots keep addressing
                    # their shorter prefix
                    if heap.mutation_clock != state.seen_clock:
                        tail = state.raw[-1][0] if state.raw else None
                        state.raw.extend(heap.scan_suffix(tail))
                        state.seen_clock = heap.mutation_clock
                    state.version = version
                else:
                    # anything else (delete, in-place update, move):
                    # a fresh state — old snapshots keep the old object
                    state = states[pid] = _PartitionState(
                        pid, version, list(heap.scan()), dictionary
                    )
                    state.heap_id = heap.file_id
                    state.seen_clock = heap.mutation_clock
            views.append(
                PartitionView(pid, partition.mask, version, len(state.raw), state)
            )
        for pid in list(states):
            if pid not in live_pids:
                del states[pid]
        views.sort(key=lambda view: view.pid)
        snapshot = TableSnapshot(
            self._next_snapshot_id,
            catalog.version_clock,
            tuple(views),
            dictionary,
            time.monotonic(),
        )
        self._next_snapshot_id += 1
        self._retained[snapshot.snapshot_id] = snapshot
        self._latest = snapshot
        self.published += 1
        self.last_publish_monotonic = snapshot.created_monotonic
        self._gc_locked()
        return snapshot

    # ------------------------------------------------------------------
    # pinning and retention
    # ------------------------------------------------------------------
    def pin_latest(self) -> TableSnapshot:
        with self._lock:
            snapshot = self._latest
            if snapshot is None:
                raise RuntimeError("no snapshot published yet")
            snapshot.pins += 1
            return snapshot

    def pin(self, snapshot: TableSnapshot) -> TableSnapshot:
        with self._lock:
            snapshot.pins += 1
            return snapshot

    def release(self, snapshot: TableSnapshot) -> None:
        with self._lock:
            if snapshot.pins <= 0:
                raise RuntimeError(
                    f"snapshot {snapshot.snapshot_id} released more than pinned"
                )
            snapshot.pins -= 1
            self._gc_locked()

    def _gc_locked(self) -> None:
        """Drop the oldest unpinned non-latest snapshots beyond ``retain``.

        The invariants the isolation battery pins: the latest snapshot
        and every pinned snapshot are never collected, no matter how far
        past the retention bound they push the retained set.
        """
        while len(self._retained) > self.retain:
            victim = None
            for snapshot in self._retained.values():
                if snapshot.pins == 0 and snapshot is not self._latest:
                    victim = snapshot
                    break
            if victim is None:
                return  # everything old is pinned: retention grows, GC waits
            del self._retained[victim.snapshot_id]
            self.retired += 1
