"""Partition-granular query result cache with exact version invalidation.

Pruning (Definition 1) decides *which* partitions a query must touch;
this cache removes the re-scan of partitions that have not changed since
the same query last touched them.  Entries are keyed by ``(query,
partition id)`` and validated against the partition's *content version*
— the catalog stamps every partition with a fresh value of a global
monotonic mutation clock on every member add/remove/update and on
(re-)creation (see ``PartitionCatalog._bump_version``).  A hit is served
only when the stored version equals the partition's current version, so
a cached result can never survive any mutation of its partition:
inserts, updates, deletes, splits and merges all bump through the
catalog mutators, undo-log rollback bumps through the same mutators it
replays, and an offline reorganization that swaps in a rebuilt catalog
re-stamps every partition past the replaced catalog's clock
(:meth:`~repro.catalog.catalog.PartitionCatalog.adopt_version_clock`).

The key is the full query identity (attribute tuple + mode), not just
the query's synopsis mask: two queries with the same mask can differ in
projection (an attribute unknown to the dictionary contributes no mask
bit but does contribute a ``None`` output column).

Capacity is bounded with LRU eviction; all cache traffic is counted in
a :class:`~repro.metrics.telemetry.QueryPathCounters` when one is
attached.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, TYPE_CHECKING

from repro.query.query import AttributeQuery

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.telemetry import QueryPathCounters

#: (query identity, partition id)
CacheKey = tuple[tuple[str, ...], str, int]


def _key(query: AttributeQuery, pid: int) -> CacheKey:
    return (query.attributes, query.mode, pid)


class QueryResultCache:
    """LRU cache of per-partition query results, version-validated.

    >>> from repro.query.query import AttributeQuery
    >>> cache = QueryResultCache(max_entries=2)
    >>> q = AttributeQuery(("a",))
    >>> cache.store(q, pid=0, version=1, rows=[{"a": 1}])
    >>> cache.lookup(q, pid=0, version=1)
    [{'a': 1}]
    >>> cache.lookup(q, pid=0, version=2) is None  # partition mutated
    True
    """

    def __init__(
        self,
        max_entries: int = 4096,
        counters: Optional["QueryPathCounters"] = None,
        thread_safe: bool = False,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.counters = counters
        # key -> (version, rows); OrderedDict gives LRU order
        self._entries: OrderedDict[CacheKey, tuple[int, list[dict[str, Any]]]] = (
            OrderedDict()
        )
        # the serving layer runs query scans on concurrent worker
        # threads, and a lookup mutates the LRU order (and drops stale
        # entries) — opt into a lock there; single-threaded callers pay
        # nothing (the default keeps the fast path lock-free)
        self._lock = threading.Lock() if thread_safe else None

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, query: AttributeQuery, pid: int, version: int
    ) -> Optional[list[dict[str, Any]]]:
        """The cached rows for ``(query, pid)`` at exactly *version*.

        Returns ``None`` on a miss.  An entry stored under an *older*
        version than the one requested is dropped on sight (it can
        never validate again — the clock is monotonic) and counted as a
        stale drop.  An entry stored under a *newer* version misses
        without dropping: MVCC snapshot readers ask for historical
        versions, and an entry that is current for the live table must
        survive a pinned old snapshot passing through.  Served rows are
        copies: callers may mutate them freely.
        """
        if self._lock is None:
            return self._lookup(query, pid, version)
        with self._lock:
            return self._lookup(query, pid, version)

    def _lookup(
        self, query: AttributeQuery, pid: int, version: int
    ) -> Optional[list[dict[str, Any]]]:
        key = _key(query, pid)
        entry = self._entries.get(key)
        if entry is None:
            self._count("cache_misses")
            return None
        stored_version, rows = entry
        if stored_version != version:
            if stored_version < version:
                del self._entries[key]
                self._count("cache_stale_drops")
            self._count("cache_misses")
            return None
        self._entries.move_to_end(key)
        self._count("cache_hits")
        return [dict(row) for row in rows]

    def store(
        self,
        query: AttributeQuery,
        pid: int,
        version: int,
        rows: list[dict[str, Any]],
    ) -> None:
        """Remember the rows one partition contributed to one query."""
        if self._lock is None:
            return self._store(query, pid, version, rows)
        with self._lock:
            return self._store(query, pid, version, rows)

    def _store(
        self,
        query: AttributeQuery,
        pid: int,
        version: int,
        rows: list[dict[str, Any]],
    ) -> None:
        key = _key(query, pid)
        self._entries[key] = (version, [dict(row) for row in rows])
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._count("cache_evictions")

    def invalidate_partition(self, pid: int) -> int:
        """Drop every entry of one partition; returns the count dropped.

        Version validation already makes this unnecessary for
        correctness — it exists for memory hygiene when a partition is
        dropped for good (its versions will never be queried again).
        """
        if self._lock is None:
            return self._invalidate_partition(pid)
        with self._lock:
            return self._invalidate_partition(pid)

    def _invalidate_partition(self, pid: int) -> int:
        doomed = [key for key in self._entries if key[2] == pid]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    def entries(self) -> list[tuple[CacheKey, int]]:
        """(key, stored version) pairs — for coherence checks in tests."""
        return [(key, version) for key, (version, _rows) in self._entries.items()]

    def rows_at(self, key: CacheKey) -> list[dict[str, Any]]:
        """The stored rows of one entry (coherence checks only)."""
        return [dict(row) for row in self._entries[key][1]]

    def _count(self, field: str) -> None:
        if self.counters is not None:
            setattr(self.counters, field, getattr(self.counters, field) + 1)


def verify_cache_coherence(cache: QueryResultCache, table) -> list[str]:
    """Cross-check every *servable* cache entry against a fresh scan.

    An entry is servable when its partition still exists and its stored
    version equals the partition's current content version — exactly the
    condition :meth:`QueryResultCache.lookup` serves under.  For each
    servable entry the partition is re-scanned and the rows must match
    bit for bit; any mismatch means a mutation failed to bump the
    version (a stale-serve bug).  Entries whose version moved on are
    fine by definition — they can never be served again.

    Returns human-readable problems (empty = coherent).  Used by the
    property suite and the soak test.
    """
    from repro.query.executor import ExecutionStats, scan_heap

    problems: list[str] = []
    catalog = table.catalog
    for (attributes, mode, pid), version in cache.entries():
        if pid not in catalog:
            continue
        if catalog.version_of(pid) != version:
            continue
        query = AttributeQuery(attributes, mode)
        fresh: list[dict[str, Any]] = []
        scan_heap(table.heap_of(pid), query, table.dictionary,
                  ExecutionStats(), fresh)
        stored = cache.rows_at((attributes, mode, pid))
        if fresh != stored:
            problems.append(
                f"cache entry {(attributes, mode, pid)} at version {version} "
                f"holds {stored!r} but a fresh scan returns {fresh!r}"
            )
    return problems
