"""Query rewriting: universal-table queries become UNION ALL plans.

The paper's prototype "uses the meta data to rewrite incoming queries to a
UNION ALL over all partitions that contain the set of requested
attributes".  :func:`rewrite` performs the same step against our partition
catalog: it prunes, then emits a :class:`UnionAllPlan` whose branches are
the surviving partitions.  The plan is a plain description — executable by
the table layer, printable for humans, and inspectable by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs import runtime as obs
from repro.query.pruning import candidate_pids_from_index, split_by_pruning
from repro.query.query import AttributeQuery

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.catalog import PartitionCatalog
    from repro.catalog.dictionary import AttributeDictionary


@dataclass(frozen=True)
class UnionAllPlan:
    """A pruned UNION ALL over partition scans.

    Attributes:
        query: the original attribute query.
        branch_pids: partitions that must be scanned (the UNION branches).
        pruned_pids: partitions eliminated by synopsis pruning.
    """

    query: AttributeQuery
    branch_pids: tuple[int, ...]
    pruned_pids: tuple[int, ...]

    @property
    def partitions_total(self) -> int:
        return len(self.branch_pids) + len(self.pruned_pids)

    @property
    def pruning_ratio(self) -> float:
        """Fraction of partitions eliminated before touching data."""
        total = self.partitions_total
        return len(self.pruned_pids) / total if total else 0.0

    def describe(self) -> str:
        """Human-readable plan, in the prototype's UNION ALL shape."""
        if not self.branch_pids:
            return f"-- all {self.partitions_total} partitions pruned: empty result"
        branches = "\nUNION ALL\n".join(
            self.query.sql(f"partition_{pid}") for pid in self.branch_pids
        )
        return (
            f"-- {len(self.pruned_pids)} of {self.partitions_total} "
            f"partitions pruned\n{branches}"
        )


def rewrite(
    query: AttributeQuery,
    catalog: "PartitionCatalog",
    dictionary: "AttributeDictionary",
    use_index: bool = True,
) -> UnionAllPlan:
    """Prune the catalog and build the UNION ALL plan for *query*.

    With ``use_index`` (and a catalog that carries a
    :class:`~repro.catalog.synopsis_index.SynopsisIndex`) the surviving
    set is resolved from the inverted posting lists without scanning the
    catalog; otherwise every catalog entry is tested.  Both paths emit
    branches in ascending pid order, so the plan — and therefore the row
    order of its execution — is identical regardless of strategy.
    """
    with obs.span("query.rewrite") as span:
        if use_index and catalog.index is not None:
            with obs.span("query.index_prune"):
                surviving_pids = candidate_pids_from_index(
                    catalog.index, query, dictionary
                )
                branch_pids = tuple(sorted(surviving_pids))
                pruned_pids = tuple(
                    pid for pid in sorted(catalog.partition_ids())
                    if pid not in surviving_pids
                )
            plan = UnionAllPlan(query=query, branch_pids=branch_pids,
                                pruned_pids=pruned_pids)
        else:
            with obs.span("query.catalog_prune"):
                surviving, pruned = split_by_pruning(catalog, query, dictionary)
            plan = UnionAllPlan(
                query=query,
                branch_pids=tuple(sorted(p.pid for p in surviving)),
                pruned_pids=tuple(sorted(p.pid for p in pruned)),
            )
        if span.is_recording:
            span.set("branches", len(plan.branch_pids))
            span.set("pruned", len(plan.pruned_pids))
    return plan
