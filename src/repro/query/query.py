"""Attribute queries over the universal table.

The paper's synthetic workload (Section V-B) consists of queries of the
form::

    SELECT a₁, a₂, ... FROM universalTable
    WHERE a₁ IS NOT NULL OR a₂ IS NOT NULL ...

which return exactly the entities that instantiate at least one of the
referenced attributes.  :class:`AttributeQuery` models these, plus the
``all`` conjunction variant needed by the schema-emulating views of the
TPC-H experiment (an entity belongs to an emulated table only when it
instantiates *all* of the table's discriminating columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Literal, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.dictionary import AttributeDictionary


@dataclass(frozen=True)
class AttributeQuery:
    """A query referencing a fixed set of attributes.

    Attributes:
        attributes: the referenced attribute names (``a₁, a₂, …``); also
            the projection list.
        mode: ``"any"`` (the paper's OR form — entity qualifies when it
            instantiates at least one attribute) or ``"all"`` (entity must
            instantiate every attribute).
    """

    attributes: tuple[str, ...]
    mode: Literal["any", "all"] = "any"

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("a query must reference at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in query: {self.attributes}")
        if self.mode not in ("any", "all"):
            raise ValueError(f"mode must be 'any' or 'all', got {self.mode!r}")

    def synopsis_mask(self, dictionary: "AttributeDictionary") -> int:
        """The query synopsis ``q`` as a bitmask over *dictionary*.

        Attributes unknown to the dictionary are dropped: no entity can
        instantiate them, so they never contribute to relevance (and, in
        ``all`` mode, their absence is checked separately).
        """
        return dictionary.encode_known(self.attributes)

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        """Does an entity with these attribute values qualify?"""
        if self.mode == "any":
            return any(name in attributes for name in self.attributes)
        return all(name in attributes for name in self.attributes)

    def matches_mask(self, entity_mask: int, dictionary: "AttributeDictionary") -> bool:
        """Synopsis-level qualification test (used by the efficiency metric)."""
        query_mask = self.synopsis_mask(dictionary)
        if self.mode == "any":
            return (entity_mask & query_mask) != 0
        if len(self.attributes) != query_mask.bit_count():
            return False  # an attribute unknown to the table ⇒ nothing matches
        return (entity_mask & query_mask) == query_mask

    def project(self, attributes: Mapping[str, Any]) -> dict[str, Any]:
        """Project an entity's values to the query's attribute list."""
        return {name: attributes.get(name) for name in self.attributes}

    def sql(self, table_name: str = "universalTable") -> str:
        """Render the paper's SQL form of the query (for logs and docs)."""
        connective = " OR " if self.mode == "any" else " AND "
        predicate = connective.join(f"{a} IS NOT NULL" for a in self.attributes)
        columns = ", ".join(self.attributes)
        return f"SELECT {columns} FROM {table_name} WHERE {predicate}"
