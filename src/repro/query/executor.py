"""Query execution: scans, filtering, projection, and statistics.

The baseline execution is deliberately simple — the paper ran its
measurements without any indexes, so every query is a (pruned) sequence
of full partition scans.  What matters for the reproduction is the
*accounting*: the executor reports exactly how much data each query
touched, which feeds the cost model (:mod:`repro.cost.model`) that
stands in for the paper's wall-clock measurements.

On top of that baseline sits the read-side fast path: when a
:class:`~repro.query.cache.QueryResultCache` is passed in, each UNION
ALL branch first consults the cache under the partition's current
content version and only scans on a miss, storing the partition's
contribution for the next repetition.  Cache hits charge no
pages/bytes/entities — skipping that I/O is the point — but do count
their rows, so results are accounted identically either way.
:func:`execute_uncached_full_scan` is the other extreme — every
partition scanned, no pruning, no cache — kept as the differential
oracle and the bench baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.obs import runtime as obs
from repro.query.query import AttributeQuery
from repro.query.rewrite import UnionAllPlan
from repro.storage.record import deserialize_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.catalog import PartitionCatalog
    from repro.catalog.dictionary import AttributeDictionary
    from repro.metrics.telemetry import QueryPathCounters
    from repro.query.cache import QueryResultCache
    from repro.storage.heap import HeapFile


@dataclass
class ExecutionStats:
    """Everything a query execution touched.

    ``union_branches`` is 0 for the unpartitioned baseline (no UNION ALL
    was needed); for partitioned execution it equals the number of
    partitions scanned and drives the prototype-overhead term of the cost
    model.  ``cache_hits``/``cache_misses`` count result-cache traffic
    for this one query; a hit branch contributes rows but no reads.
    """

    partitions_total: int = 0
    partitions_scanned: int = 0
    partitions_pruned: int = 0
    entities_read: int = 0
    rows_returned: int = 0
    pages_read: int = 0
    bytes_read: int = 0
    union_branches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time_s: float = 0.0


@dataclass
class ExecutionResult:
    """Rows plus accounting for one executed query."""

    rows: list[dict[str, Any]]
    stats: ExecutionStats
    plan: Optional[UnionAllPlan] = None


def scan_heap(
    heap: "HeapFile",
    query: AttributeQuery,
    dictionary: "AttributeDictionary",
    stats: ExecutionStats,
    out_rows: list[dict[str, Any]],
    eid_filter: Optional[Callable[[int], bool]] = None,
) -> None:
    """Scan one heap file, appending qualifying projected rows.

    Charges page/byte reads through the heap's I/O stats and mirrors the
    deltas into *stats*; every live record is deserialized and tested
    (there are no indexes, matching the paper's setup).

    *eid_filter* restricts the scan to entities it accepts — the
    routing tier's shard-scoped reads, where a node holding replicas of
    several shards must answer for exactly one subset of them.
    """
    before = heap.io.snapshot()
    for _rid, record in heap.scan():
        eid, attributes = deserialize_record(record, dictionary)
        stats.entities_read += 1
        if eid_filter is not None and not eid_filter(eid):
            continue
        if query.matches(attributes):
            out_rows.append(query.project(attributes))
            stats.rows_returned += 1
    delta = heap.io.delta_since(before)
    stats.pages_read += delta.pages_read
    stats.bytes_read += delta.bytes_read


def execute_union_all(
    plan: UnionAllPlan,
    heaps: dict[int, "HeapFile"],
    dictionary: "AttributeDictionary",
    catalog: Optional["PartitionCatalog"] = None,
    cache: Optional["QueryResultCache"] = None,
    counters: Optional["QueryPathCounters"] = None,
    eid_filter: Optional[Callable[[int], bool]] = None,
) -> ExecutionResult:
    """Execute a UNION ALL plan over partition heap files.

    With *cache* (which requires *catalog* for the content versions),
    each branch is first looked up under the partition's current
    version; only misses scan, and their per-partition rows are stored
    for the next execution of the same query.  Row order is identical
    with and without a cache: branches run in plan order and a cached
    branch contributes exactly the rows its scan produced.

    An *eid_filter* (shard-scoped reads) bypasses the cache entirely:
    cached branch rows are filter-agnostic, so serving them to a
    filtered query — or storing a filtered scan for an unfiltered
    one — would be silently wrong.
    """
    if cache is not None and catalog is None:
        raise ValueError("a result cache requires the catalog for versions")
    if eid_filter is not None:
        cache = None
    stats = ExecutionStats(
        partitions_total=plan.partitions_total,
        partitions_pruned=len(plan.pruned_pids),
    )
    rows: list[dict[str, Any]] = []
    started = time.perf_counter()
    with obs.span(
        "query.execute", branches=len(plan.branch_pids), cached=cache is not None
    ) as span:
        for pid in plan.branch_pids:
            stats.union_branches += 1
            if cache is not None:
                version = catalog.version_of(pid)
                cached = cache.lookup(plan.query, pid, version)
                if cached is not None:
                    stats.cache_hits += 1
                    stats.rows_returned += len(cached)
                    rows.extend(cached)
                    if counters is not None:
                        counters.rows_served_from_cache += len(cached)
                    continue
                stats.cache_misses += 1
                branch_rows: list[dict[str, Any]] = []
                stats.partitions_scanned += 1
                with obs.span("query.scan", pid=pid):
                    scan_heap(
                        heaps[pid], plan.query, dictionary, stats, branch_rows
                    )
                cache.store(plan.query, pid, version, branch_rows)
                rows.extend(branch_rows)
                continue
            stats.partitions_scanned += 1
            with obs.span("query.scan", pid=pid):
                scan_heap(
                    heaps[pid], plan.query, dictionary, stats, rows,
                    eid_filter=eid_filter,
                )
        if span.is_recording:
            span.set("cache_hits", stats.cache_hits)
            span.set("cache_misses", stats.cache_misses)
            span.set("rows", stats.rows_returned)
    stats.wall_time_s = time.perf_counter() - started
    if obs.is_enabled():
        obs.observe(
            "repro_query_latency_seconds",
            stats.wall_time_s,
            help_text="Wall time of one UNION ALL execution",
        )
    if counters is not None:
        counters.queries_total += 1
        counters.partitions_considered += stats.partitions_total
        counters.partitions_pruned += stats.partitions_pruned
        counters.partitions_scanned += stats.partitions_scanned
    return ExecutionResult(rows=rows, stats=stats, plan=plan)


def execute_uncached_full_scan(
    query: AttributeQuery,
    heaps: dict[int, "HeapFile"],
    dictionary: "AttributeDictionary",
) -> ExecutionResult:
    """Scan every partition: no pruning, no index, no cache.

    The naive reference executor — the differential oracle the fast
    path is tested against, and the baseline the query-path bench
    measures its speedup over.  Partitions run in ascending pid order,
    matching the plan order of :func:`repro.query.rewrite.rewrite`, so
    results are bit-identical to the fast path's.
    """
    stats = ExecutionStats(partitions_total=len(heaps))
    rows: list[dict[str, Any]] = []
    started = time.perf_counter()
    for pid in sorted(heaps):
        stats.partitions_scanned += 1
        stats.union_branches += 1
        scan_heap(heaps[pid], query, dictionary, stats, rows)
    stats.wall_time_s = time.perf_counter() - started
    return ExecutionResult(rows=rows, stats=stats)


def execute_full_scan(
    query: AttributeQuery,
    heap: "HeapFile",
    dictionary: "AttributeDictionary",
) -> ExecutionResult:
    """Execute a query against the unpartitioned universal table."""
    stats = ExecutionStats(partitions_total=1, partitions_scanned=1)
    rows: list[dict[str, Any]] = []
    started = time.perf_counter()
    scan_heap(heap, query, dictionary, stats, rows)
    stats.wall_time_s = time.perf_counter() - started
    return ExecutionResult(rows=rows, stats=stats)
