"""Query execution: scans, filtering, projection, and statistics.

Execution is deliberately simple — the paper ran its measurements without
any indexes, so every query is a (pruned) sequence of full partition
scans.  What matters for the reproduction is the *accounting*: the
executor reports exactly how much data each query touched, which feeds the
cost model (:mod:`repro.cost.model`) that stands in for the paper's
wall-clock measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.query.query import AttributeQuery
from repro.query.rewrite import UnionAllPlan
from repro.storage.record import deserialize_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.dictionary import AttributeDictionary
    from repro.storage.heap import HeapFile


@dataclass
class ExecutionStats:
    """Everything a query execution touched.

    ``union_branches`` is 0 for the unpartitioned baseline (no UNION ALL
    was needed); for partitioned execution it equals the number of
    partitions scanned and drives the prototype-overhead term of the cost
    model.
    """

    partitions_total: int = 0
    partitions_scanned: int = 0
    partitions_pruned: int = 0
    entities_read: int = 0
    rows_returned: int = 0
    pages_read: int = 0
    bytes_read: int = 0
    union_branches: int = 0
    wall_time_s: float = 0.0


@dataclass
class ExecutionResult:
    """Rows plus accounting for one executed query."""

    rows: list[dict[str, Any]]
    stats: ExecutionStats
    plan: Optional[UnionAllPlan] = None


def scan_heap(
    heap: "HeapFile",
    query: AttributeQuery,
    dictionary: "AttributeDictionary",
    stats: ExecutionStats,
    out_rows: list[dict[str, Any]],
) -> None:
    """Scan one heap file, appending qualifying projected rows.

    Charges page/byte reads through the heap's I/O stats and mirrors the
    deltas into *stats*; every live record is deserialized and tested
    (there are no indexes, matching the paper's setup).
    """
    before = heap.io.snapshot()
    for _rid, record in heap.scan():
        _eid, attributes = deserialize_record(record, dictionary)
        stats.entities_read += 1
        if query.matches(attributes):
            out_rows.append(query.project(attributes))
            stats.rows_returned += 1
    delta = heap.io.delta_since(before)
    stats.pages_read += delta.pages_read
    stats.bytes_read += delta.bytes_read


def execute_union_all(
    plan: UnionAllPlan,
    heaps: dict[int, "HeapFile"],
    dictionary: "AttributeDictionary",
) -> ExecutionResult:
    """Execute a UNION ALL plan over partition heap files."""
    stats = ExecutionStats(
        partitions_total=plan.partitions_total,
        partitions_pruned=len(plan.pruned_pids),
    )
    rows: list[dict[str, Any]] = []
    started = time.perf_counter()
    for pid in plan.branch_pids:
        stats.partitions_scanned += 1
        stats.union_branches += 1
        scan_heap(heaps[pid], plan.query, dictionary, stats, rows)
    stats.wall_time_s = time.perf_counter() - started
    return ExecutionResult(rows=rows, stats=stats, plan=plan)


def execute_full_scan(
    query: AttributeQuery,
    heap: "HeapFile",
    dictionary: "AttributeDictionary",
) -> ExecutionResult:
    """Execute a query against the unpartitioned universal table."""
    stats = ExecutionStats(partitions_total=1, partitions_scanned=1)
    rows: list[dict[str, Any]] = []
    started = time.perf_counter()
    scan_heap(heap, query, dictionary, stats, rows)
    stats.wall_time_s = time.perf_counter() - started
    return ExecutionResult(rows=rows, stats=stats)
