"""Query layer: attribute queries, pruning, rewriting, caching, execution."""

from repro.query.cache import QueryResultCache
from repro.query.executor import (
    ExecutionResult,
    ExecutionStats,
    execute_full_scan,
    execute_uncached_full_scan,
    execute_union_all,
)
from repro.query.pruning import (
    candidate_pids_from_index,
    is_prunable,
    split_by_pruning,
)
from repro.query.query import AttributeQuery
from repro.query.rewrite import UnionAllPlan, rewrite

__all__ = [
    "AttributeQuery",
    "ExecutionResult",
    "ExecutionStats",
    "QueryResultCache",
    "UnionAllPlan",
    "candidate_pids_from_index",
    "execute_full_scan",
    "execute_uncached_full_scan",
    "execute_union_all",
    "is_prunable",
    "rewrite",
    "split_by_pruning",
]
