"""Query layer: attribute queries, pruning, UNION ALL rewriting, execution."""

from repro.query.executor import (
    ExecutionResult,
    ExecutionStats,
    execute_full_scan,
    execute_union_all,
)
from repro.query.pruning import is_prunable, split_by_pruning
from repro.query.query import AttributeQuery
from repro.query.rewrite import UnionAllPlan, rewrite

__all__ = [
    "AttributeQuery",
    "ExecutionResult",
    "ExecutionStats",
    "UnionAllPlan",
    "execute_full_scan",
    "execute_union_all",
    "is_prunable",
    "rewrite",
    "split_by_pruning",
]
