"""repro — a from-scratch reproduction of *Cinderella: Adaptive Online
Partitioning of Irregularly Structured Data* (Herrmann, Voigt, Lehner;
ICDE Workshops 2014).

The package implements the full system stack of the paper:

* :mod:`repro.core` — the Cinderella algorithm: synopsis ratings, split
  starters, Algorithm 1's insert/update/delete routines, the partitioning
  efficiency metric (Definition 1), and the workload-based mode.
* :mod:`repro.catalog` — the system catalog: attribute dictionary,
  partition metadata, and the inverted synopsis index extension.
* :mod:`repro.storage` — the storage substrate: sparse interpreted
  records, slotted pages, heap files, buffer pool, I/O accounting.
* :mod:`repro.table` — the universal table baseline and the
  Cinderella-partitioned table with transparent DML and pruned UNION ALL
  query execution; schema-emulating views for the TPC-H experiment.
* :mod:`repro.query` / :mod:`repro.cost` — attribute queries, pruning,
  rewriting, execution statistics, and the simulated cost model.
* :mod:`repro.workloads` — the DBpedia-person data generator (calibrated
  to Figure 4), the synthetic selective query workload, and a TPC-H
  dbgen plus all 22 queries.
* :mod:`repro.baselines` — hash / round-robin / offline-clustering /
  oracle partitioners for comparison.
* :mod:`repro.metrics` / :mod:`repro.reporting` — partitioning statistics
  (Figure 7), timing histograms (Figure 8), and figure/table renderers.

Quickstart::

    from repro import CinderellaTable, CinderellaConfig, AttributeQuery

    table = CinderellaTable(CinderellaConfig(max_partition_size=500, weight=0.3))
    table.insert({"name": "Canon S120", "resolution": 12.1, "aperture": 2.0})
    table.insert({"name": "WD4000FYYZ", "storage": "4TB", "rotation": 7200})
    result = table.execute(AttributeQuery(("aperture", "resolution")))
    print(result.rows, result.stats.partitions_pruned)
"""

from repro.catalog import AttributeDictionary, PartitionCatalog, SynopsisIndex
from repro.core import (
    AttributeCountSizeModel,
    ByteSizeModel,
    CinderellaConfig,
    CinderellaPartitioner,
    ModificationOutcome,
    Synopsis,
    UniformSizeModel,
    WorkloadBasedPartitioner,
    catalog_efficiency,
    partitioning_efficiency,
    universal_table_efficiency,
)
from repro.cost import CostModel
from repro.query import AttributeQuery, ExecutionResult, UnionAllPlan
from repro.storage import BufferPool, Entity, IOStats
from repro.table import CinderellaTable, TableView, UniversalTable

__version__ = "1.0.0"

__all__ = [
    "AttributeCountSizeModel",
    "AttributeDictionary",
    "AttributeQuery",
    "BufferPool",
    "ByteSizeModel",
    "CinderellaConfig",
    "CinderellaPartitioner",
    "CinderellaTable",
    "CostModel",
    "Entity",
    "ExecutionResult",
    "IOStats",
    "ModificationOutcome",
    "PartitionCatalog",
    "Synopsis",
    "SynopsisIndex",
    "TableView",
    "UniformSizeModel",
    "UnionAllPlan",
    "UniversalTable",
    "WorkloadBasedPartitioner",
    "catalog_efficiency",
    "partitioning_efficiency",
    "universal_table_efficiency",
]
