"""Compilation of WHERE expressions: row predicates and pruning clauses.

Two artefacts are compiled from one parsed expression:

* a **row predicate** — a Python callable evaluating the expression
  against an entity's attribute mapping (SQL semantics: an attribute the
  entity does not instantiate is NULL; comparisons against NULL are not
  true);
* **pruning clauses** — a conjunction of attribute alternatives such that
  any row satisfying the expression instantiates at least one attribute
  of *every* clause.  A partition whose synopsis misses a whole clause
  can therefore be pruned before touching data — the generalisation of
  the paper's ``|p ∧ q| = 0`` rule to arbitrary predicates.

Pruning clauses are deliberately conservative: constructs that can be
satisfied by *absent* attributes (``IS NULL``, ``NOT LIKE``, ``NOT …``)
contribute no clause, so pruning stays sound for every expression.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping

from repro.sql.ast import (
    And,
    Comparison,
    Expression,
    LikePredicate,
    Not,
    NullPredicate,
    Or,
)

RowPredicate = Callable[[Mapping[str, Any]], bool]

#: clause-count cap before OR-distribution falls back to one union clause
_MAX_CLAUSES = 32


def _like_matcher(pattern: str) -> Callable[[str], bool]:
    regex = re.compile(
        ".*".join(re.escape(part) for part in pattern.split("%")), re.DOTALL
    )
    return lambda value: regex.fullmatch(value) is not None


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compile_predicate(expression: Expression) -> RowPredicate:
    """Compile an expression into a row predicate.

    Three-valued logic is folded into two values the way SQL folds it at
    the top of a WHERE clause: UNKNOWN (comparisons involving NULL, type
    mismatches) is not true, hence False.  ``NOT`` negates that folded
    value — exact for the instantiation tests universal-table workloads
    use, and documented behaviour for exotic nestings.
    """
    if isinstance(expression, Comparison):
        compare = _COMPARATORS[expression.op]
        column, constant = expression.column, expression.value

        def predicate(row: Mapping[str, Any]) -> bool:
            value = row.get(column)
            if value is None or constant is None:
                return False
            try:
                return bool(compare(value, constant))
            except TypeError:
                return False

        return predicate
    if isinstance(expression, LikePredicate):
        matcher = _like_matcher(expression.pattern)
        column, negated = expression.column, expression.negated

        def predicate(row: Mapping[str, Any]) -> bool:
            value = row.get(column)
            if not isinstance(value, str):
                return False
            return matcher(value) != negated

        return predicate
    if isinstance(expression, NullPredicate):
        column, negated = expression.column, expression.negated
        if negated:  # IS NOT NULL: instantiated with a non-NULL value
            return lambda row: row.get(column) is not None
        return lambda row: row.get(column) is None
    if isinstance(expression, And):
        left = compile_predicate(expression.left)
        right = compile_predicate(expression.right)
        return lambda row: left(row) and right(row)
    if isinstance(expression, Or):
        left = compile_predicate(expression.left)
        right = compile_predicate(expression.right)
        return lambda row: left(row) or right(row)
    if isinstance(expression, Not):
        operand = compile_predicate(expression.operand)
        return lambda row: not operand(row)
    raise TypeError(f"not an expression node: {expression!r}")


def pruning_clauses(expression: Expression) -> list[frozenset[str]]:
    """Derive the conjunction of attribute alternatives (see module doc).

    An empty list means "no pruning possible" (the expression may hold on
    entities without any particular attribute).
    """
    if isinstance(expression, Comparison):
        return [frozenset((expression.column,))]
    if isinstance(expression, LikePredicate):
        # both LIKE and NOT LIKE require a present string value (the
        # compiled predicate is False on NULL either way, as in SQL)
        return [frozenset((expression.column,))]
    if isinstance(expression, NullPredicate):
        if expression.negated:  # IS NOT NULL requires the attribute
            return [frozenset((expression.column,))]
        return []  # IS NULL is satisfied by absence: never prune
    if isinstance(expression, And):
        return pruning_clauses(expression.left) + pruning_clauses(expression.right)
    if isinstance(expression, Or):
        left = pruning_clauses(expression.left)
        right = pruning_clauses(expression.right)
        if not left or not right:
            return []  # one side may hold without any attribute
        if len(left) * len(right) > _MAX_CLAUSES:
            union = frozenset().union(*left, *right)
            return [union]
        return [
            clause_left | clause_right
            for clause_left in left
            for clause_right in right
        ]
    if isinstance(expression, Not):
        return []  # conservatively unprunable
    raise TypeError(f"not an expression node: {expression!r}")
