"""Execution of parsed SELECT statements against universal tables.

Works with all three table layouts:

* on a :class:`~repro.table.partitioned.CinderellaTable`, the WHERE
  clause's pruning clauses eliminate partitions before any data is
  touched (the SQL-level generalisation of the prototype's rewrite);
* on a :class:`~repro.query.snapshot.TableSnapshot`, the same pruning
  runs over the snapshot's immutable partition views — records are
  already decoded, so no pages or bytes are read (the serving layer's
  lock-free read path);
* on a :class:`~repro.table.universal.UniversalTable`, the statement is a
  plain filtered full scan.

Results carry the same :class:`~repro.query.executor.ExecutionStats`
the attribute-query path produces, so the cost model applies unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.query.executor import ExecutionStats
from repro.query.snapshot import TableSnapshot
from repro.sql.ast import OrderItem, SelectStatement
from repro.sql.compiler import compile_predicate, pruning_clauses
from repro.sql.parser import parse
from repro.storage.record import deserialize_record
from repro.table.partitioned import CinderellaTable
from repro.table.universal import UniversalTable

Table = Union[CinderellaTable, TableSnapshot, UniversalTable]


@dataclass
class SqlResult:
    """Rows plus accounting for one executed SQL statement."""

    rows: list[dict[str, Any]]
    stats: ExecutionStats
    statement: SelectStatement
    #: partition ids pruned by the WHERE clause (empty on universal tables)
    pruned_pids: tuple[int, ...] = field(default=())


def _sort_key(item: OrderItem):
    column = item.column

    def key(row: dict[str, Any]):
        value = row.get(column)
        # total order over mixed content: NULLs first, then by type family
        if value is None:
            return (0, "", 0.0, "")
        if isinstance(value, bool):
            return (1, "bool", float(value), "")
        if isinstance(value, (int, float)):
            return (1, "number", float(value), "")
        return (2, type(value).__name__, 0.0, str(value))

    return key


def _order_and_limit(
    rows: list[dict[str, Any]], statement: SelectStatement
) -> list[dict[str, Any]]:
    for item in reversed(statement.order_by):
        rows.sort(key=_sort_key(item), reverse=item.descending)
    if statement.limit is not None:
        return rows[: statement.limit]
    return rows


def _project(attributes: dict[str, Any], statement: SelectStatement) -> dict:
    if statement.columns is None:  # SELECT *: the entity's own attributes
        return dict(attributes)
    return {name: attributes.get(name) for name in statement.columns}


def execute_statement(
    statement: SelectStatement,
    table: Table,
    eid_filter: Optional[Callable[[int], bool]] = None,
) -> SqlResult:
    """Execute a parsed statement against either table layout.

    *eid_filter* restricts execution to entities it accepts — the
    routing tier's shard-scoped reads (pruning still applies first; the
    filter only gates deserialized records).
    """
    predicate = (
        compile_predicate(statement.where) if statement.where is not None else None
    )
    stats = ExecutionStats()
    rows: list[dict[str, Any]] = []
    pruned: tuple[int, ...] = ()
    started = time.perf_counter()

    if isinstance(table, TableSnapshot):
        clauses = (
            pruning_clauses(statement.where) if statement.where is not None else []
        )
        clause_masks = [
            table.dictionary.encode_known(clause) for clause in clauses
        ]
        # a clause none of whose attributes exist anywhere ⇒ empty result
        if any(clause and mask == 0 for clause, mask in zip(clauses, clause_masks)):
            stats.partitions_total = len(table.views)
            stats.partitions_pruned = len(table.views)
            stats.wall_time_s = time.perf_counter() - started
            return SqlResult(
                [], stats, statement, tuple(v.pid for v in table.views)
            )
        pruned_list = []
        stats.partitions_total = len(table.views)
        for view in table.views:
            if any(view.mask & mask == 0 for mask in clause_masks if mask):
                pruned_list.append(view.pid)
                continue
            stats.partitions_scanned += 1
            stats.union_branches += 1
            # records are already decoded in the snapshot: no pages or
            # bytes are read on this path
            for eid, attributes in view.entities():
                stats.entities_read += 1
                if eid_filter is not None and not eid_filter(eid):
                    continue
                if predicate is None or predicate(attributes):
                    rows.append(_project(attributes, statement))
                    stats.rows_returned += 1
        stats.partitions_pruned = len(pruned_list)
        pruned = tuple(pruned_list)
    elif isinstance(table, CinderellaTable):
        clauses = (
            pruning_clauses(statement.where) if statement.where is not None else []
        )
        clause_masks = [
            table.dictionary.encode_known(clause) for clause in clauses
        ]
        # a clause none of whose attributes exist anywhere ⇒ empty result
        if any(clause and mask == 0 for clause, mask in zip(clauses, clause_masks)):
            stats.partitions_total = len(table.catalog)
            stats.partitions_pruned = len(table.catalog)
            stats.wall_time_s = time.perf_counter() - started
            return SqlResult(
                [], stats, statement, tuple(p.pid for p in table.catalog)
            )
        surviving = []
        pruned_list = []
        for partition in table.catalog:
            if any(partition.mask & mask == 0 for mask in clause_masks if mask):
                pruned_list.append(partition.pid)
            else:
                surviving.append(partition.pid)
        stats.partitions_total = len(table.catalog)
        stats.partitions_pruned = len(pruned_list)
        pruned = tuple(pruned_list)
        for pid in surviving:
            heap = table.heap_of(pid)
            stats.partitions_scanned += 1
            stats.union_branches += 1
            before = heap.io.snapshot()
            for _rid, record in heap.scan():
                eid, attributes = deserialize_record(record, table.dictionary)
                stats.entities_read += 1
                if eid_filter is not None and not eid_filter(eid):
                    continue
                if predicate is None or predicate(attributes):
                    rows.append(_project(attributes, statement))
                    stats.rows_returned += 1
            delta = heap.io.delta_since(before)
            stats.pages_read += delta.pages_read
            stats.bytes_read += delta.bytes_read
    else:
        stats.partitions_total = 1
        stats.partitions_scanned = 1
        heap = table.heap
        before = heap.io.snapshot()
        for _rid, record in heap.scan():
            eid, attributes = deserialize_record(record, table.dictionary)
            stats.entities_read += 1
            if eid_filter is not None and not eid_filter(eid):
                continue
            if predicate is None or predicate(attributes):
                rows.append(_project(attributes, statement))
                stats.rows_returned += 1
        delta = heap.io.delta_since(before)
        stats.pages_read += delta.pages_read
        stats.bytes_read += delta.bytes_read

    rows = _order_and_limit(rows, statement)
    stats.rows_returned = len(rows)
    stats.wall_time_s = time.perf_counter() - started
    return SqlResult(rows, stats, statement, pruned)


def execute(
    sql: str,
    table: Table,
    eid_filter: Optional[Callable[[int], bool]] = None,
) -> SqlResult:
    """Parse and execute one SELECT statement."""
    return execute_statement(parse(sql), table, eid_filter=eid_filter)
