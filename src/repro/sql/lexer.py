"""Tokenizer for the universal-table SQL dialect.

The paper's prototype provides "transparent data access […] using regular
SQL statements"; this lexer feeds the small SQL front-end that recreates
that interface.  It understands exactly what universal-table queries need:
identifiers, keywords, numeric/string literals, comparison operators,
parentheses, commas, and ``*``.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IS", "NULL",
        "LIKE", "TRUE", "FALSE", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCTUATION = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA", "*": "STAR"}


class SqlSyntaxError(ValueError):
    """Raised on any lexical or grammatical problem, with a position."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


@dataclass(frozen=True)
class Token:
    """One lexical token: kind, raw text, and source offset."""

    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | LPAREN | ... | EOF
    text: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql*; raises :class:`SqlSyntaxError` on invalid input."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[char], char, index))
            index += 1
            continue
        matched_op = next(
            (op for op in _OPERATORS if sql.startswith(op, index)), None
        )
        if matched_op:
            tokens.append(Token("OP", matched_op, index))
            index += len(matched_op)
            continue
        if char == "'":
            end = index + 1
            chunks: list[str] = []
            while True:
                if end >= length:
                    raise SqlSyntaxError("unterminated string literal", index)
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        chunks.append("'")  # doubled quote escapes a quote
                        end += 2
                        continue
                    break
                chunks.append(sql[end])
                end += 1
            tokens.append(Token("STRING", "".join(chunks), index))
            index = end + 1
            continue
        if char.isdigit() or (
            char in "+-" and index + 1 < length and sql[index + 1].isdigit()
        ):
            end = index + 1
            seen_dot = False
            while end < length and (
                sql[end].isdigit() or (sql[end] == "." and not seen_dot)
            ):
                seen_dot = seen_dot or sql[end] == "."
                end += 1
            tokens.append(Token("NUMBER", sql[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), index))
            else:
                tokens.append(Token("IDENT", word, index))
            index = end
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token("EOF", "", length))
    return tokens
