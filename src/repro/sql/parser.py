"""Recursive-descent parser for the universal-table SQL dialect.

Grammar (keywords case-insensitive)::

    select    := SELECT columns FROM ident [WHERE expr]
                 [ORDER BY order (, order)*] [LIMIT number]
    columns   := '*' | ident (',' ident)*
    order     := ident [ASC | DESC]
    expr      := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | primary
    primary   := '(' expr ')' | predicate
    predicate := ident IS [NOT] NULL
               | ident [NOT] LIKE string
               | ident op literal
    op        := = | != | <> | < | <= | > | >=
    literal   := number | string | TRUE | FALSE | NULL
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sql.ast import (
    And,
    Comparison,
    Expression,
    LikePredicate,
    Not,
    NullPredicate,
    Or,
    OrderItem,
    SelectStatement,
)
from repro.sql.lexer import SqlSyntaxError, Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._current
        return token.kind == "KEYWORD" and token.text in keywords

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        if self._check_keyword(*keywords):
            return self._advance().text
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise SqlSyntaxError(
                f"expected {keyword}, found {self._current.text or 'end of input'!r}",
                self._current.position,
            )

    def _expect(self, kind: str) -> Token:
        if self._current.kind != kind:
            raise SqlSyntaxError(
                f"expected {kind}, found {self._current.text or 'end of input'!r}",
                self._current.position,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        columns: Optional[tuple[str, ...]]
        if self._current.kind == "STAR":
            self._advance()
            columns = None
        else:
            names = [self._expect("IDENT").text]
            while self._current.kind == "COMMA":
                self._advance()
                names.append(self._expect("IDENT").text)
            if len(set(names)) != len(names):
                raise SqlSyntaxError(
                    "duplicate column in select list", self._current.position
                )
            columns = tuple(names)
        self._expect_keyword("FROM")
        table = self._expect("IDENT").text

        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()

        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                column = self._expect("IDENT").text
                direction = self._accept_keyword("ASC", "DESC")
                order_by.append(OrderItem(column, descending=direction == "DESC"))
                if self._current.kind != "COMMA":
                    break
                self._advance()

        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._expect("NUMBER")
            if "." in token.text:
                raise SqlSyntaxError("LIMIT must be an integer", token.position)
            limit = int(token.text)
            if limit < 0:
                raise SqlSyntaxError("LIMIT must be non-negative", token.position)

        if self._current.kind != "EOF":
            raise SqlSyntaxError(
                f"unexpected trailing input {self._current.text!r}",
                self._current.position,
            )
        return SelectStatement(
            columns=columns,
            table=table,
            where=where,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _parse_expr(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(self._parse_not())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        if self._current.kind == "LPAREN":
            self._advance()
            expression = self._parse_expr()
            self._expect("RPAREN")
            return expression
        column = self._expect("IDENT").text
        if self._accept_keyword("IS"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return NullPredicate(column, negated=negated)
        if self._accept_keyword("NOT"):
            self._expect_keyword("LIKE")
            pattern = self._expect("STRING").text
            return LikePredicate(column, pattern, negated=True)
        if self._accept_keyword("LIKE"):
            pattern = self._expect("STRING").text
            return LikePredicate(column, pattern)
        op_token = self._expect("OP")
        op = "!=" if op_token.text == "<>" else op_token.text
        return Comparison(column, op, self._parse_literal())

    def _parse_literal(self) -> Any:
        token = self._current
        if token.kind == "NUMBER":
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "STRING":
            self._advance()
            return token.text
        if token.kind == "KEYWORD" and token.text in ("TRUE", "FALSE", "NULL"):
            self._advance()
            return {"TRUE": True, "FALSE": False, "NULL": None}[token.text]
        raise SqlSyntaxError(
            f"expected a literal, found {token.text or 'end of input'!r}",
            token.position,
        )


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement; raises :class:`SqlSyntaxError` on error."""
    return _Parser(tokenize(sql)).parse_select()
