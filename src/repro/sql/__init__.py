"""SQL front-end: the prototype's "regular SQL statements" interface."""

from repro.sql.ast import SelectStatement
from repro.sql.compiler import compile_predicate, pruning_clauses
from repro.sql.executor import SqlResult, execute, execute_statement
from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import parse

__all__ = [
    "SelectStatement",
    "SqlResult",
    "SqlSyntaxError",
    "compile_predicate",
    "execute",
    "execute_statement",
    "parse",
    "pruning_clauses",
    "tokenize",
]
