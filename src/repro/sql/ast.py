"""Abstract syntax tree of the universal-table SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union


@dataclass(frozen=True)
class Column:
    """A bare column reference."""

    name: str


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean, or NULL."""

    value: Any


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` with op ∈ {=, !=, <, <=, >, >=}."""

    column: str
    op: str
    value: Any


@dataclass(frozen=True)
class LikePredicate:
    """``column LIKE 'pattern'`` (optionally negated)."""

    column: str
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class NullPredicate:
    """``column IS [NOT] NULL`` — the paper's instantiation test.

    In the universal-table model an attribute the entity does not
    instantiate is SQL NULL, so ``IS NOT NULL`` is exactly "the entity has
    this attribute".
    """

    column: str
    negated: bool  # True = IS NOT NULL


@dataclass(frozen=True)
class And:
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Or:
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Not:
    operand: "Expression"


Expression = Union[Comparison, LikePredicate, NullPredicate, And, Or, Not]


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key with its direction."""

    column: str
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed ``SELECT`` over the universal table.

    ``columns is None`` means ``SELECT *`` (all dictionary attributes).
    """

    columns: Optional[tuple[str, ...]]
    table: str
    where: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
