"""Maintenance operations: partition merging and offline reorganization."""

from repro.maintenance.merger import MergeReport, merge_small_partitions
from repro.maintenance.reorganizer import ReorganizationReport, reorganize

__all__ = [
    "MergeReport",
    "ReorganizationReport",
    "merge_small_partitions",
    "reorganize",
]
