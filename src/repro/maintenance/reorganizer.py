"""Offline reorganization: rebuild a partitioning from scratch.

Cinderella is incremental by design — "it relies on the basic assumption
that the data is already well partitioned" (Section III).  After drastic
workload shifts that assumption can break down; the classic remedy is an
offline re-org during a maintenance window.  :func:`reorganize` replays
every entity of an existing partitioning through a *fresh* Cinderella
instance (optionally with new parameters), giving the algorithm a clean
slate, and reports how much the Definition 1 efficiency changed.

The rebuilt catalog restarts partition ids from zero; callers that swap
it in over a live one must re-stamp its partition content versions past
the replaced catalog's clock (``adopt_version_clock``) so query-result
cache entries keyed against the old catalog can never be served —
:func:`repro.txn.ops.atomic_reorganize` does this as part of the swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional, Sequence

from repro.core.config import CinderellaConfig
from repro.core.efficiency import catalog_efficiency
from repro.core.partitioner import CinderellaPartitioner
from repro.obs import runtime as obs


@dataclass(frozen=True)
class ReorganizationReport:
    """Outcome of an offline re-org."""

    partitioner: CinderellaPartitioner
    partitions_before: int
    partitions_after: int
    efficiency_before: Optional[float]
    efficiency_after: Optional[float]

    @property
    def efficiency_gain(self) -> Optional[float]:
        if self.efficiency_before is None or self.efficiency_after is None:
            return None
        return self.efficiency_after - self.efficiency_before


def reorganize(
    partitioner: CinderellaPartitioner,
    config: Optional[CinderellaConfig] = None,
    query_masks: Optional[Sequence[int]] = None,
    order: str = "size",
    crash_hook: Optional[Callable[[str], None]] = None,
) -> ReorganizationReport:
    """Rebuild the partitioning with a fresh Cinderella run.

    Args:
        partitioner: the live partitioner to reorganize (left untouched;
            callers swap in the returned one and replay its layout).
        config: parameters for the rebuilt partitioning (defaults to the
            current configuration).
        query_masks: when given, Definition 1 efficiency is measured
            before and after against this workload.
        order: replay order — ``"size"`` feeds large-synopsis entities
            first (they make better early split starters), ``"stored"``
            preserves the current partition-by-partition order.
        crash_hook: step hook of the transactional layer, fired once
            per replayed entity.  The rebuild only touches the fresh
            scratch partitioner, so a crash here strands nothing; use
            :func:`repro.txn.ops.atomic_reorganize` to also swap the
            result in atomically.

    Returns:
        A report carrying the fresh partitioner and the efficiency delta.
    """
    if order not in ("size", "stored"):
        raise ValueError(f"order must be 'size' or 'stored', got {order!r}")
    enabled = obs.is_enabled()
    started = perf_counter() if enabled else 0.0
    with obs.span("maintenance.reorganize", order=order) as span:
        entities = [
            (eid, mask, size)
            for partition in partitioner.catalog
            for eid, mask, size in partition.members()
        ]
        if order == "size":
            entities.sort(key=lambda item: (-item[1].bit_count(), item[0]))

        fresh = CinderellaPartitioner(
            config if config is not None else partitioner.config
        )
        for eid, mask, _size in entities:
            fresh.insert(eid, mask)
            if crash_hook is not None:
                crash_hook("reorganize:replayed-entity")

        efficiency_before = None
        efficiency_after = None
        if query_masks is not None:
            efficiency_before = catalog_efficiency(
                partitioner.catalog, query_masks
            )
            efficiency_after = catalog_efficiency(fresh.catalog, query_masks)
        if span.is_recording:
            span.set("entities", len(entities))
            span.set("partitions_after", len(fresh.catalog))
    if enabled:
        obs.inc(
            "repro_maintenance_reorganizations_total",
            help_text="Offline reorganization passes run",
        )
        obs.observe(
            "repro_maintenance_reorganize_seconds",
            perf_counter() - started,
            help_text="Wall time of one offline reorganization",
        )
    return ReorganizationReport(
        partitioner=fresh,
        partitions_before=len(partitioner.catalog),
        partitions_after=len(fresh.catalog),
        efficiency_before=efficiency_before,
        efficiency_after=efficiency_after,
    )
