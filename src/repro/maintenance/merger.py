"""Partition merging — maintenance for delete-heavy workloads.

Cinderella's delete routine (Section III) only drops partitions that
become completely empty; sustained deletions therefore leave a long tail
of under-filled partitions that inflate the catalog and the per-branch
query overhead.  The paper's conclusions name continued work on managing
"a large number of partitions"; this module is that maintenance step: an
explicit, rating-driven merge of small partitions into compatible hosts.

A merge is just Cinderella's own insert logic applied at partition
granularity: the candidate partition is treated as one synthetic entity
(its synopsis and total size) and rated against every other partition
with the unchanged Section IV rating.  Only a non-negative rating — the
same acceptance rule as Algorithm 1 — and sufficient capacity allow a
merge, so merging can never introduce heterogeneity that an insert would
have refused.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from repro.core.outcomes import Move
from repro.core.rating import rate_fast
from repro.obs import runtime as obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partitioner import CinderellaPartitioner


@dataclass
class MergeReport:
    """What one maintenance pass did."""

    #: partitions examined as merge candidates (under-filled ones)
    examined: int = 0
    #: (source pid, target pid) pairs actually merged
    merged: list[tuple[int, int]] = field(default_factory=list)
    #: physical relocations, in apply order
    moves: list[Move] = field(default_factory=list)
    #: source partitions dropped after their members moved out
    dropped_partitions: list[int] = field(default_factory=list)
    #: candidates left unmerged while the efficiency guard was armed
    #: (no host passed the rating, capacity, and workload checks)
    skipped_for_workload: int = 0

    @property
    def merge_count(self) -> int:
        return len(self.merged)


def _workload_distinguishes(
    source_mask: int, target_mask: int, query_masks: Sequence[int]
) -> bool:
    """True when some workload query touches exactly one of the two.

    Merging ``source`` into ``target`` replaces reads of one partition
    with reads of their union; a query that touched only one of them
    would afterwards scan both, so the Definition 1 efficiency of the
    workload would drop.  When no query distinguishes the pair, every
    query reads exactly as much data after the merge as before and the
    efficiency is unchanged.
    """
    for query in query_masks:
        if bool(query & source_mask) != bool(query & target_mask):
            return True
    return False


def merge_small_partitions(
    partitioner: "CinderellaPartitioner",
    min_fill: float = 0.25,
    query_masks: Optional[Sequence[int]] = None,
    crash_hook: Optional[Callable[[str], None]] = None,
) -> MergeReport:
    """Merge partitions filled below ``min_fill · B`` into rated hosts.

    Candidates are processed smallest-first.  For each, the best-rated
    host with enough remaining capacity is chosen using the configured
    weight; a negative best rating leaves the candidate untouched (it is
    small but schema-unique — exactly the case where merging would hurt
    pruning).  Returns a :class:`MergeReport` whose ``moves`` the physical
    table layer must replay.

    ``query_masks`` arms the *efficiency guard*: a merge is only taken
    when no workload query distinguishes source from target, so the
    Definition 1 efficiency over that workload can never drop below its
    pre-merge value.  ``crash_hook`` is the transactional layer's step
    hook (see :mod:`repro.txn.ops`) — call
    :func:`repro.txn.ops.atomic_merge` instead of passing it directly.
    """
    if not 0.0 < min_fill <= 1.0:
        raise ValueError(f"min_fill must lie in (0, 1], got {min_fill}")
    with obs.span("maintenance.merge", min_fill=min_fill) as span:
        report = _merge_small_partitions(
            partitioner, min_fill, query_masks, crash_hook
        )
        if span.is_recording:
            span.set("examined", report.examined)
            span.set("merged", report.merge_count)
    if obs.is_enabled():
        obs.inc(
            "repro_maintenance_merge_passes_total",
            help_text="Merge maintenance passes run",
        )
        obs.inc(
            "repro_maintenance_partitions_merged_total",
            report.merge_count,
            help_text="Small partitions merged into rated hosts",
        )
    return report


def _merge_small_partitions(
    partitioner: "CinderellaPartitioner",
    min_fill: float,
    query_masks: Optional[Sequence[int]],
    crash_hook: Optional[Callable[[str], None]],
) -> MergeReport:
    config = partitioner.config
    catalog = partitioner.catalog
    threshold = min_fill * config.max_partition_size
    report = MergeReport()

    candidates = sorted(
        (p.pid for p in catalog if p.total_size < threshold),
        key=lambda pid: catalog.get(pid).total_size,
    )
    merged_away: set[int] = set()
    for source_pid in candidates:
        if source_pid in merged_away:
            continue
        source = catalog.get(source_pid)
        report.examined += 1
        best_pid = None
        best_rating = -math.inf
        for target in catalog:
            if target.pid == source_pid or target.pid in merged_away:
                continue
            if target.total_size + source.total_size > config.max_partition_size:
                continue
            if query_masks is not None and _workload_distinguishes(
                source.mask, target.mask, query_masks
            ):
                continue
            rating = rate_fast(
                source.mask,
                source.attr_count,
                source.total_size,
                target.mask,
                target.attr_count,
                target.total_size,
                config.weight,
            )
            if rating > best_rating:
                best_rating = rating
                best_pid = target.pid
        if best_pid is None or best_rating < 0.0:
            if query_masks is not None:
                report.skipped_for_workload += 1
            continue
        # relocate every member through the catalog API (keeps synopses,
        # sizes, location map, the synopsis index, and the partition
        # content versions exact — the target's version bumps with every
        # arriving member, so cached query results for it invalidate)
        for eid, mask, size in list(source.members()):
            catalog.remove_entity(eid, repair_starters=False)
            catalog.add_entity(best_pid, eid, mask, size)
            report.moves.append(Move(eid, source_pid, best_pid))
            if crash_hook is not None:
                crash_hook("merge:member-moved")
        catalog.drop_partition(source_pid)
        if crash_hook is not None:
            crash_hook("merge:source-dropped")
        merged_away.add(source_pid)
        report.merged.append((source_pid, best_pid))
        report.dropped_partitions.append(source_pid)
    return report
