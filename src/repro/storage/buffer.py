"""A buffer pool with LRU replacement.

The paper's conclusions list caching among the physical-design aspects to
fold into Cinderella next.  This buffer pool provides that extension: heap
file scans route page accesses through it, so repeated touches of hot
partitions become buffer hits instead of physical reads.  The pool is
shared table-wide and purely an accounting device — pages live in memory
either way; what changes is which accesses count as physical I/O.
"""

from __future__ import annotations

from collections import OrderedDict


class BufferPool:
    """LRU cache of ``(file_id, page_number)`` frames.

    ``capacity_pages <= 0`` disables caching: every access is a miss,
    which models a cold scan (the paper's measurements are cold: neither
    the partitions nor the universal table had indexes or warmed caches).
    """

    def __init__(self, capacity_pages: int = 0) -> None:
        self.capacity_pages = capacity_pages
        self._frames: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, file_id: int, page_number: int) -> bool:
        """Touch a page; return True on a hit, False on a physical read."""
        if self.capacity_pages <= 0:
            self.misses += 1
            return False
        key = (file_id, page_number)
        if key in self._frames:
            self._frames.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._frames[key] = None
        if len(self._frames) > self.capacity_pages:
            self._frames.popitem(last=False)
            self.evictions += 1
        return False

    def invalidate_file(self, file_id: int) -> None:
        """Drop all frames of a heap file (called when a partition is freed)."""
        stale = [key for key in self._frames if key[0] == file_id]
        for key in stale:
            del self._frames[key]

    def reset(self) -> None:
        """Empty the pool and zero the statistics."""
        self._frames.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
