"""Slotted pages — the unit of I/O.

A page holds variable-length sparse records behind a slot directory, the
classic disk-page layout: record ids stay stable (slot numbers survive
compaction) while deletions leave reusable tombstones.  The page size is
the granularity in which the I/O statistics count reads, mirroring the
paper's remark that in disk-based systems "pages may represent a partition
granularity" — here pages are below partitions: each partition is a heap
file of pages.
"""

from __future__ import annotations

from typing import Iterator, Optional

DEFAULT_PAGE_SIZE = 8192
#: per-record slot bookkeeping we charge against the page budget
_SLOT_OVERHEAD = 8


class PageFullError(RuntimeError):
    """Raised when a record cannot fit into the page."""


class Page:
    """One fixed-size slotted page of serialized records."""

    __slots__ = ("page_size", "_slots", "_used")

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= _SLOT_OVERHEAD:
            raise ValueError(f"page_size too small: {page_size}")
        self.page_size = page_size
        # slot -> record bytes, None = tombstone
        self._slots: list[Optional[bytes]] = []
        self._used = 0

    def __len__(self) -> int:
        """Number of live records."""
        return sum(1 for record in self._slots if record is not None)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed by live records plus slot overhead."""
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.page_size - self._used

    def fits(self, record: bytes) -> bool:
        return len(record) + _SLOT_OVERHEAD <= self.free_bytes

    def insert(self, record: bytes) -> int:
        """Store a record, reusing a tombstone slot if any; return the slot."""
        need = len(record) + _SLOT_OVERHEAD
        if need > self.free_bytes:
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_bytes} bytes free)"
            )
        self._used += need
        for slot, existing in enumerate(self._slots):
            if existing is None:
                self._slots[slot] = record
                return slot
        self._slots.append(record)
        return len(self._slots) - 1

    def read(self, slot: int) -> bytes:
        record = self._slots[slot] if 0 <= slot < len(self._slots) else None
        if record is None:
            raise KeyError(f"no live record in slot {slot}")
        return record

    def delete(self, slot: int) -> bytes:
        """Tombstone a slot; return the record that was there."""
        record = self.read(slot)
        self._slots[slot] = None
        self._used -= len(record) + _SLOT_OVERHEAD
        return record

    def replace(self, slot: int, record: bytes) -> None:
        """Overwrite a live record in place (used by in-place updates)."""
        old = self.read(slot)
        new_used = self._used - len(old) + len(record)
        if new_used > self.page_size:
            raise PageFullError(
                f"replacement record of {len(record)} bytes does not fit"
            )
        self._slots[slot] = record
        self._used = new_used

    def is_tail_slot(self, slot: int) -> bool:
        """Whether *slot* is the page's highest-numbered slot.

        A freshly inserted record in the tail slot of the tail page is
        the only placement that keeps physical scan order append-only —
        the heap's structural clock relies on this distinction, since
        :meth:`insert` may also fill an earlier tombstone.
        """
        return slot == len(self._slots) - 1

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record."""
        for slot, record in enumerate(self._slots):
            if record is not None:
                yield slot, record

    def is_empty(self) -> bool:
        return all(record is None for record in self._slots)
