"""Sparse record serialization — the interpreted attribute storage format.

Universal tables are extremely sparse, so storing them positionally (one
fixed slot per attribute) wastes almost all space.  The paper's premise
(Section I, refs [1]–[3]) is that modern systems store such tables
efficiently; the canonical technique is Beckmann et al.'s *interpreted
attribute storage format* — each record stores only ``(attribute id,
value)`` pairs plus interpretation metadata.  This module implements that
format:

* records are ``header | n × (attr-id varint, type tag, value)``;
* attribute ids come from the table's :class:`AttributeDictionary`;
* values support the types a product catalog / DBpedia extract needs:
  NULL, bool, int, float, str, bytes.

Record length in bytes is what :class:`~repro.core.sizes.ByteSizeModel`
prices and what the I/O statistics count.
"""

from __future__ import annotations

import struct
from typing import Any, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.dictionary import AttributeDictionary

_TAG_NULL = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6

_FLOAT = struct.Struct("<d")


class RecordFormatError(ValueError):
    """Raised when bytes do not form a valid sparse record."""


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise RecordFormatError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise RecordFormatError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise RecordFormatError("varint too long")


def _write_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NULL)
    elif value is False:
        out.append(_TAG_FALSE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        # zig-zag encode so negative ints stay compact
        _write_varint(out, (value << 1) ^ (value >> 63) if -(2**62) < value < 2**62
                      else _reject_huge_int(value))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(_FLOAT.pack(value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        _write_varint(out, len(value))
        out.extend(value)
    else:
        raise RecordFormatError(
            f"unsupported value type {type(value).__name__}: {value!r}"
        )


def _reject_huge_int(value: int) -> int:
    raise RecordFormatError(f"integer out of 63-bit range: {value}")


def _read_value(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise RecordFormatError("truncated record: missing value tag")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_INT:
        raw, offset = _read_varint(data, offset)
        return (raw >> 1) ^ -(raw & 1), offset
    if tag == _TAG_FLOAT:
        end = offset + _FLOAT.size
        if end > len(data):
            raise RecordFormatError("truncated float value")
        return _FLOAT.unpack_from(data, offset)[0], end
    if tag == _TAG_STR:
        length, offset = _read_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise RecordFormatError("truncated string value")
        return data[offset:end].decode("utf-8"), end
    if tag == _TAG_BYTES:
        length, offset = _read_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise RecordFormatError("truncated bytes value")
        return bytes(data[offset:end]), end
    raise RecordFormatError(f"unknown value tag {tag}")


def serialize_record(
    entity_id: int,
    attributes: Mapping[str, Any],
    dictionary: "AttributeDictionary",
) -> bytes:
    """Serialize an entity into the sparse interpreted record format.

    Attribute names are interned into *dictionary*; pairs are stored in
    ascending attribute-id order so serialization is deterministic.
    """
    out = bytearray()
    _write_varint(out, entity_id)
    pairs = sorted(
        (dictionary.intern(name), value) for name, value in attributes.items()
    )
    _write_varint(out, len(pairs))
    for attr_id, value in pairs:
        _write_varint(out, attr_id)
        _write_value(out, value)
    return bytes(out)


def deserialize_record(
    data: bytes, dictionary: "AttributeDictionary"
) -> tuple[int, dict[str, Any]]:
    """Decode a sparse record into ``(entity_id, attributes)``."""
    entity_id, offset = _read_varint(data, 0)
    count, offset = _read_varint(data, offset)
    attributes: dict[str, Any] = {}
    for _ in range(count):
        attr_id, offset = _read_varint(data, offset)
        value, offset = _read_value(data, offset)
        attributes[dictionary.name_of(attr_id)] = value
    if offset != len(data):
        raise RecordFormatError(
            f"trailing bytes in record: read {offset} of {len(data)}"
        )
    return entity_id, attributes
