"""Write-ahead log for the distributed coordinator.

The coordinator's catalog is the single source of truth for the
partitioning; losing it to a coordinator crash would be fatal.  The
write-ahead log complements :mod:`repro.storage.snapshot`: every
state-mutating operation (insert/delete/update *and* cluster events —
crashes, recoveries, degradations, re-replication passes) is appended
to the journal *before* it is applied, so a crashed coordinator replays
``snapshot + WAL tail`` and arrives at the exact pre-crash catalog and
placement.  Replay is exact because every logged operation is
deterministic (see ``DistributedUniversalStore.replay_wal``).

File format — one checksummed JSON line per record::

    <crc32 hex8> {"seq": 0, "op": "header", "payload": {"format": ...}}
    <crc32 hex8> {"seq": 5, "op": "insert", "payload": {"eid": 1, ...}}

The header's ``basis_seq`` is the sequence number already covered by
the companion snapshot; a checkpoint rewrites the log to just a header
with ``basis_seq = last_seq``.  Recovery semantics follow the classic
WAL rules: a torn *tail* (half-written last record, the normal result
of crashing mid-append) is silently truncated; corruption anywhere
*before* the tail means the file cannot be trusted and raises
:class:`WALFormatError`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Union

WAL_FORMAT = "repro-wal"
WAL_VERSION = 1


class WALFormatError(ValueError):
    """Raised when a write-ahead log cannot be interpreted."""


@dataclass(frozen=True)
class WALRecord:
    """One journaled operation."""

    seq: int
    op: str
    payload: dict[str, Any]


def _encode_line(seq: int, op: str, payload: dict[str, Any]) -> str:
    body = json.dumps(
        {"seq": seq, "op": op, "payload": payload}, separators=(",", ":")
    )
    checksum = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{checksum:08x} {body}\n"


def _decode_line(line: str) -> WALRecord:
    """Decode one line; raises WALFormatError on any inconsistency."""
    if len(line) < 10 or line[8] != " ":
        raise WALFormatError("malformed WAL line framing")
    stated, body = line[:8], line[9:]
    try:
        checksum = int(stated, 16)
    except ValueError:
        raise WALFormatError("malformed WAL checksum") from None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != checksum:
        raise WALFormatError("WAL checksum mismatch")
    try:
        document = json.loads(body)
        return WALRecord(document["seq"], document["op"], document["payload"])
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise WALFormatError(f"malformed WAL record: {error}") from error


def read_wal(path: Union[str, Path]) -> tuple[int, list[WALRecord], int]:
    """Read a WAL file; return ``(basis_seq, records, torn_lines)``.

    ``torn_lines`` counts trailing lines dropped as a torn tail (0 or
    1 — only the final line may be torn).  Corruption before the final
    line raises :class:`WALFormatError`.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise WALFormatError(f"cannot read WAL {path}: {error}") from error
    except UnicodeDecodeError:
        text = Path(path).read_bytes().decode("utf-8", errors="replace")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise WALFormatError(f"WAL {path} is empty")
    records: list[WALRecord] = []
    torn = 0
    for index, line in enumerate(lines):
        try:
            record = _decode_line(line)
        except WALFormatError:
            if index == len(lines) - 1:
                torn = 1
                break
            raise
        records.append(record)
    if not records:
        raise WALFormatError(f"WAL {path} has no intact header")
    header = records.pop(0)
    if header.op != "header" or header.payload.get("format") != WAL_FORMAT:
        raise WALFormatError(f"{path} is not a write-ahead log")
    if header.payload.get("version") != WAL_VERSION:
        raise WALFormatError(
            f"unsupported WAL version {header.payload.get('version')!r}"
        )
    basis_seq = header.payload.get("basis_seq")
    if not isinstance(basis_seq, int):
        raise WALFormatError("WAL header lacks a basis_seq")
    expected = basis_seq
    for record in records:
        expected += 1
        if record.seq != expected:
            raise WALFormatError(
                f"WAL sequence gap: expected {expected}, found {record.seq}"
            )
    return basis_seq, records, torn


class WriteAheadLog:
    """Append-only journal with checkpoint truncation.

    Opening an existing file resumes appending after its last intact
    record (a torn tail is truncated on open).  ``append`` flushes to
    the OS on every record — the write-ahead guarantee this simulation
    models.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.torn_records_dropped = 0
        if self.path.exists() and self.path.stat().st_size:
            basis, records, torn = read_wal(self.path)
            self.basis_seq = basis
            self.last_seq = records[-1].seq if records else basis
            self.torn_records_dropped = torn
            if torn:
                self._rewrite(basis, records)
        else:
            self.basis_seq = 0
            self.last_seq = 0
            self._rewrite(0, [])
        self._handle = self.path.open("a", encoding="utf-8")

    def _rewrite(
        self, basis_seq: int, records: list[WALRecord]
    ) -> None:
        """Atomically rewrite the log (open, torn-tail repair, reset)."""
        temporary = self.path.with_suffix(self.path.suffix + ".tmp")
        with temporary.open("w", encoding="utf-8") as handle:
            handle.write(_encode_line(0, "header", {
                "format": WAL_FORMAT,
                "version": WAL_VERSION,
                "basis_seq": basis_seq,
            }))
            for record in records:
                handle.write(_encode_line(record.seq, record.op, record.payload))
        temporary.replace(self.path)

    def append(self, op: str, payload: dict[str, Any]) -> int:
        """Journal one operation; returns its sequence number."""
        seq = self.last_seq + 1
        self._handle.write(_encode_line(seq, op, payload))
        self._handle.flush()
        self.last_seq = seq
        return seq

    def records(self) -> list[WALRecord]:
        """All intact records currently in the file (excludes header)."""
        _basis, records, _torn = read_wal(self.path)
        return records

    def reset(self, basis_seq: int) -> None:
        """Checkpoint truncation: drop all records, remember that the
        companion snapshot covers everything up to *basis_seq*."""
        self._handle.close()
        self._rewrite(basis_seq, [])
        self.basis_seq = basis_seq
        self.last_seq = basis_seq
        self._handle = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
