"""Write-ahead log for the distributed coordinator.

The coordinator's catalog is the single source of truth for the
partitioning; losing it to a coordinator crash would be fatal.  The
write-ahead log complements :mod:`repro.storage.snapshot`: every
state-mutating operation (insert/delete/update *and* cluster events —
crashes, recoveries, degradations, re-replication passes) is appended
to the journal *before* it is applied, so a crashed coordinator replays
``snapshot + WAL tail`` and arrives at the exact pre-crash catalog and
placement.  Replay is exact because every logged operation is
deterministic (see ``DistributedUniversalStore.replay_wal``).

File format — one checksummed JSON line per record::

    <crc32 hex8> {"seq": 0, "op": "header", "payload": {"format": ...}}
    <crc32 hex8> {"seq": 5, "op": "insert", "payload": {"eid": 1, ...}}

The header's ``basis_seq`` is the sequence number already covered by
the companion snapshot; a checkpoint rewrites the log to just a header
with ``basis_seq = last_seq``.  Recovery semantics follow the classic
WAL rules: a torn *tail* (half-written last record, the normal result
of crashing mid-append) is silently truncated; corruption anywhere
*before* the tail means the file cannot be trusted and raises
:class:`WALFormatError`.

Durability and growth control:

* ``append(..., sync=True)`` forces an ``fsync`` after the write — the
  operation journal uses it for intent and commit records, so a commit
  that returned is on disk even across an OS crash.
* :meth:`WriteAheadLog.compact` rewrites the log without records that
  no longer affect replay (operation-journal step chatter and the
  begin/abort markers of finished operations).  Sequence numbers are
  preserved; the header records the compaction count, and readers of a
  compacted log accept sequence gaps (strictly increasing) where an
  uncompacted log must be gap-free.
* ``max_bytes`` arms size-threshold rotation: when an append pushes the
  file past the limit, the log compacts itself automatically.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Optional, Union

from repro.obs import runtime as obs

WAL_FORMAT = "repro-wal"
WAL_VERSION = 1

#: operation-journal record types (see :mod:`repro.txn.journal`)
JOURNAL_BEGIN = "op_begin"
JOURNAL_STEP = "op_step"
JOURNAL_COMMIT = "op_commit"
JOURNAL_ABORT = "op_abort"


class WALFormatError(ValueError):
    """Raised when a write-ahead log cannot be interpreted."""


class WALClosedError(ValueError):
    """Raised when a closed write-ahead log is asked to do journal work.

    Subclasses :class:`ValueError` so callers that treated the raw
    ``ValueError: I/O operation on closed file`` as "the journal went
    away under us" (the serving node's abort-mid-batch path) keep
    working — they just get a message that names the log and the
    operation instead of a file-object traceback.
    """


@dataclass(frozen=True)
class WALRecord:
    """One journaled operation."""

    seq: int
    op: str
    payload: dict[str, Any]


def _encode_line(seq: int, op: str, payload: dict[str, Any]) -> str:
    body = json.dumps(
        {"seq": seq, "op": op, "payload": payload}, separators=(",", ":")
    )
    checksum = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{checksum:08x} {body}\n"


def _decode_line(line: str) -> WALRecord:
    """Decode one line; raises WALFormatError on any inconsistency."""
    if len(line) < 10 or line[8] != " ":
        raise WALFormatError("malformed WAL line framing")
    stated, body = line[:8], line[9:]
    try:
        checksum = int(stated, 16)
    except ValueError:
        raise WALFormatError("malformed WAL checksum") from None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != checksum:
        raise WALFormatError("WAL checksum mismatch")
    try:
        document = json.loads(body)
        return WALRecord(document["seq"], document["op"], document["payload"])
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise WALFormatError(f"malformed WAL record: {error}") from error


def _read_wal_full(
    path: Union[str, Path]
) -> tuple[dict[str, Any], list[WALRecord], int]:
    """Read a WAL file; return ``(header_payload, records, torn_lines)``."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise WALFormatError(f"cannot read WAL {path}: {error}") from error
    except UnicodeDecodeError:
        text = Path(path).read_bytes().decode("utf-8", errors="replace")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise WALFormatError(f"WAL {path} is empty")
    records: list[WALRecord] = []
    torn = 0
    for index, line in enumerate(lines):
        try:
            record = _decode_line(line)
        except WALFormatError:
            if index == len(lines) - 1:
                torn = 1
                break
            raise
        records.append(record)
    if not records:
        raise WALFormatError(f"WAL {path} has no intact header")
    header = records.pop(0)
    if header.op != "header" or header.payload.get("format") != WAL_FORMAT:
        raise WALFormatError(f"{path} is not a write-ahead log")
    if header.payload.get("version") != WAL_VERSION:
        raise WALFormatError(
            f"unsupported WAL version {header.payload.get('version')!r}"
        )
    basis_seq = header.payload.get("basis_seq")
    if not isinstance(basis_seq, int):
        raise WALFormatError("WAL header lacks a basis_seq")
    compacted = header.payload.get("compactions", 0)
    expected = basis_seq
    for record in records:
        if compacted:
            # compaction removes records but preserves numbering: the
            # remaining sequence must still be strictly increasing
            if record.seq <= expected:
                raise WALFormatError(
                    f"WAL sequence regression: {record.seq} after {expected}"
                )
            expected = record.seq
        else:
            expected += 1
            if record.seq != expected:
                raise WALFormatError(
                    f"WAL sequence gap: expected {expected}, found {record.seq}"
                )
    return header.payload, records, torn


def read_wal(path: Union[str, Path]) -> tuple[int, list[WALRecord], int]:
    """Read a WAL file; return ``(basis_seq, records, torn_lines)``.

    ``torn_lines`` counts trailing lines dropped as a torn tail (0 or
    1 — only the final line may be torn).  Corruption before the final
    line raises :class:`WALFormatError`.
    """
    header, records, torn = _read_wal_full(path)
    return header["basis_seq"], records, torn


def journal_droppable(
    records: list[WALRecord],
) -> Callable[[WALRecord], bool]:
    """The default compaction policy: drop operation-journal chatter.

    Replay only acts on ``op_commit`` records (an operation without a
    commit is rolled back, never re-applied), so ``op_step`` records are
    always dead weight and ``op_begin``/``op_abort`` pairs of *finished*
    operations carry no recovery information.  An ``op_begin`` without a
    terminal record is kept — it marks an interrupted operation, which
    :meth:`repro.txn.journal.OperationJournal.incomplete_ops` reports.
    """
    finished = {
        record.payload.get("op_id")
        for record in records
        if record.op in (JOURNAL_COMMIT, JOURNAL_ABORT)
    }

    def droppable(record: WALRecord) -> bool:
        if record.op == JOURNAL_STEP:
            return True
        if record.op in (JOURNAL_BEGIN, JOURNAL_ABORT):
            return record.payload.get("op_id") in finished
        return False

    return droppable


class WriteAheadLog:
    """Append-only journal with checkpoint truncation and compaction.

    Opening an existing file resumes appending after its last intact
    record (a torn tail is truncated on open).  ``append`` flushes to
    the OS on every record and additionally fsyncs when ``sync=True`` —
    the write-ahead guarantee for commit records.  With ``max_bytes``
    set, the log compacts itself whenever an append pushes the file
    past the limit.
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self._closed = False
        self.torn_records_dropped = 0
        #: fsync calls performed (commit-record durability)
        self.syncs = 0
        #: compaction passes performed over this handle's lifetime
        self.compactions = 0
        if self.path.exists() and self.path.stat().st_size:
            header, records, torn = _read_wal_full(self.path)
            self.basis_seq = header["basis_seq"]
            self.compactions = header.get("compactions", 0)
            tail_seq = records[-1].seq if records else self.basis_seq
            self.last_seq = max(tail_seq, header.get("last_seq", 0))
            self.torn_records_dropped = torn
            if torn:
                self._rewrite(self.basis_seq, records)
        else:
            self.basis_seq = 0
            self.last_seq = 0
            self._rewrite(0, [])
        self._handle = self.path.open("a", encoding="utf-8")

    def _rewrite(self, basis_seq: int, records: list[WALRecord]) -> None:
        """Atomically rewrite the log (open, torn-tail repair, reset,
        compaction)."""
        temporary = self.path.with_suffix(self.path.suffix + ".tmp")
        with temporary.open("w", encoding="utf-8") as handle:
            handle.write(_encode_line(0, "header", {
                "format": WAL_FORMAT,
                "version": WAL_VERSION,
                "basis_seq": basis_seq,
                "compactions": self.compactions,
                "last_seq": getattr(self, "last_seq", 0),
            }))
            for record in records:
                handle.write(_encode_line(record.seq, record.op, record.payload))
            handle.flush()
            os.fsync(handle.fileno())
        temporary.replace(self.path)

    def _check_open(self, operation: str) -> None:
        if self._closed:
            raise WALClosedError(
                f"cannot {operation}: write-ahead log {self.path} is closed"
            )

    def append(self, op: str, payload: dict[str, Any], sync: bool = False) -> int:
        """Journal one operation; returns its sequence number.

        ``sync=True`` forces the record to stable storage (fsync) before
        returning — required for operation-journal intent and commit
        records, whose durability the atomicity guarantee rests on.
        """
        self._check_open("append")
        seq = self.last_seq + 1
        self._handle.write(_encode_line(seq, op, payload))
        self._handle.flush()
        enabled = obs.is_enabled()
        if sync:
            fsync_started = perf_counter() if enabled else 0.0
            os.fsync(self._handle.fileno())
            self.syncs += 1
            if enabled:
                obs.inc(
                    "repro_wal_fsyncs_total",
                    help_text="WAL fsync calls (commit-record durability)",
                )
                obs.observe(
                    "repro_wal_fsync_seconds",
                    perf_counter() - fsync_started,
                    help_text="Wall time of one WAL fsync",
                )
        if enabled:
            obs.inc(
                "repro_wal_records_appended_total",
                help_text="Records appended to write-ahead logs",
            )
        self.last_seq = seq
        if (
            self.max_bytes is not None
            and self.path.stat().st_size > self.max_bytes
        ):
            self.compact()
        return seq

    def sync(self) -> None:
        """Force everything appended so far to stable storage.

        The group-commit primitive: a batcher appends a whole batch with
        ``sync=False`` and pays one fsync here before acknowledging any
        of it — same durability as per-record ``sync=True`` at a
        fraction of the fsync count.
        """
        self._check_open("sync")
        fsync_started = perf_counter() if obs.is_enabled() else 0.0
        os.fsync(self._handle.fileno())
        self.syncs += 1
        if obs.is_enabled():
            obs.inc(
                "repro_wal_fsyncs_total",
                help_text="WAL fsync calls (commit-record durability)",
            )
            obs.observe(
                "repro_wal_fsync_seconds",
                perf_counter() - fsync_started,
                help_text="Wall time of one WAL fsync",
            )

    def size_bytes(self) -> int:
        """Current on-disk size of the log file."""
        return self.path.stat().st_size

    def records(self) -> list[WALRecord]:
        """All intact records currently in the file (excludes header)."""
        _basis, records, _torn = read_wal(self.path)
        return records

    def compact(
        self, droppable: Optional[Callable[[WALRecord], bool]] = None
    ) -> int:
        """Rewrite the log without replay-dead records; returns the
        number of records dropped.

        The default policy is :func:`journal_droppable`.  Sequence
        numbers of surviving records are preserved (the header keeps
        ``last_seq`` so appends continue from the right position), so a
        companion snapshot's journal position stays valid.
        """
        self._check_open("compact")
        with obs.span("wal.compact", path=str(self.path)) as span:
            records = self.records()
            predicate = (
                droppable if droppable is not None
                else journal_droppable(records)
            )
            kept = [record for record in records if not predicate(record)]
            dropped = len(records) - len(kept)
            if span.is_recording:
                span.set("dropped", dropped)
            if dropped == 0:
                return 0
            self._handle.close()
            self.compactions += 1
            self._rewrite(self.basis_seq, kept)
            self._handle = self.path.open("a", encoding="utf-8")
        if obs.is_enabled():
            obs.inc(
                "repro_wal_compactions_total",
                help_text="WAL compaction passes that dropped records",
            )
            obs.inc(
                "repro_wal_records_compacted_total",
                dropped,
                help_text="Replay-dead records dropped by compaction",
            )
        return dropped

    def reset(self, basis_seq: int) -> None:
        """Checkpoint truncation: drop all records, remember that the
        companion snapshot covers everything up to *basis_seq*."""
        self._check_open("reset")
        self._handle.close()
        self.compactions = 0
        self.last_seq = basis_seq
        self._rewrite(basis_seq, [])
        self.basis_seq = basis_seq
        self._handle = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        """Close the log handle; idempotent.  Further journal calls
        raise :class:`WALClosedError` instead of a raw file-object
        ``ValueError``."""
        if self._closed:
            return
        self._closed = True
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
