"""Storage substrate: sparse records, slotted pages, heap files, buffering."""

from repro.storage.buffer import BufferPool
from repro.storage.entity import Entity
from repro.storage.heap import HeapFile, RecordId
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, Page, PageFullError
from repro.storage.record import (
    RecordFormatError,
    deserialize_record,
    serialize_record,
)

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "Entity",
    "HeapFile",
    "IOStats",
    "Page",
    "PageFullError",
    "RecordFormatError",
    "RecordId",
    "deserialize_record",
    "serialize_record",
]
