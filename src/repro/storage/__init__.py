"""Storage substrate: sparse records, slotted pages, heap files,
buffering, snapshots, and the coordinator write-ahead log."""

from repro.storage.buffer import BufferPool
from repro.storage.entity import Entity
from repro.storage.heap import HeapFile, RecordId
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, Page, PageFullError
from repro.storage.record import (
    RecordFormatError,
    deserialize_record,
    serialize_record,
)
from repro.storage.snapshot import (
    SnapshotFormatError,
    load_store,
    load_table,
    save_store,
    save_table,
)
from repro.storage.wal import WALFormatError, WALRecord, WriteAheadLog, read_wal

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "Entity",
    "HeapFile",
    "IOStats",
    "Page",
    "PageFullError",
    "RecordFormatError",
    "RecordId",
    "SnapshotFormatError",
    "WALFormatError",
    "WALRecord",
    "WriteAheadLog",
    "deserialize_record",
    "load_store",
    "load_table",
    "read_wal",
    "save_store",
    "save_table",
    "serialize_record",
]
