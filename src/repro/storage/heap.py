"""Heap files — the physical representation of a partition.

The paper's prototype "creates a regular table for each partition"; our
equivalent is one :class:`HeapFile` of slotted pages per partition (and a
single big heap file for the unpartitioned universal table baseline).
Records are addressed by :class:`RecordId` (page number, slot); scans go
page-by-page, charging the shared :class:`~repro.storage.iostats.IOStats`
and optionally consulting a :class:`~repro.storage.buffer.BufferPool`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, Page, PageFullError

_file_ids = itertools.count()


@dataclass(frozen=True)
class RecordId:
    """Stable physical address of a record: (page number, slot)."""

    page: int
    slot: int


class HeapFile:
    """An unordered collection of pages holding serialized records."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        io: Optional[IOStats] = None,
        buffer_pool: Optional[BufferPool] = None,
    ) -> None:
        self.file_id = next(_file_ids)
        self.page_size = page_size
        self.io = io if io is not None else IOStats()
        self.buffer_pool = buffer_pool
        self._pages: list[Page] = []
        self._record_count = 0
        # page numbers that regained free space through deletions
        self._free_hints: list[int] = []
        #: bumped on every mutation; lets observers detect change in O(1)
        self.mutation_clock = 0
        #: last clock value at which a *non-tail-append* mutation happened
        #: (delete, replace, free, or an insert into a reclaimed page).
        #: While this stays put, physical scan order only ever grows at
        #: the tail — the contract behind :meth:`scan_suffix`.
        self.structural_clock = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._record_count

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def data_bytes(self) -> int:
        """Total live record payload bytes (what a full scan must read)."""
        return sum(page.used_bytes for page in self._pages)

    # ------------------------------------------------------------------
    # record operations
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> RecordId:
        """Append a record, opening a new page when nothing fits.

        Placement policy: try the tail page, then a bounded free-space
        hint list fed by deletions — constant work per insert instead of a
        full page-directory scan.
        """
        if len(record) + 8 > self.page_size:
            raise PageFullError(
                f"record of {len(record)} bytes exceeds page size {self.page_size}"
            )
        page_number = -1
        if self._pages and self._pages[-1].fits(record):
            page_number = len(self._pages) - 1
        else:
            while self._free_hints:
                hint = self._free_hints[-1]
                if hint < len(self._pages) and self._pages[hint].fits(record):
                    page_number = hint
                    break
                self._free_hints.pop()
        if page_number < 0:
            self._pages.append(Page(self.page_size))
            page_number = len(self._pages) - 1
        page = self._pages[page_number]
        slot = page.insert(record)
        self._record_count += 1
        self.mutation_clock += 1
        if page_number != len(self._pages) - 1 or not page.is_tail_slot(slot):
            # landed in a reclaimed page or a reused tombstone slot:
            # scan order grew in the middle, not at the tail
            self.structural_clock = self.mutation_clock
        self.io.records_written += 1
        self.io.bytes_written += len(record)
        self.io.pages_written += 1
        return RecordId(page_number, slot)

    def read(self, rid: RecordId) -> bytes:
        """Random access to one record (charges one page read)."""
        record = self._pages[rid.page].read(rid.slot)
        self._charge_page_read(rid.page, len(record))
        self.io.records_read += 1
        return record

    def delete(self, rid: RecordId) -> bytes:
        record = self._pages[rid.page].delete(rid.slot)
        self._record_count -= 1
        self.mutation_clock += 1
        self.structural_clock = self.mutation_clock
        self.io.records_deleted += 1
        if len(self._free_hints) < 64:
            self._free_hints.append(rid.page)
        return record

    def replace(self, rid: RecordId, record: bytes) -> RecordId:
        """Update a record in place when it fits, else relocate it."""
        page = self._pages[rid.page]
        try:
            page.replace(rid.slot, record)
        except PageFullError:
            page.delete(rid.slot)
            self._record_count -= 1
            self.mutation_clock += 1
            self.structural_clock = self.mutation_clock
            return self.insert(record)
        self.mutation_clock += 1
        self.structural_clock = self.mutation_clock
        self.io.records_written += 1
        self.io.bytes_written += len(record)
        self.io.pages_written += 1
        return rid

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """Full scan in physical order, charging page/record/byte reads."""
        for page_number, page in enumerate(self._pages):
            charged_page = False
            for slot, record in page.records():
                if not charged_page:
                    self._charge_page_read(page_number, page.used_bytes)
                    charged_page = True
                self.io.records_read += 1
                yield RecordId(page_number, slot), record

    def scan_suffix(self, after: Optional[RecordId]) -> Iterator[tuple[RecordId, bytes]]:
        """Scan records strictly after *after* in physical order.

        Only meaningful while ``structural_clock`` has not advanced past
        the observation that produced *after*: under that contract every
        newer record sits at a strictly greater (page, slot) address, so
        the suffix is exactly the records this yields.  ``None`` scans
        everything (the empty-heap observation).
        """
        start_page = after.page if after is not None else 0
        for page_number in range(start_page, len(self._pages)):
            page = self._pages[page_number]
            charged_page = False
            for slot, record in page.records():
                if (
                    after is not None
                    and page_number == after.page
                    and slot <= after.slot
                ):
                    continue
                if not charged_page:
                    self._charge_page_read(page_number, page.used_bytes)
                    charged_page = True
                self.io.records_read += 1
                yield RecordId(page_number, slot), record

    def _charge_page_read(self, page_number: int, payload_bytes: int) -> None:
        if self.buffer_pool is not None:
            if self.buffer_pool.access(self.file_id, page_number):
                self.io.buffer_hits += 1
                return
            self.io.buffer_misses += 1
        self.io.pages_read += 1
        self.io.bytes_read += payload_bytes

    def free(self) -> None:
        """Release all pages (partition dropped) and invalidate the cache."""
        self._pages.clear()
        self._record_count = 0
        self._free_hints.clear()
        self.mutation_clock += 1
        self.structural_clock = self.mutation_clock
        if self.buffer_pool is not None:
            self.buffer_pool.invalidate_file(self.file_id)
