"""I/O statistics — the currency of the paper's cost arguments.

"In I/O bound systems the performance will be dominated by the moving of
the actual entities from partition to partition" (Section III), and query
cost is "how much data is actually read" (Definition 1).  Every storage
operation in this reproduction is accounted here, so benchmarks can report
exact, deterministic I/O volumes alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Mutable counter block shared by heap files and the buffer pool."""

    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    records_read: int = 0
    records_written: int = 0
    records_deleted: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.pages_read = 0
        self.pages_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.records_read = 0
        self.records_written = 0
        self.records_deleted = 0
        self.buffer_hits = 0
        self.buffer_misses = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            records_read=self.records_read,
            records_written=self.records_written,
            records_deleted=self.records_deleted,
            buffer_hits=self.buffer_hits,
            buffer_misses=self.buffer_misses,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return IOStats(
            pages_read=self.pages_read - earlier.pages_read,
            pages_written=self.pages_written - earlier.pages_written,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            records_read=self.records_read - earlier.records_read,
            records_written=self.records_written - earlier.records_written,
            records_deleted=self.records_deleted - earlier.records_deleted,
            buffer_hits=self.buffer_hits - earlier.buffer_hits,
            buffer_misses=self.buffer_misses - earlier.buffer_misses,
        )

    def merge(self, other: "IOStats") -> None:
        """Add *other*'s counters into this block."""
        self.pages_read += other.pages_read
        self.pages_written += other.pages_written
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.records_read += other.records_read
        self.records_written += other.records_written
        self.records_deleted += other.records_deleted
        self.buffer_hits += other.buffer_hits
        self.buffer_misses += other.buffer_misses
